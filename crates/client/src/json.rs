//! A minimal JSON reader for serve responses.
//!
//! The workspace is offline (no serde), and the client crate sits below
//! the bench crate in the dependency order, so it carries its own tiny
//! recursive-descent parser: one-line serve responses are flat objects of
//! strings, numbers and booleans, which is all this needs to be good at.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// String, escapes decoded.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, key-ordered.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience: the `"status"` field, or `"?"` when absent.
    pub fn status(&self) -> &str {
        self.get("status").and_then(Json::as_str).unwrap_or("?")
    }

    /// Convenience: the `"kind"` field, or `""` when absent.
    pub fn kind(&self) -> &str {
        self.get("kind").and_then(Json::as_str).unwrap_or("")
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    let v = value(b, &mut pos)?;
    ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn ws(b: &[u8], pos: &mut usize) {
    while matches!(b.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Json::Str(string(b, pos)?)),
        Some(b't') => literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Json::Null),
        Some(_) => number(b, pos),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        b.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {s:?} at byte {start}"))
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote, checked by the caller
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!(
                    "unescaped control character at byte {pos}",
                    pos = *pos
                ))
            }
            Some(_) => {
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1;
    let mut items = Vec::new();
    ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1;
    let mut map = BTreeMap::new();
    ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        ws(b, pos);
        if !matches!(b.get(*pos), Some(b'"')) {
            return Err(format!("expected a key at byte {pos}", pos = *pos));
        }
        let key = string(b, pos)?;
        ws(b, pos);
        if !matches!(b.get(*pos), Some(b':')) {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, value(b, pos)?);
        ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_serve_response() {
        let v = parse(
            r#"{"id":7,"op":"solve","session":"s1","status":"ok","seconds":0.00123,"residual":1.2e-15,"x_hash":"0xdeadbeefcafef00d","nested":[1,2,{"a":true}],"none":null}"#,
        )
        .unwrap();
        assert_eq!(v.status(), "ok");
        assert_eq!(v.kind(), "");
        assert_eq!(v.get("id").and_then(Json::as_num), Some(7.0));
        assert_eq!(
            v.get("x_hash").and_then(Json::as_str),
            Some("0xdeadbeefcafef00d")
        );
        assert_eq!(v.get("none"), Some(&Json::Null));
    }

    #[test]
    fn decodes_escapes_and_rejects_garbage() {
        let v = parse(r#"{"error":"a \"quoted\" path\nA"}"#).unwrap();
        assert_eq!(
            v.get("error").and_then(Json::as_str),
            Some("a \"quoted\" path\nA")
        );
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse(r#"{"a":01x}"#).is_err());
        assert!(parse("").is_err());
    }
}
