//! A reconnecting retry client for the `parsplu serve` protocol.
//!
//! The serve daemon speaks one-line JSON over TCP (or stdio), crashes are
//! survivable on the server side (the durable journal replays acknowledged
//! work), and every job may carry an idempotency token (`--job-id`). This
//! crate is the client half of that contract:
//!
//! * **Per-job deadlines** — [`Client::call`] keeps retrying until the
//!   job's deadline, never longer; socket read timeouts are derived from
//!   the time remaining.
//! * **Exponential backoff with jitter** — transport failures (connect
//!   refused while the daemon restarts, a dropped socket mid-call) back
//!   off exponentially with a ±50% jitter so a fleet of clients does not
//!   reconnect in lockstep.
//! * **`retry_after_hint` honoring** — a structured `overloaded` /
//!   `shutting_down` refusal carries the server's own estimate of when
//!   capacity returns; the client sleeps that hint (bounded) instead of
//!   guessing.
//! * **Reconnect-and-resend under the same job id** — a lost response is
//!   indistinguishable from a lost request, so the client resends the
//!   *identical* line (same `--job-id`) on a fresh connection; the
//!   daemon's idempotency layer turns an already-applied duplicate into
//!   the original cached response instead of a double execution.
//!
//! The address is read through an [`AddrBook`] on every connect, so a
//! harness restarting the daemon on a new ephemeral port just updates the
//! book and in-flight retries follow it.

pub mod json;

pub use json::{parse, Json};

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shared, mutable server address: clients re-read it on every
/// reconnect, so a daemon restarted on a new port is found as soon as the
/// restarter calls [`AddrBook::set`].
#[derive(Clone)]
pub struct AddrBook(Arc<Mutex<String>>);

impl AddrBook {
    /// A book holding `addr` (e.g. `127.0.0.1:45123`).
    pub fn new(addr: impl Into<String>) -> AddrBook {
        AddrBook(Arc::new(Mutex::new(addr.into())))
    }

    /// Replaces the address (daemon restarted elsewhere).
    pub fn set(&self, addr: impl Into<String>) {
        *self.0.lock().unwrap() = addr.into();
    }

    /// The current address.
    pub fn get(&self) -> String {
        self.0.lock().unwrap().clone()
    }
}

/// Retry tuning for [`Client::call`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Hard per-job deadline: `call` returns [`CallError::Deadline`] once
    /// this much wall time has elapsed without a terminal response.
    pub deadline: Duration,
    /// First backoff after a transport failure; doubles per consecutive
    /// failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Ceiling on a single `retry_after_hint` sleep (the server's hint is
    /// an estimate, not a command).
    pub hint_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            deadline: Duration::from_secs(60),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            hint_cap: Duration::from_millis(250),
        }
    }
}

/// Why [`Client::call`] gave up.
#[derive(Debug)]
pub enum CallError {
    /// The per-job deadline expired. `last` describes the most recent
    /// failure (transport error or retryable refusal) for diagnostics.
    Deadline {
        /// Wall time spent before giving up.
        elapsed: Duration,
        /// Human-readable description of the last obstacle.
        last: String,
    },
    /// The server answered with a terminal structured error (anything
    /// other than `overloaded`/`shutting_down`/`idle_timeout`) — e.g.
    /// `bad_request`, `session_evicted`, or `duplicate_replay` (which
    /// proves the work *was* applied; query instead of retrying).
    Failed(Json),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Deadline { elapsed, last } => {
                write!(f, "deadline after {elapsed:.1?}: {last}")
            }
            CallError::Failed(v) => write!(f, "server error: kind={} {v:?}", v.kind()),
        }
    }
}

/// Cumulative client-side retry accounting, for harness assertions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// Fresh TCP connections established (first connect included).
    pub connects: u64,
    /// Identical lines resent after a transport failure (the idempotent
    /// retry path).
    pub resends: u64,
    /// `retry_after_hint` sleeps honored.
    pub hint_sleeps: u64,
}

/// The reconnecting client. Not thread-safe by design — one client per
/// harness thread, mirroring one connection per feeder on the server.
pub struct Client {
    book: AddrBook,
    policy: RetryPolicy,
    conn: Option<(TcpStream, BufReader<TcpStream>)>,
    /// splitmix64 state for backoff jitter — deterministic per seed.
    rng: u64,
    /// Monotone sequence feeding generated job ids.
    seq: u64,
    id_prefix: String,
    /// Retry accounting.
    pub stats: ClientStats,
}

/// Ops that mutate or read session state and therefore ride the
/// idempotent `--job-id` path; control ops (`stats`, `shutdown`, `quit`)
/// are sent bare.
fn takes_job_id(line: &str) -> bool {
    matches!(
        line.split_whitespace().next().unwrap_or(""),
        "analyze" | "factor" | "refactor" | "solve"
    )
}

impl Client {
    /// A client reading addresses from `book`. `id_prefix` namespaces the
    /// generated job ids (use a distinct prefix per client so ids never
    /// collide across sessions); `seed` makes the backoff jitter
    /// replayable.
    pub fn new(
        book: AddrBook,
        id_prefix: impl Into<String>,
        seed: u64,
        policy: RetryPolicy,
    ) -> Client {
        Client {
            book,
            policy,
            conn: None,
            rng: seed | 1,
            seq: 0,
            id_prefix: id_prefix.into(),
            stats: ClientStats::default(),
        }
    }

    /// Uniform in `[0, 1)` (splitmix64).
    fn jitter_unit(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The backoff before retry number `attempt` (0-based): exponential
    /// from the base, capped, with ±50% jitter.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self
            .policy
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.policy.backoff_cap);
        exp.mul_f64(0.5 + self.jitter_unit())
    }

    /// Drops the current connection (next attempt reconnects).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn ensure_conn(&mut self, remaining: Duration) -> Result<(), String> {
        if self.conn.is_some() {
            return Ok(());
        }
        let addr = self.book.get();
        let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
            .map_err(|e| format!("read timeout: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        self.conn = Some((stream, reader));
        self.stats.connects += 1;
        Ok(())
    }

    /// One bare request/response round-trip on the current connection —
    /// no retries, no job id. For control ops (`stats`, `shutdown`) and
    /// tests that need exact-one-attempt semantics.
    pub fn call_once(&mut self, line: &str) -> Result<Json, String> {
        self.ensure_conn(self.policy.deadline)?;
        let (stream, reader) = self.conn.as_mut().expect("just connected");
        let io = (|| {
            writeln!(stream, "{line}")?;
            stream.flush()?;
            let mut resp = String::new();
            reader.read_line(&mut resp)?;
            Ok::<String, std::io::Error>(resp)
        })();
        match io {
            Err(e) => {
                self.conn = None;
                Err(format!("transport: {e}"))
            }
            Ok(resp) if resp.is_empty() => {
                self.conn = None;
                Err("connection closed before the response".to_string())
            }
            Ok(resp) => {
                parse(resp.trim_end()).map_err(|e| format!("unparseable response {resp:?}: {e}"))
            }
        }
    }

    /// Sends `line` with a freshly generated job id (for session ops) and
    /// retries — across backpressure, reconnects and daemon restarts —
    /// until success, a terminal error, or the per-job deadline.
    pub fn call(&mut self, line: &str) -> Result<Json, CallError> {
        self.seq += 1;
        let wire = if takes_job_id(line) {
            format!("{line} --job-id {}-{}", self.id_prefix, self.seq)
        } else {
            line.to_string()
        };
        self.call_wire(&wire)
    }

    /// [`Client::call`] with a caller-chosen job id — for resending a job
    /// whose id must survive the caller's own restarts.
    pub fn call_with_id(&mut self, line: &str, job_id: &str) -> Result<Json, CallError> {
        self.call_wire(&format!("{line} --job-id {job_id}"))
    }

    fn call_wire(&mut self, wire: &str) -> Result<Json, CallError> {
        let started = Instant::now();
        let mut failures = 0u32;
        let mut last = String::from("no attempt made");
        let mut sent_once = false;
        loop {
            let elapsed = started.elapsed();
            let Some(remaining) = self.policy.deadline.checked_sub(elapsed) else {
                return Err(CallError::Deadline { elapsed, last });
            };
            if let Err(e) = self.ensure_conn(remaining) {
                last = e;
                failures += 1;
                let pause = self.backoff(failures - 1).min(remaining);
                std::thread::sleep(pause);
                continue;
            }
            if sent_once {
                self.stats.resends += 1;
            }
            match self.call_once(wire) {
                Err(e) => {
                    // A lost response is indistinguishable from a lost
                    // request; the job id makes the resend safe.
                    sent_once = true;
                    last = e;
                    failures += 1;
                    let pause = self.backoff(failures - 1).min(remaining);
                    std::thread::sleep(pause);
                }
                Ok(v) => {
                    sent_once = true;
                    if v.status() == "ok" {
                        return Ok(v);
                    }
                    match v.kind() {
                        "overloaded" | "shutting_down" => {
                            failures = 0; // the server is alive, just busy
                            let hint = v
                                .get("retry_after_hint")
                                .and_then(Json::as_num)
                                .unwrap_or(0.05)
                                .max(0.001);
                            let pause = Duration::from_secs_f64(hint)
                                .min(self.policy.hint_cap)
                                .min(remaining);
                            last = format!("refused: {}", v.kind());
                            self.stats.hint_sleeps += 1;
                            std::thread::sleep(pause);
                        }
                        // The server closed us for idling; reconnect and
                        // resend.
                        "idle_timeout" => {
                            self.conn = None;
                            last = "idle timeout".to_string();
                        }
                        _ => return Err(CallError::Failed(v)),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn ok_line(id: u64) -> String {
        format!(r#"{{"id":{id},"op":"solve","session":"s","status":"ok","seconds":0.001}}"#)
    }

    #[test]
    fn backoff_is_capped_and_jittered() {
        let mut c = Client::new(AddrBook::new("127.0.0.1:1"), "t", 7, RetryPolicy::default());
        let mut seen = std::collections::HashSet::new();
        for attempt in 0..20 {
            let b = c.backoff(attempt);
            // cap 500ms, max jitter x1.5
            assert!(b <= Duration::from_millis(750), "attempt {attempt}: {b:?}");
            seen.insert(b);
        }
        assert!(seen.len() > 10, "jitter should spread the samples");
        // Early backoffs stay near the base.
        let first = c.backoff(0);
        assert!(first >= Duration::from_millis(5) && first <= Duration::from_millis(15));
    }

    #[test]
    fn reconnects_and_resends_the_same_job_id() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First connection: read the request, drop without answering
            // (a crash from the client's point of view).
            let (s1, _) = listener.accept().unwrap();
            let mut r1 = BufReader::new(s1);
            let mut line1 = String::new();
            r1.read_line(&mut line1).unwrap();
            drop(r1);
            // Second connection: same line must arrive (same job id).
            let (s2, _) = listener.accept().unwrap();
            let mut r2 = BufReader::new(s2.try_clone().unwrap());
            let mut line2 = String::new();
            r2.read_line(&mut line2).unwrap();
            let mut w = s2;
            writeln!(w, "{}", ok_line(1)).unwrap();
            (line1, line2)
        });
        let mut c = Client::new(
            AddrBook::new(addr),
            "c9",
            42,
            RetryPolicy {
                deadline: Duration::from_secs(20),
                ..RetryPolicy::default()
            },
        );
        let v = c.call("solve s").expect("retry should succeed");
        assert_eq!(v.status(), "ok");
        let (line1, line2) = server.join().unwrap();
        assert_eq!(line1, line2, "resend must reuse the job id");
        assert!(line1.contains("--job-id c9-1"), "line: {line1}");
        assert!(c.stats.resends >= 1);
        assert!(c.stats.connects >= 2);
    }

    #[test]
    fn honors_retry_after_hint_then_succeeds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut r = BufReader::new(s.try_clone().unwrap());
            let mut w = s;
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            writeln!(
                w,
                r#"{{"id":1,"op":"solve","session":"s","status":"error","kind":"overloaded","exit_code":8,"queue_depth":8,"retry_after_hint":0.012}}"#
            )
            .unwrap();
            line.clear();
            r.read_line(&mut line).unwrap();
            writeln!(w, "{}", ok_line(2)).unwrap();
        });
        let mut c = Client::new(AddrBook::new(addr), "h", 3, RetryPolicy::default());
        let t0 = Instant::now();
        let v = c.call("solve s").expect("should ride out the refusal");
        assert_eq!(v.status(), "ok");
        assert!(c.stats.hint_sleeps >= 1);
        assert!(t0.elapsed() >= Duration::from_millis(10), "hint not slept");
        server.join().unwrap();
    }

    #[test]
    fn terminal_errors_do_not_retry_and_deadline_is_enforced() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Terminal error first...
            let (s, _) = listener.accept().unwrap();
            let mut r = BufReader::new(s.try_clone().unwrap());
            let mut w = s;
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            writeln!(
                w,
                r#"{{"id":1,"op":"solve","session":"s","status":"error","kind":"bad_request","exit_code":2,"error":"nope"}}"#
            )
            .unwrap();
            // ...then a connection that never answers (deadline test).
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            std::thread::sleep(Duration::from_millis(400));
        });
        let mut c = Client::new(
            AddrBook::new(addr),
            "d",
            11,
            RetryPolicy {
                deadline: Duration::from_millis(200),
                ..RetryPolicy::default()
            },
        );
        match c.call("solve s") {
            Err(CallError::Failed(v)) => assert_eq!(v.kind(), "bad_request"),
            other => panic!("wanted Failed(bad_request), got {other:?}"),
        }
        let t0 = Instant::now();
        match c.call("solve s") {
            Err(CallError::Deadline { .. }) => {}
            other => panic!("wanted Deadline, got {other:?}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(5));
        server.join().unwrap();
    }
}
