//! The numerical factorization: `Factor(k)` and `Update(k, j)` task bodies
//! plus the sequential and parallel drivers.
//!
//! Partial pivoting happens **inside the static structure**: `Factor(k)`
//! searches the whole stacked panel of block column `k`. Positions outside
//! the scalar candidate set of a column hold exact zeros (the George–Ng
//! closure keeps them zero), so the max-magnitude search can never select a
//! non-candidate row, and every interchange exchanges two rows of the same
//! merged row class — which have identical structure. That is why applying
//! the recorded interchanges lazily to each destination column in
//! `Update(k, j)` is always possible: either both rows are stored in the
//! destination column, or both are structurally (hence numerically) zero
//! there.

use crate::blocks::BlockMatrix;
use crate::LuError;
use parking_lot::Mutex;
use splu_dense::{gemm_sub, lu_panel_with_rule, trsm_lower_unit, DenseMat, PivotRule};
use splu_sched::{execute, Mapping, Task, TaskGraph};
use std::sync::atomic::{AtomicBool, Ordering};

/// Factorizes block column `k`: gathers the stacked panel, runs panel LU
/// with partial pivoting, scatters the factors back and records the pivot
/// sequence.
pub fn factor_task(bm: &BlockMatrix, k: usize, pivot_threshold: f64) -> Result<(), LuError> {
    factor_task_with_rule(bm, k, PivotRule::Partial, pivot_threshold)
}

/// [`factor_task`] with an explicit pivot-selection rule (threshold or
/// static-diagonal pivoting; see [`PivotRule`]).
pub fn factor_task_with_rule(
    bm: &BlockMatrix,
    k: usize,
    rule: PivotRule,
    pivot_threshold: f64,
) -> Result<(), LuError> {
    let stack = bm.stack(k);
    let mut col = bm.column(k).write();
    let w = col.blocks[0].ncols();
    let m = stack.height();

    // Gather the L-region blocks into one contiguous panel.
    let mut panel = DenseMat::zeros(m, w);
    for (t, &ib) in stack.l_rows.iter().enumerate() {
        let off = stack.offsets[t];
        let blk = col.block(ib).expect("L-region block must exist");
        let h = blk.nrows();
        for jj in 0..w {
            panel.col_mut(jj)[off..off + h].copy_from_slice(blk.col(jj));
        }
    }

    let piv = lu_panel_with_rule(&mut panel, rule, pivot_threshold).map_err(|e| {
        let splu_dense::PanelError::Singular { column } = e;
        // Report the global column (in factorization order).
        LuError::NumericallySingular {
            column: stack_global_col(bm, k, column),
        }
    })?;

    // Scatter back.
    for (t, &ib) in stack.l_rows.iter().enumerate() {
        let off = stack.offsets[t];
        let blk = col.block_mut(ib).expect("L-region block must exist");
        let h = blk.nrows();
        for jj in 0..w {
            blk.col_mut(jj).copy_from_slice(&panel.col(jj)[off..off + h]);
        }
    }
    col.pivots = Some(piv);
    Ok(())
}

/// Global (factorization-order) column index of panel-local column `c` of
/// block column `k` — the diagonal block starts the stack, so position `c`
/// of the stack is row/column `start(k) + c`.
fn stack_global_col(bm: &BlockMatrix, k: usize, c: usize) -> usize {
    // Widths of blocks 0..k sum to the start of block k; recover it from the
    // stack maps (the diagonal block of column t has width offsets[1]).
    (0..k).map(|t| bm.stack(t).offsets[1]).sum::<usize>() + c
}

/// Updates block column `j` by the factored block column `k`:
/// applies `k`'s pivot interchanges to column `j`, computes
/// `Ū(k, j) = L(k, k)⁻¹ B̄(k, j)` and performs the Schur updates
/// `B̄(I, j) ← B̄(I, j) − L(I, k) · Ū(k, j)`.
pub fn update_task(bm: &BlockMatrix, k: usize, j: usize) {
    debug_assert!(k < j);
    let stack = bm.stack(k);
    let col_k = bm.column(k).read();
    let mut col_j = bm.column(j).write();
    let piv = col_k
        .pivots
        .as_ref()
        .expect("Update(k, j) scheduled before Factor(k)");

    // 1. Apply the interchanges of Factor(k) to column j.
    let w_j = col_j.blocks[0].ncols();
    for (c, &p) in piv.swaps().iter().enumerate() {
        if c == p {
            continue;
        }
        let (ib1, r1) = stack.locate(c);
        let (ib2, r2) = stack.locate(p);
        match (col_j.find(ib1), col_j.find(ib2)) {
            (Some(q1), Some(q2)) if q1 == q2 => col_j.blocks[q1].swap_rows(r1, r2),
            (Some(q1), Some(q2)) => {
                let (b1, b2) = col_j.two_blocks_mut(q1, q2);
                for jj in 0..w_j {
                    std::mem::swap(&mut b1[(r1, jj)], &mut b2[(r2, jj)]);
                }
            }
            (Some(q), None) => debug_assert_row_zero(&col_j.blocks[q], r1),
            (None, Some(q)) => debug_assert_row_zero(&col_j.blocks[q], r2),
            (None, None) => {}
        }
    }

    // 2. Ū(k, j) = L(k, k)⁻¹ · B̄(k, j) (unit lower triangular solve).
    let diag = col_k.block(k).expect("diagonal block exists");
    let qk = col_j
        .find(k)
        .expect("Update(k, j) requires block B̄(k, j)");
    trsm_lower_unit(diag, &mut col_j.blocks[qk]);

    // 3. Schur updates down the L blocks of column k. A missing destination
    //    block means the contribution is structurally — hence exactly —
    //    zero (see module docs), and can be skipped.
    for &ib in &stack.l_rows[1..] {
        let l_ik = col_k.block(ib).expect("L-region block must exist");
        if let Some(q) = col_j.find(ib) {
            debug_assert_ne!(q, qk);
            let (dst, u_kj) = col_j.two_blocks_mut(q, qk);
            gemm_sub(dst, l_ik, u_kj);
        }
    }
}

/// Debug-only invariant: a row involved in an interchange whose partner has
/// no storage in this column must itself be entirely zero here.
fn debug_assert_row_zero(blk: &DenseMat, r: usize) {
    if cfg!(debug_assertions) {
        for jj in 0..blk.ncols() {
            debug_assert_eq!(
                blk[(r, jj)],
                0.0,
                "pivot interchange would lose a nonzero at local row {r}"
            );
        }
    }
}

/// Runs the whole factorization over a task graph with `nthreads` workers
/// under the given mapping. On numerical breakdown the remaining tasks
/// drain as no-ops and the first error is returned.
pub fn factor_with_graph(
    bm: &BlockMatrix,
    graph: &TaskGraph,
    nthreads: usize,
    mapping: Mapping,
    pivot_threshold: f64,
) -> Result<(), LuError> {
    factor_with_graph_rule(bm, graph, nthreads, mapping, PivotRule::Partial, pivot_threshold)
}

/// [`factor_with_graph`] with an explicit pivot-selection rule.
pub fn factor_with_graph_rule(
    bm: &BlockMatrix,
    graph: &TaskGraph,
    nthreads: usize,
    mapping: Mapping,
    rule: PivotRule,
    pivot_threshold: f64,
) -> Result<(), LuError> {
    let failed = AtomicBool::new(false);
    let first_error: Mutex<Option<LuError>> = Mutex::new(None);
    execute(graph, nthreads, mapping, |task| {
        if failed.load(Ordering::Acquire) {
            return;
        }
        match task {
            Task::Factor(k) => {
                if let Err(e) = factor_task_with_rule(bm, k, rule, pivot_threshold) {
                    failed.store(true, Ordering::Release);
                    first_error.lock().get_or_insert(e);
                }
            }
            Task::Update { src, dst } => update_task(bm, src, dst),
        }
    });
    match first_error.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Sequential **left-looking** (fan-in) factorization: for each block
/// column `j` in order, first apply every update `U(k, j)` with `k < j`
/// (ascending — a topological order of both task graphs), then `Factor(j)`.
///
/// This is the SuperLU-style column discipline, in contrast to the
/// right-looking order the S* task formulation suggests. Both are
/// topological orders of the same dependence DAG over identical task
/// bodies, so the results are **bit-identical** to the graph-driven
/// execution — which the test-suite asserts. Exposed as an ablation and as
/// a simple driver for callers that do not want the scheduler.
pub fn factor_left_looking(bm: &BlockMatrix, pivot_threshold: f64) -> Result<(), LuError> {
    let nb = bm.num_block_cols();
    for j in 0..nb {
        // Sources = U-region block rows of column j, ascending.
        let sources: Vec<usize> = {
            let col = bm.column(j).read();
            col.block_rows.iter().copied().take_while(|&k| k < j).collect()
        };
        for k in sources {
            update_task(bm, k, j);
        }
        factor_task(bm, j, pivot_threshold)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::BlockMatrix;
    use splu_dense::{lu_full, lu_solve};
    use splu_sched::build_eforest_graph;
    use splu_sparse::CscMatrix;
    use splu_symbolic::fixtures::fig1_matrix;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::{supernode_partition, BlockStructure};

    /// Factor + solve through the block machinery and compare with the
    /// dense oracle on the same (already permuted) matrix.
    fn factor_and_check(a: &CscMatrix) {
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let part = supernode_partition(&f);
        let bs = BlockStructure::new(&f, part);
        let bm = BlockMatrix::assemble(a, &bs);
        let graph = build_eforest_graph(&bs);
        factor_with_graph(&bm, &graph, 1, Mapping::Static1D, 0.0).unwrap();

        // Dense oracle.
        let n = a.nrows();
        let mut dense = DenseMat::from_fn(n, n, |i, j| a.get(i, j));
        let piv = lu_full(&mut dense).unwrap();

        // Compare solves on a few right-hand sides.
        for trial in 0..3 {
            let b: Vec<f64> = (0..n).map(|i| ((i * 7 + trial * 3) % 5) as f64 - 2.0).collect();
            let mut x_oracle = b.clone();
            lu_solve(&dense, &piv, &mut x_oracle);
            let mut x = b.clone();
            crate::solve::solve_permuted(&bm, &bs, &mut x);
            for i in 0..n {
                assert!(
                    (x[i] - x_oracle[i]).abs() < 1e-8,
                    "solution mismatch at {i}: {} vs {}",
                    x[i],
                    x_oracle[i]
                );
            }
        }
    }

    #[test]
    fn fig1_matrix_factors_correctly() {
        factor_and_check(&fig1_matrix());
    }

    #[test]
    fn pivoting_is_exercised() {
        // Make the diagonal tiny so pivoting must pick off-diagonal rows.
        let mut a = fig1_matrix();
        let n = a.nrows();
        let mut trips: Vec<(usize, usize, f64)> = a.triplets().collect();
        for t in trips.iter_mut() {
            if t.0 == t.1 {
                t.2 = 1e-6;
            }
        }
        a = CscMatrix::from_triplets(n, n, &trips).unwrap();
        factor_and_check(&a);
    }

    #[test]
    fn left_looking_is_bit_identical_to_graph_execution() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(64);
        let n = 35;
        let mut trips: Vec<(usize, usize, f64)> = (0..n)
            .map(|i| (i, i, 3.0 + rng.gen_range(0.0..1.0)))
            .collect();
        for _ in 0..4 * n {
            trips.push((
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-1.0..1.0),
            ));
        }
        let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let graph = build_eforest_graph(&bs);

        let bm_right = BlockMatrix::assemble(&a, &bs);
        factor_with_graph(&bm_right, &graph, 2, Mapping::Static1D, 0.0).unwrap();
        let bm_left = BlockMatrix::assemble(&a, &bs);
        factor_left_looking(&bm_left, 0.0).unwrap();

        for k in 0..bm_right.num_block_cols() {
            let cr = bm_right.column(k).read();
            let cl = bm_left.column(k).read();
            assert_eq!(cr.pivots, cl.pivots, "pivot sequences differ at {k}");
            for (br, bl) in cr.blocks.iter().zip(&cl.blocks) {
                assert_eq!(br.data(), bl.data(), "block values differ at column {k}");
            }
        }
    }

    #[test]
    fn singular_matrix_reports_breakdown() {
        // Structurally fine but numerically rank-deficient: zero out all of
        // column 0 except a diagonal explicitly set to 0.
        let a = CscMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 0.0), (1, 1, 1.0), (0, 1, 1.0), (1, 0, 0.0)],
        )
        .unwrap();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let bm = BlockMatrix::assemble(&a, &bs);
        let graph = build_eforest_graph(&bs);
        let err = factor_with_graph(&bm, &graph, 1, Mapping::Static1D, 0.0).unwrap_err();
        assert!(matches!(err, LuError::NumericallySingular { column: 0 }));
    }
}
