//! The numerical factorization: `Factor(k)` and `Update(k, j)` task bodies
//! plus the sequential and parallel drivers.
//!
//! Partial pivoting happens **inside the static structure**: `Factor(k)`
//! searches the whole stacked panel of block column `k`. Positions outside
//! the scalar candidate set of a column hold exact zeros (the George–Ng
//! closure keeps them zero), so the max-magnitude search can never select a
//! non-candidate row, and every interchange exchanges two rows of the same
//! merged row class — which have identical structure. That is why applying
//! the recorded interchanges lazily to each destination column in
//! `Update(k, j)` is always possible: either both rows are stored in the
//! destination column, or both are structurally (hence numerically) zero
//! there.
//!
//! Storage is panel-major (see [`crate::blocks`]): the L-region of a block
//! column *is* the stacked panel, so `Factor(k)` pivots **in place** — no
//! gather into a temporary and no scatter back — and `Update(k, j)` reads
//! the `L(i, k)` operands as strided row ranges of column `k`'s panel
//! straight into the gemm kernel. [`BlockMatrix::panel_copy_count`] stays
//! at zero across the whole factorization (asserted by the test-suite).

use crate::blocks::BlockMatrix;
use crate::LuError;
use splu_dense::{
    lu_panel_with_policy_into, Dispatch, PanelBreakdown, PanelError, PanelOutcome, PivotRule,
};
use splu_obs::{Counter, MetricsRegistry};

/// Flops of a panel LU over an `m × w` stacked panel, exactly the cost
/// model of `crate::costs::estimate_task_costs`:
/// `Σ_c (m − c − 1) · (1 + 2 (w − c − 1))`. The formula is integral, so
/// the counted value equals the model's `f64` estimate bit-for-bit on any
/// panel that fits in 53 bits of flops.
pub(crate) fn factor_flops(m: usize, w: usize) -> u64 {
    let mut flops = 0u64;
    for c in 0..w.min(m) {
        let below = (m - c - 1) as u64;
        flops += below * (1 + 2 * (w - c - 1) as u64);
    }
    flops
}

/// Factorizes block column `k`: runs panel LU with partial pivoting **in
/// place** on the stored stacked panel and records the pivot sequence.
pub fn factor_task(bm: &BlockMatrix, k: usize, pivot_threshold: f64) -> Result<(), LuError> {
    factor_task_with_rule(bm, k, PivotRule::Partial, pivot_threshold)
}

/// [`factor_task`] with an explicit pivot-selection rule (threshold or
/// static-diagonal pivoting; see [`PivotRule`]).
pub fn factor_task_with_rule(
    bm: &BlockMatrix,
    k: usize,
    rule: PivotRule,
    pivot_threshold: f64,
) -> Result<(), LuError> {
    factor_task_with_policy(bm, k, rule, pivot_threshold, PanelBreakdown::Error, None).map(|_| ())
}

/// [`factor_task_with_rule`] under an explicit breakdown policy: with
/// [`PanelBreakdown::Perturb`] a column with no acceptable pivot gets its
/// diagonal replaced instead of failing, and the perturbed columns are
/// returned as **global** (factorization-order) column indices with their
/// perturbation magnitudes. `force_breakdown_at` deterministically treats
/// that global column as below threshold (the fault-injection hook).
///
/// Every column index this function emits — in errors and in the perturbed
/// list — is global, mapped through [`BlockMatrix::global_col_start`], so
/// callers never remap panel-local indices themselves.
pub fn factor_task_with_policy(
    bm: &BlockMatrix,
    k: usize,
    rule: PivotRule,
    pivot_threshold: f64,
    breakdown: PanelBreakdown,
    force_breakdown_at: Option<usize>,
) -> Result<Vec<(usize, f64)>, LuError> {
    let start = bm.global_col_start(k);
    let mut col = bm.column(k).write();
    let width = col.width();
    let force_local = force_breakdown_at
        .filter(|&g| g >= start && g < start + width)
        .map(|g| g - start);
    // Recycle the column's previous pivot storage (if any): on a session
    // refactorization the swap vector's capacity survives the reset, so the
    // panel LU below performs no heap allocation.
    let mut out = PanelOutcome {
        pivots: col.pivots.take().unwrap_or_default(),
        perturbed: Vec::new(),
    };
    lu_panel_with_policy_into(
        &mut col.panel,
        rule,
        pivot_threshold,
        breakdown,
        force_local,
        &mut out,
    )
    .map_err(|e| match e {
        // Report the global column (in factorization order).
        PanelError::Singular { column } => LuError::NumericallySingular {
            column: start + column,
        },
        PanelError::NonFinite { column } => LuError::NonFinitePivot {
            column: start + column,
        },
    })?;
    col.pivots = Some(out.pivots);
    Ok(out
        .perturbed
        .into_iter()
        .map(|(c, v)| (start + c, v))
        .collect())
}

/// Updates block column `j` by the factored block column `k`:
/// applies `k`'s pivot interchanges to column `j`, computes
/// `Ū(k, j) = L(k, k)⁻¹ B̄(k, j)` and performs the Schur updates
/// `B̄(I, j) ← B̄(I, j) − L(I, k) · Ū(k, j)` — each `L(I, k)` read as a
/// strided row range of column `k`'s stored panel (zero copies).
pub fn update_task(bm: &BlockMatrix, k: usize, j: usize) {
    update_task_with(bm, k, j, &Dispatch::portable())
}

/// [`update_task`] through an explicit kernel [`Dispatch`] table — the form
/// the unified driver calls, with the table resolved once per
/// factorization. Every table produces bit-identical results (the contract
/// on [`splu_dense::gemm_sub_view`]).
pub fn update_task_with(bm: &BlockMatrix, k: usize, j: usize, kernels: &Dispatch) {
    update_task_metered(bm, k, j, kernels, None)
}

/// [`update_task_with`] with optional kernel-call metering: each executed
/// `trsm`/`gemm` adds its call and its model flop count
/// ([`crate::costs::estimate_task_costs`]'s formulas) to the registry.
/// Counting never changes what runs — `None` is the production fast path.
pub(crate) fn update_task_metered(
    bm: &BlockMatrix,
    k: usize,
    j: usize,
    kernels: &Dispatch,
    metrics: Option<&MetricsRegistry>,
) {
    debug_assert!(k < j);
    let stack = bm.stack(k);
    let col_k = bm.column(k).read();
    let mut col_j = bm.column(j).write();
    let piv = col_k
        .pivots
        .as_ref()
        .expect("Update(k, j) scheduled before Factor(k)");

    // 1. Apply the interchanges of Factor(k) to column j.
    for (c, &p) in piv.swaps().iter().enumerate() {
        if c == p {
            continue;
        }
        col_j.swap_scalar_rows(stack.locate(c), stack.locate(p));
    }

    // 2. Ū(k, j) = L(k, k)⁻¹ · B̄(k, j) (unit lower triangular solve). The
    //    diagonal block is the top square of column k's panel; B̄(k, j) is
    //    in column j's U-region because k < j.
    let w_k = col_k.width();
    let w_j = col_j.width();
    let diag = col_k.panel.row_range(0..w_k);
    let qk = col_j.find(k).expect("Update(k, j) requires block B̄(k, j)");
    debug_assert!(qk < col_j.u_count());
    kernels.trsm_lower_unit(diag, col_j.ublocks[qk].as_view_mut());
    if let Some(reg) = metrics {
        reg.incr(Counter::TrsmCalls);
        reg.add(
            Counter::TrsmFlops,
            (w_k * w_k.saturating_sub(1) * w_j) as u64,
        );
    }

    // 3. Schur updates down the L blocks of column k. A missing destination
    //    block means the contribution is structurally — hence exactly —
    //    zero (see module docs), and can be skipped.
    for (t, &ib) in stack.l_rows.iter().enumerate().skip(1) {
        if let Some(q) = col_j.find(ib) {
            let l_ik = col_k
                .panel
                .row_range(stack.offsets[t]..stack.offsets[t + 1]);
            let (dst, u_kj) = col_j.dst_and_u(q, qk);
            kernels.gemm_sub(dst, l_ik, u_kj);
            if let Some(reg) = metrics {
                let rows = stack.offsets[t + 1] - stack.offsets[t];
                reg.incr(Counter::GemmCalls);
                reg.add(Counter::GemmFlops, (2 * rows * w_k * w_j) as u64);
            }
        }
    }
}

/// Sequential **left-looking** (fan-in) factorization: for each block
/// column `j` in order, first apply every update `U(k, j)` with `k < j`
/// (ascending — a topological order of both task graphs), then `Factor(j)`.
///
/// This is the SuperLU-style column discipline, in contrast to the
/// right-looking order the S* task formulation suggests. Both are
/// topological orders of the same dependence DAG over identical task
/// bodies, so the results are **bit-identical** to the graph-driven
/// execution — which the test-suite asserts. Exposed as an ablation and as
/// a simple driver for callers that do not want the scheduler.
pub fn factor_left_looking(bm: &BlockMatrix, pivot_threshold: f64) -> Result<(), LuError> {
    let nb = bm.num_block_cols();
    for j in 0..nb {
        // Sources = U-region block rows of column j, ascending.
        let sources: Vec<usize> = {
            let col = bm.column(j).read();
            col.block_rows
                .iter()
                .copied()
                .take_while(|&k| k < j)
                .collect()
        };
        for k in sources {
            update_task(bm, k, j);
        }
        factor_task(bm, j, pivot_threshold)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::BlockMatrix;
    use crate::request::{factor_numeric_with, NumericRequest};
    use splu_dense::{lu_full, lu_solve, DenseMat};
    use splu_sched::{build_eforest_graph, Mapping};
    use splu_sparse::CscMatrix;
    use splu_symbolic::fixtures::fig1_matrix;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::{supernode_partition, BlockStructure};

    /// Factor + solve through the block machinery and compare with the
    /// dense oracle on the same (already permuted) matrix.
    fn factor_and_check(a: &CscMatrix) {
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let part = supernode_partition(&f);
        let bs = BlockStructure::new(&f, part);
        let bm = BlockMatrix::assemble(a, &bs);
        let graph = build_eforest_graph(&bs);
        factor_numeric_with(&bm, &NumericRequest::coarse(&graph, Mapping::Static1D)).unwrap();
        assert_eq!(bm.panel_copy_count(), 0, "factorization must be zero-copy");

        // Dense oracle.
        let n = a.nrows();
        let mut dense = DenseMat::from_fn(n, n, |i, j| a.get(i, j));
        let piv = lu_full(&mut dense).unwrap();

        // Compare solves on a few right-hand sides.
        for trial in 0..3 {
            let b: Vec<f64> = (0..n)
                .map(|i| ((i * 7 + trial * 3) % 5) as f64 - 2.0)
                .collect();
            let mut x_oracle = b.clone();
            lu_solve(&dense, &piv, &mut x_oracle);
            let mut x = b.clone();
            crate::solve::solve_permuted(&bm, &bs, &mut x);
            for i in 0..n {
                assert!(
                    (x[i] - x_oracle[i]).abs() < 1e-8,
                    "solution mismatch at {i}: {} vs {}",
                    x[i],
                    x_oracle[i]
                );
            }
        }
    }

    #[test]
    fn fig1_matrix_factors_correctly() {
        factor_and_check(&fig1_matrix());
    }

    #[test]
    fn pivoting_is_exercised() {
        // Make the diagonal tiny so pivoting must pick off-diagonal rows.
        let mut a = fig1_matrix();
        let n = a.nrows();
        let mut trips: Vec<(usize, usize, f64)> = a.triplets().collect();
        for t in trips.iter_mut() {
            if t.0 == t.1 {
                t.2 = 1e-6;
            }
        }
        a = CscMatrix::from_triplets(n, n, &trips).unwrap();
        factor_and_check(&a);
    }

    #[test]
    fn left_looking_is_bit_identical_to_graph_execution() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(64);
        let n = 35;
        let mut trips: Vec<(usize, usize, f64)> = (0..n)
            .map(|i| (i, i, 3.0 + rng.gen_range(0.0..1.0)))
            .collect();
        for _ in 0..4 * n {
            trips.push((
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-1.0..1.0),
            ));
        }
        let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let graph = build_eforest_graph(&bs);

        let bm_right = BlockMatrix::assemble(&a, &bs);
        factor_numeric_with(
            &bm_right,
            &NumericRequest::coarse(&graph, Mapping::Static1D).threads(2),
        )
        .unwrap();
        let bm_left = BlockMatrix::assemble(&a, &bs);
        factor_left_looking(&bm_left, 0.0).unwrap();

        for k in 0..bm_right.num_block_cols() {
            let cr = bm_right.column(k).read();
            let cl = bm_left.column(k).read();
            assert_eq!(cr.pivots, cl.pivots, "pivot sequences differ at {k}");
            for (br, bl) in cr.ublocks.iter().zip(&cl.ublocks) {
                assert_eq!(br.data(), bl.data(), "U values differ at column {k}");
            }
            assert_eq!(
                cr.panel.data(),
                cl.panel.data(),
                "panel values differ at column {k}"
            );
        }
    }

    /// The acceptance instrument of the zero-copy layout: a full graph
    /// factorization never gathers or scatters a panel.
    #[test]
    fn graph_factorization_performs_zero_panel_copies() {
        let a = fig1_matrix();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let bm = BlockMatrix::assemble(&a, &bs);
        let graph = build_eforest_graph(&bs);
        factor_numeric_with(
            &bm,
            &NumericRequest::coarse(&graph, Mapping::Dynamic).threads(4),
        )
        .unwrap();
        assert_eq!(bm.panel_copy_count(), 0);
    }

    #[test]
    fn singular_matrix_reports_breakdown() {
        // Structurally fine but numerically rank-deficient: zero out all of
        // column 0 except a diagonal explicitly set to 0.
        let a =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 1, 1.0), (0, 1, 1.0), (1, 0, 0.0)])
                .unwrap();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let bm = BlockMatrix::assemble(&a, &bs);
        let graph = build_eforest_graph(&bs);
        let err = factor_numeric_with(&bm, &NumericRequest::coarse(&graph, Mapping::Static1D))
            .unwrap_err();
        assert!(matches!(err, LuError::NumericallySingular { column: 0 }));
    }
}
