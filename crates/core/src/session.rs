//! Persistent solver sessions: analyze once, factor and refactor many
//! times (the HYLU-style analyze / factor / re-factor split).
//!
//! The paper's premise is that the symbolic work — ordering, static
//! George–Ng fill, eforest postordering, supernode partition, task graph —
//! depends only on the sparsity pattern, while device- and
//! circuit-simulation workloads change the numeric *values* every step. A
//! [`SluSession`] caches all of the symbolic state (keyed by a pattern
//! hash, [`pattern_hash`]) plus the executor schedule, and exposes:
//!
//! * [`SluSession::analyze`] — the symbolic half, run once per pattern;
//! * [`SluSession::factor`] — numeric-only: assembles block storage for the
//!   given values and factors over the cached graph (no symbolic phases);
//! * [`SluSession::refactor`] — the hot path: additionally reuses the
//!   already-allocated panel-major storage and the cached scatter map, so
//!   with one thread, tracing off, and no watchdog it performs **zero heap
//!   allocation** (asserted under the `alloc-track` counting allocator);
//! * [`SluSession::solve`] / [`SluSession::try_solve`] /
//!   [`SluSession::solve_refined`] — operate on the latest factors.
//!
//! Values whose pattern hash disagrees with the analyzed one are rejected
//! with [`LuError::PatternMismatch`]; a solve before the first successful
//! factorization returns [`LuError::NotFactored`]. The refactorization is
//! **bitwise identical** to a fresh factorization of the same values —
//! same task bodies, same acquisition order (the cached
//! [`ExecSchedule`] replays the one-worker priority executor exactly, and
//! the parallel path reuses only the per-task priorities) — which the
//! session invariance suite asserts across thread counts and mappings.
//!
//! Equilibration is a *values* transformation, so the session itself
//! ignores [`Options::equilibrate`]; [`crate::SparseLu`] (a thin wrapper
//! over this API) scales the values before handing them to the session.

use crate::blocks::BlockMatrix;
use crate::observe::ObsSession;
use crate::request::{factor_numeric_with, NumericRequest};
use crate::solve::{solve_many_permuted, solve_permuted, solve_transposed_permuted};
use crate::{analyze_with, LuError, Options, Stats, SymbolicLu, SymbolicRequest};
use splu_sched::{ExecSchedule, FactorHealth, RunBudget, TaskGraph};
use splu_sparse::{CscMatrix, SparsityPattern};
use std::sync::Arc;

/// FNV-1a hash of a sparsity pattern (dimensions, column pointers, row
/// indices) — the session cache key. Two matrices share a hash exactly when
/// they share the structure the symbolic phases consume, so cached
/// orderings, fill, supernodes, and task graphs apply to either.
pub fn pattern_hash(pattern: &SparsityPattern) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    #[inline]
    fn eat(h: &mut u64, x: u64) {
        for b in x.to_le_bytes() {
            *h = (*h ^ b as u64).wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    eat(&mut h, pattern.nrows() as u64);
    eat(&mut h, pattern.ncols() as u64);
    for &p in pattern.col_ptr() {
        eat(&mut h, p as u64);
    }
    for &i in pattern.row_indices() {
        eat(&mut h, i as u64);
    }
    h
}

/// Where the `t`-th nonzero of the (original-order) input lands inside the
/// block storage — precomputed once so a refactorization scatters values
/// with plain indexed stores, no permutation lookups and no allocation.
#[derive(Debug, Clone, Copy)]
struct ScatterEntry {
    /// Destination block column.
    jb: u32,
    /// Index into the column's `ublocks`, or `u32::MAX` for the panel.
    ublock: u32,
    /// Column-major flat index inside that dense storage.
    flat: u32,
}

const SCATTER_PANEL: u32 = u32::MAX;

/// A persistent solver session: cached symbolic analysis + task graph +
/// executor schedule for one sparsity pattern, with reusable numeric
/// storage. See the [module docs](self) for the lifecycle.
pub struct SluSession {
    sym: SymbolicLu,
    graph: TaskGraph,
    schedule: Arc<ExecSchedule>,
    pattern_hash: u64,
    bm: Option<BlockMatrix>,
    scatter: Vec<ScatterEntry>,
    health: FactorHealth,
    factored: bool,
    budget: RunBudget,
}

impl SluSession {
    /// Runs the full symbolic analysis for `pattern` and caches everything
    /// the numeric phase needs: permutations, filled structure, supernode
    /// partition, the task graph of `opts.task_graph`, and its executor
    /// schedule. No numeric storage is allocated yet.
    pub fn analyze(pattern: &SparsityPattern, opts: &Options) -> Result<SluSession, LuError> {
        Self::analyze_inner(pattern, opts, None)
    }

    /// [`Self::analyze`] under an observability session: the symbolic
    /// phases record spans and counters exactly as
    /// [`crate::SparseLu::factor_observed`] does.
    pub fn analyze_observed(
        pattern: &SparsityPattern,
        opts: &Options,
        session: &ObsSession,
    ) -> Result<SluSession, LuError> {
        Self::analyze_inner(pattern, opts, Some(session))
    }

    fn analyze_inner(
        pattern: &SparsityPattern,
        opts: &Options,
        obs: Option<&ObsSession>,
    ) -> Result<SluSession, LuError> {
        let mut sreq = SymbolicRequest::from_options(opts);
        if let Some(o) = obs {
            sreq = sreq.observe(o.clone());
        }
        let sym = analyze_with(pattern, opts, &sreq)?;
        let (graph, schedule) = {
            let _p = obs.map(|o| o.phase("graph_build"));
            let graph = sym.build_graph(opts.task_graph);
            let schedule = Arc::new(ExecSchedule::for_graph(&graph));
            (graph, schedule)
        };
        Ok(SluSession {
            budget: opts.budget.clone(),
            sym,
            graph,
            schedule,
            pattern_hash: pattern_hash(pattern),
            bm: None,
            scatter: Vec::new(),
            health: FactorHealth::default(),
            factored: false,
        })
    }

    /// The cache key: the FNV-1a hash of the analyzed pattern.
    pub fn pattern_hash(&self) -> u64 {
        self.pattern_hash
    }

    /// Numeric-only factorization of `a` (original order, same pattern as
    /// analyzed): assembles fresh block storage and factors over the cached
    /// graph. No symbolic phase runs. Use [`Self::refactor`] to also reuse
    /// the storage of a previous factorization.
    pub fn factor(&mut self, a: &CscMatrix) -> Result<(), LuError> {
        self.factor_inner(a, None)
    }

    /// [`Self::factor`] under an observability session (numeric span,
    /// kernel counters, executor report).
    pub fn factor_observed(&mut self, a: &CscMatrix, obs: &ObsSession) -> Result<(), LuError> {
        self.factor_inner(a, Some(obs))
    }

    /// Refactorizes with new values: resets the existing panel-major
    /// storage in place, scatters `a`'s values through the cached scatter
    /// map, and re-runs the numeric phase over the cached graph and
    /// schedule. With `threads <= 1`, tracing off, and no watchdog the
    /// whole path performs **zero heap allocation**; the result is bitwise
    /// identical to [`Self::factor`] of the same values. Before the first
    /// [`Self::factor`] this simply *is* a factor call (storage must be
    /// allocated once).
    pub fn refactor(&mut self, a: &CscMatrix) -> Result<(), LuError> {
        self.refactor_inner(a, None)
    }

    /// [`Self::refactor`] under an observability session. Tracing takes
    /// the observed (allocating) executor path; phase walls still show
    /// symbolic time exactly zero.
    pub fn refactor_observed(&mut self, a: &CscMatrix, obs: &ObsSession) -> Result<(), LuError> {
        self.refactor_inner(a, Some(obs))
    }

    fn factor_inner(&mut self, a: &CscMatrix, obs: Option<&ObsSession>) -> Result<(), LuError> {
        self.check_values(a)?;
        let (bm, scatter) = {
            let _p = obs.map(|o| o.phase("graph_build"));
            let permuted = self.sym.permute_matrix(a);
            let bm = BlockMatrix::assemble(&permuted, &self.sym.block_structure);
            let scatter = Self::build_scatter(&self.sym, a, &bm);
            (bm, scatter)
        };
        self.bm = Some(bm);
        self.scatter = scatter;
        self.run_numeric(obs)
    }

    fn refactor_inner(&mut self, a: &CscMatrix, obs: Option<&ObsSession>) -> Result<(), LuError> {
        if self.bm.is_none() {
            return self.factor_inner(a, obs);
        }
        self.check_values(a)?;
        {
            let bm = self.bm.as_mut().expect("storage checked above");
            bm.reset_values();
            let values = a.values();
            debug_assert_eq!(values.len(), self.scatter.len());
            for (e, &v) in self.scatter.iter().zip(values) {
                let col = bm.column_mut(e.jb as usize);
                let dst = if e.ublock == SCATTER_PANEL {
                    col.panel.data_mut()
                } else {
                    col.ublocks[e.ublock as usize].data_mut()
                };
                dst[e.flat as usize] = v;
            }
        }
        self.run_numeric(obs)
    }

    /// Rejects values the session cannot factor: a pattern whose hash
    /// disagrees with the analyzed one, or non-finite entries (checked
    /// before the parallel phase can propagate them silently). Allocates
    /// nothing on the accepting path.
    fn check_values(&self, a: &CscMatrix) -> Result<(), LuError> {
        let got = pattern_hash(a.pattern());
        if got != self.pattern_hash {
            return Err(LuError::PatternMismatch {
                expected: self.pattern_hash,
                got,
            });
        }
        if a.values().iter().any(|v| !v.is_finite()) {
            // Cold path: walk the triplets to name the offending column.
            for (_, j, v) in a.triplets() {
                if !v.is_finite() {
                    return Err(LuError::NonFiniteInput { column: j });
                }
            }
        }
        Ok(())
    }

    /// Precomputes, for each nonzero of the original-order input (in
    /// `values()` order), its destination inside the block storage.
    fn build_scatter(sym: &SymbolicLu, a: &CscMatrix, bm: &BlockMatrix) -> Vec<ScatterEntry> {
        let part = &sym.block_structure.partition;
        let block_of = part.block_of_cols();
        let mut scatter = Vec::with_capacity(a.nnz());
        for (i, j, _) in a.triplets() {
            let ni = sym.row_perm.new_of(i);
            let nj = sym.col_perm.new_of(j);
            let (ib, jb) = (block_of[ni], block_of[nj]);
            let li = ni - part.range(ib).start;
            let lj = nj - part.range(jb).start;
            let col = bm.column(jb).read();
            let pos = col
                .find(ib)
                .expect("original entry outside the filled block structure");
            let (ublock, flat) = if pos < col.u_count() {
                let nrows = col.ublocks[pos].nrows();
                (pos as u32, (lj * nrows + li) as u32)
            } else {
                let t = pos - col.u_count();
                let nrows = col.panel.nrows();
                (SCATTER_PANEL, (lj * nrows + col.l_offsets[t] + li) as u32)
            };
            scatter.push(ScatterEntry {
                jb: jb as u32,
                ublock,
                flat,
            });
        }
        scatter
    }

    fn run_numeric(&mut self, obs: Option<&ObsSession>) -> Result<(), LuError> {
        self.factored = false;
        let bm = self.bm.as_ref().expect("storage assembled by the caller");
        let opts = &self.sym.opts;
        let numeric_phase = obs.map(|o| o.phase("numeric"));
        let mut nreq = NumericRequest::coarse(&self.graph, opts.mapping)
            .threads(opts.threads)
            .pivot_rule(opts.pivot_rule)
            .pivot_threshold(opts.pivot_threshold)
            .kernels(opts.kernels)
            .breakdown(opts.breakdown)
            .budget(self.budget.clone())
            .schedule(Arc::clone(&self.schedule));
        if let Some(o) = obs {
            nreq = nreq
                .trace(o.executor_trace_config(self.graph.len(), opts.threads.max(1)))
                .metrics(Arc::clone(o.metrics()));
        }
        let report = factor_numeric_with(bm, &nreq)?;
        drop(numeric_phase);
        if let Some(o) = obs {
            let labels: Vec<String> = (0..self.graph.len())
                .map(|t| match self.graph.task(t) {
                    splu_sched::Task::Factor(k) => format!("F({k})"),
                    splu_sched::Task::Update { src, dst } => format!("U({src},{dst})"),
                })
                .collect();
            o.capture_numeric(
                report.stats.clone(),
                report.health.clone(),
                report.trace.clone(),
                labels,
            );
        }
        self.health = report.health;
        self.factored = true;
        Ok(())
    }

    /// The factored storage, or [`LuError::NotFactored`] before the first
    /// successful factorization (or after an interrupted one).
    fn factors(&self) -> Result<&BlockMatrix, LuError> {
        if !self.factored {
            return Err(LuError::NotFactored);
        }
        self.bm.as_ref().ok_or(LuError::NotFactored)
    }

    /// Solves `A x = b` through the latest factors, or an error when the
    /// session holds no factors ([`LuError::NotFactored`]) or `b` has the
    /// wrong length ([`LuError::DimensionMismatch`]).
    pub fn try_solve(&self, b: &[f64]) -> Result<Vec<f64>, LuError> {
        let bm = self.factors()?;
        self.check_len(b, 1)?;
        let mut y = self.sym.row_perm.apply_vec(b);
        solve_permuted(bm, &self.sym.block_structure, &mut y);
        Ok(self.sym.col_perm.apply_inverse_vec(&y))
    }

    /// Solves `Aᵀ x = b` (fallible form).
    pub fn try_solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LuError> {
        let bm = self.factors()?;
        self.check_len(b, 1)?;
        let mut y = self.sym.col_perm.apply_vec(b);
        solve_transposed_permuted(bm, &self.sym.block_structure, &mut y);
        Ok(self.sym.row_perm.apply_inverse_vec(&y))
    }

    /// Solves `A X = B` for `nrhs` column-major right-hand sides (fallible
    /// form; see [`crate::SparseLu::solve_many`] for the layout).
    pub fn try_solve_many(&self, b: &[f64], nrhs: usize) -> Result<Vec<f64>, LuError> {
        let bm = self.factors()?;
        self.check_len(b, nrhs)?;
        let n = self.sym.stats.n;
        let mut work = Vec::with_capacity(b.len());
        for r in 0..nrhs {
            work.extend(self.sym.row_perm.apply_vec(&b[r * n..(r + 1) * n]));
        }
        solve_many_permuted(bm, &self.sym.block_structure, &mut work, nrhs);
        let mut out = Vec::with_capacity(b.len());
        for r in 0..nrhs {
            out.extend(
                self.sym
                    .col_perm
                    .apply_inverse_vec(&work[r * n..(r + 1) * n]),
            );
        }
        Ok(out)
    }

    /// Solves `A x = b`, panicking on a dimension mismatch or a session
    /// with no factors — the infallible convenience form of
    /// [`Self::try_solve`].
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.try_solve(b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Solves `A x = b` with iterative refinement against `a` (normally
    /// the matrix the latest factorization consumed): repeat
    /// `x ← x + A⁻¹(b − A x)` until the scaled residual drops below `tol`
    /// or `max_iters` steps have run. Returns the solution and the number
    /// of refinement steps.
    pub fn solve_refined(
        &self,
        a: &CscMatrix,
        b: &[f64],
        tol: f64,
        max_iters: usize,
    ) -> Result<(Vec<f64>, usize), LuError> {
        let mut x = self.try_solve(b)?;
        for it in 0..max_iters {
            if splu_sparse::relative_residual(a, &x, b) <= tol {
                return Ok((x, it));
            }
            let mut r = b.to_vec();
            a.mat_vec_sub(&x, &mut r);
            let dx = self.try_solve(&r)?;
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += di;
            }
        }
        Ok((x, max_iters))
    }

    fn check_len(&self, b: &[f64], nrhs: usize) -> Result<(), LuError> {
        let expected = self.sym.stats.n * nrhs;
        if b.len() != expected {
            return Err(LuError::DimensionMismatch {
                expected,
                got: b.len(),
            });
        }
        Ok(())
    }

    /// Replaces the per-factorization run budget (deadline, cancel token,
    /// watchdog). The session starts with `opts.budget` from analysis.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
    }

    /// `true` once a factorization has completed (and not been
    /// interrupted since).
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// The cached symbolic analysis.
    pub fn symbolic(&self) -> &SymbolicLu {
        &self.sym
    }

    /// Analysis statistics.
    pub fn stats(&self) -> &Stats {
        &self.sym.stats
    }

    /// Options the session was analyzed with.
    pub fn options(&self) -> &Options {
        &self.sym.opts
    }

    /// The cached task graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The cached executor schedule (shared with every factorization).
    pub fn schedule(&self) -> &Arc<ExecSchedule> {
        &self.schedule
    }

    /// Resident bytes this session holds: the dense panel/U-block storage
    /// (dominant term, exact via [`BlockMatrix::storage_words`]), the
    /// cached scatter map, and an estimate of the symbolic structures
    /// (filled pattern indices, permutations, forest, task graph and
    /// schedule) from the analysis statistics. This is the quantity a
    /// session pool budgets and evicts on; it intentionally counts only
    /// per-session state, not transient factorization workspace.
    pub fn resident_bytes(&self) -> u64 {
        let usz = std::mem::size_of::<usize>() as u64;
        let s = &self.sym.stats;
        // Filled pattern row indices + column pointers, two permutations
        // with their inverses, eforest parents and postorder.
        let symbolic = (s.nnz_filled as u64) * usz + 8 * (s.n as u64) * usz;
        // Task graph adjacency (successors + predecessor counts) and the
        // cached schedule (priorities + sequential order).
        let graph = (self.graph.len() as u64 + s.graph_edges as u64) * 2 * usz
            + (self.schedule.len() as u64) * 2 * 8;
        let numeric = self
            .bm
            .as_ref()
            .map_or(0, |bm| 8 * bm.storage_words() as u64);
        let scatter = (self.scatter.len() * std::mem::size_of::<ScatterEntry>()) as u64;
        symbolic + graph + numeric + scatter
    }

    /// The numeric phase's robustness report for the latest factorization.
    pub fn health(&self) -> &FactorHealth {
        &self.health
    }

    /// The block storage of the latest factorization (`None` before the
    /// first factor call).
    pub fn block_matrix(&self) -> Option<&BlockMatrix> {
        self.bm.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::relative_residual;

    fn random_matrix(n: usize, extra: usize, seed: u64) -> CscMatrix {
        splu_matgen::random_diag_dominant(n, extra, seed, 4.0)
    }

    /// New values with the same pattern as `a`, deterministically reshuffled.
    fn revalue(a: &CscMatrix, salt: u64) -> CscMatrix {
        let mut b = a.clone();
        for (t, v) in b.values_mut().iter_mut().enumerate() {
            let wig = (((t as u64).wrapping_mul(salt * 2 + 1) % 97) as f64) / 97.0;
            *v += 0.25 * (wig - 0.5) * (1.0 + v.abs());
        }
        b
    }

    fn assert_same_factors(x: &BlockMatrix, y: &BlockMatrix, what: &str) {
        assert_eq!(x.num_block_cols(), y.num_block_cols());
        for k in 0..x.num_block_cols() {
            let cx = x.column(k).read();
            let cy = y.column(k).read();
            assert_eq!(cx.pivots, cy.pivots, "{what}: pivots differ at {k}");
            assert_eq!(
                cx.panel.data(),
                cy.panel.data(),
                "{what}: panel differs at {k}"
            );
            for (bx, by) in cx.ublocks.iter().zip(&cy.ublocks) {
                assert_eq!(bx.data(), by.data(), "{what}: U differs at {k}");
            }
        }
    }

    #[test]
    fn pattern_hash_is_structure_sensitive_and_value_blind() {
        let a = random_matrix(25, 70, 3);
        let b = revalue(&a, 5);
        assert_eq!(pattern_hash(a.pattern()), pattern_hash(b.pattern()));
        let c = random_matrix(25, 71, 4);
        assert_ne!(pattern_hash(a.pattern()), pattern_hash(c.pattern()));
        let d = random_matrix(26, 70, 3);
        assert_ne!(pattern_hash(a.pattern()), pattern_hash(d.pattern()));
    }

    #[test]
    fn analyze_factor_solve_roundtrip() {
        let a = random_matrix(40, 120, 11);
        let mut s = SluSession::analyze(a.pattern(), &Options::default()).unwrap();
        assert!(!s.is_factored());
        assert!(s.block_matrix().is_none());
        s.factor(&a).unwrap();
        assert!(s.is_factored());
        let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin()).collect();
        let x = s.try_solve(&b).unwrap();
        assert!(relative_residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn refactor_is_bitwise_identical_to_fresh_factor() {
        let a = random_matrix(45, 140, 21);
        let a2 = revalue(&a, 9);
        let mut s = SluSession::analyze(a.pattern(), &Options::default()).unwrap();
        s.factor(&a).unwrap();
        s.refactor(&a2).unwrap();
        let mut fresh = SluSession::analyze(a.pattern(), &Options::default()).unwrap();
        fresh.factor(&a2).unwrap();
        assert_same_factors(
            s.block_matrix().unwrap(),
            fresh.block_matrix().unwrap(),
            "refactor vs fresh",
        );
    }

    #[test]
    fn refactor_before_factor_allocates_and_works() {
        let a = random_matrix(30, 90, 7);
        let mut s = SluSession::analyze(a.pattern(), &Options::default()).unwrap();
        s.refactor(&a).unwrap();
        let b: Vec<f64> = (0..30).map(|i| i as f64 - 14.0).collect();
        let x = s.try_solve(&b).unwrap();
        assert!(relative_residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn pattern_mismatch_is_rejected_structurally() {
        let a = random_matrix(30, 90, 2);
        let other = random_matrix(30, 91, 3);
        let mut s = SluSession::analyze(a.pattern(), &Options::default()).unwrap();
        match s.factor(&other) {
            Err(LuError::PatternMismatch { expected, got }) => {
                assert_eq!(expected, s.pattern_hash());
                assert_eq!(got, pattern_hash(other.pattern()));
            }
            other => panic!("expected PatternMismatch, got {other:?}"),
        }
        // The session is still usable with the right pattern.
        s.factor(&a).unwrap();
        assert!(s.is_factored());
    }

    #[test]
    fn solve_before_factor_is_structured() {
        let a = random_matrix(20, 50, 5);
        let s = SluSession::analyze(a.pattern(), &Options::default()).unwrap();
        let b = vec![1.0; 20];
        assert!(matches!(s.try_solve(&b), Err(LuError::NotFactored)));
        assert!(matches!(
            s.try_solve_transposed(&b),
            Err(LuError::NotFactored)
        ));
        assert!(matches!(s.try_solve_many(&b, 1), Err(LuError::NotFactored)));
    }

    #[test]
    fn wrong_length_rhs_is_structured() {
        let a = random_matrix(20, 50, 6);
        let mut s = SluSession::analyze(a.pattern(), &Options::default()).unwrap();
        s.factor(&a).unwrap();
        let short = vec![1.0; 19];
        match s.try_solve(&short) {
            Err(LuError::DimensionMismatch { expected, got }) => {
                assert_eq!(expected, 20);
                assert_eq!(got, 19);
            }
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
        assert!(matches!(
            s.try_solve_many(&vec![0.0; 41], 2),
            Err(LuError::DimensionMismatch {
                expected: 40,
                got: 41
            })
        ));
    }

    #[test]
    fn non_finite_values_rejected_with_column() {
        let a = random_matrix(15, 40, 8);
        let mut bad = a.clone();
        let last = bad.values().len() - 1;
        bad.values_mut()[last] = f64::NAN;
        let mut s = SluSession::analyze(a.pattern(), &Options::default()).unwrap();
        assert!(matches!(
            s.factor(&bad),
            Err(LuError::NonFiniteInput { .. })
        ));
    }

    #[test]
    fn solve_refined_tightens_and_counts() {
        let a = random_matrix(40, 120, 13);
        let mut s = SluSession::analyze(a.pattern(), &Options::default()).unwrap();
        s.factor(&a).unwrap();
        let b: Vec<f64> = (0..40).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let (x, iters) = s.solve_refined(&a, &b, 1e-15, 4).unwrap();
        assert!(iters <= 4);
        assert!(relative_residual(&a, &x, &b) < 1e-13);
    }

    #[test]
    fn refactor_matches_across_threads_and_mappings() {
        use splu_sched::Mapping;
        let a = random_matrix(50, 170, 33);
        let a2 = revalue(&a, 17);
        // Reference: fresh one-thread factor of a2.
        let mut reference = SluSession::analyze(a.pattern(), &Options::default()).unwrap();
        reference.factor(&a2).unwrap();
        for threads in [1usize, 2, 4] {
            for mapping in [Mapping::Static1D, Mapping::Dynamic] {
                let opts = Options {
                    threads,
                    mapping,
                    ..Options::default()
                };
                let mut s = SluSession::analyze(a.pattern(), &opts).unwrap();
                s.factor(&a).unwrap();
                s.refactor(&a2).unwrap();
                assert_same_factors(
                    s.block_matrix().unwrap(),
                    reference.block_matrix().unwrap(),
                    &format!("threads={threads} {mapping:?}"),
                );
            }
        }
    }
}
