//! Triangular solves on the factored block matrix.
//!
//! The factorization stores `L` with its pivot interchanges *not* applied
//! retroactively to earlier columns (the distributed-memory discipline of
//! S*: a pivot sequence is broadcast, never written back). The forward
//! solve therefore interleaves each block column's interchanges right before
//! eliminating with it, exactly mirroring the factorization's update order.

use crate::blocks::BlockMatrix;
use splu_symbolic::supernode::BlockStructure;

/// Solves `Ā x = b` **in factorization order**: `b` is the right-hand side
/// already permuted by the driver's total row permutation; the result is the
/// solution in factorization column order. Overwrites `b`.
pub fn solve_permuted(bm: &BlockMatrix, bs: &BlockStructure, b: &mut [f64]) {
    assert_eq!(b.len(), bm.n(), "rhs length mismatch");
    let part = &bs.partition;
    let nb = bm.num_block_cols();

    // Forward sweep: apply interchanges, solve the unit-lower diagonal
    // block, then eliminate the sub-diagonal blocks.
    for k in 0..nb {
        let stack = bm.stack(k);
        let col = bm.column(k).read();
        let piv = col
            .pivots
            .as_ref()
            .expect("solve requires a completed factorization");
        let k_start = part.range(k).start;
        let global_row = |pos: usize| -> usize {
            let (ib, local) = stack.locate(pos);
            part.range(ib).start + local
        };
        for (c, &p) in piv.swaps().iter().enumerate() {
            if c != p {
                b.swap(global_row(c), global_row(p));
            }
        }
        let diag = col.block(k).expect("diagonal block exists");
        let w = diag.ncols();
        // Unit-lower solve within the diagonal block.
        for c in 0..w {
            let s = b[k_start + c];
            if s != 0.0 {
                let dcol = diag.col(c);
                for r in c + 1..w {
                    b[k_start + r] -= dcol[r] * s;
                }
            }
        }
        // Eliminate the L blocks below.
        for &ib in &stack.l_rows[1..] {
            let blk = col.block(ib).expect("L block exists");
            let i_start = part.range(ib).start;
            for c in 0..w {
                let s = b[k_start + c];
                if s != 0.0 {
                    let bcol = blk.col(c);
                    for (r, &v) in bcol.iter().enumerate() {
                        b[i_start + r] -= v * s;
                    }
                }
            }
        }
    }

    // Backward sweep: solve the upper-triangular diagonal blocks and
    // eliminate the U blocks above.
    for k in (0..nb).rev() {
        let col = bm.column(k).read();
        let diag = col.block(k).expect("diagonal block exists");
        let w = diag.ncols();
        let k_start = part.range(k).start;
        for c in (0..w).rev() {
            let dcol = diag.col(c);
            b[k_start + c] /= dcol[c];
            let s = b[k_start + c];
            if s != 0.0 {
                for r in 0..c {
                    b[k_start + r] -= dcol[r] * s;
                }
            }
        }
        // U-region blocks of column k (block rows < k).
        for (pos, &ib) in col.block_rows.iter().enumerate() {
            if ib >= k {
                break;
            }
            let blk = &col.ublocks[pos];
            let i_start = part.range(ib).start;
            for c in 0..w {
                let s = b[k_start + c];
                if s != 0.0 {
                    let bcol = blk.col(c);
                    for (r, &v) in bcol.iter().enumerate() {
                        b[i_start + r] -= v * s;
                    }
                }
            }
        }
    }
}

/// Solves `Āᵀ x = b` in factorization order, given the same factored block
/// matrix. Overwrites `b`.
///
/// The forward solve composes `Ā⁻¹ = Ū⁻¹ · (Lᴺ⁻¹ Pᴺ) ⋯ (L¹⁻¹ P¹)`, so
/// `Ā⁻ᵀ = (P¹ᵀ L¹⁻ᵀ) ⋯ (Pᴺᵀ Lᴺ⁻ᵀ) · Ū⁻ᵀ`: first a left-looking
/// lower-triangular sweep on the transposed `Ū` blocks, then for
/// `k = N..1` the transposed unit-triangular solve on block column `k` of
/// `L̄` followed by `k`'s interchanges applied **in reverse order**.
pub fn solve_transposed_permuted(bm: &BlockMatrix, bs: &BlockStructure, b: &mut [f64]) {
    assert_eq!(b.len(), bm.n(), "rhs length mismatch");
    let part = &bs.partition;
    let nb = bm.num_block_cols();

    // Ūᵀ y = b: left-looking forward sweep over block rows. The U-region
    // blocks of column k are exactly the transposed contributions into
    // block k.
    for k in 0..nb {
        let col = bm.column(k).read();
        let k_start = part.range(k).start;
        let diag = col.block(k).expect("diagonal block exists");
        let w = diag.ncols();
        // Subtract U(i, k)ᵀ · y_i for every U-region block i < k.
        for (pos, &ib) in col.block_rows.iter().enumerate() {
            if ib >= k {
                break;
            }
            let blk = &col.ublocks[pos];
            let i_start = part.range(ib).start;
            for c in 0..w {
                let bcol = blk.col(c);
                let mut s = 0.0;
                for (r, &v) in bcol.iter().enumerate() {
                    s += v * b[i_start + r];
                }
                b[k_start + c] -= s;
            }
        }
        // Diagonal block: Uᵀ is lower triangular → forward substitution
        // over the local columns of U (rows of Uᵀ).
        for c in 0..w {
            let dcol = diag.col(c);
            let mut s = b[k_start + c];
            for (r, &v) in dcol.iter().enumerate().take(c) {
                s -= v * b[k_start + r];
            }
            b[k_start + c] = s / dcol[c];
        }
    }

    // x = Π_{k=N..1} (Pᵏᵀ Lᵏ⁻ᵀ) y: per block column from the last to the
    // first, a transposed unit-triangular solve over the stacked panel,
    // then the interchanges in reverse.
    for k in (0..nb).rev() {
        let stack = bm.stack(k);
        let col = bm.column(k).read();
        let diag = col.block(k).expect("diagonal block exists");
        let w = diag.ncols();
        let k_start = part.range(k).start;
        // Subtract L(i, k)ᵀ · x_i for the sub-diagonal blocks, into the
        // diagonal segment.
        for &ib in &stack.l_rows[1..] {
            let blk = col.block(ib).expect("L block exists");
            let i_start = part.range(ib).start;
            for c in 0..w {
                let bcol = blk.col(c);
                let mut s = 0.0;
                for (r, &v) in bcol.iter().enumerate() {
                    s += v * b[i_start + r];
                }
                b[k_start + c] -= s;
            }
        }
        // Lᵀ of the unit-lower diagonal block is unit upper: backward
        // substitution over local columns, x_c ← x_c − Σ_{r>c} L(r,c)·x_r.
        for c in (0..w).rev() {
            let dcol = diag.col(c);
            let mut s = b[k_start + c];
            for r in c + 1..w {
                s -= dcol[r] * b[k_start + r];
            }
            b[k_start + c] = s;
        }
        // Apply the interchanges of Factor(k) in reverse.
        let piv = col
            .pivots
            .as_ref()
            .expect("solve requires a completed factorization");
        let global_row = |pos: usize| -> usize {
            let (ib, local) = stack.locate(pos);
            part.range(ib).start + local
        };
        for (c, &p) in piv.swaps().iter().enumerate().rev() {
            if c != p {
                b.swap(global_row(c), global_row(p));
            }
        }
    }
}

/// Solves `Ā X = B` for multiple right-hand sides stored column-major in
/// `b` (`n × nrhs`), in factorization order. Overwrites `b`.
///
/// Unlike looping [`solve_permuted`] per column, this walks the factor
/// **once**, applying each elimination step to all right-hand sides with
/// the BLAS-3 kernels (`trsm` on the diagonal blocks, `gemm` for the
/// off-diagonal eliminations) — the multi-RHS payoff of the supernodal
/// storage.
pub fn solve_many_permuted(bm: &BlockMatrix, bs: &BlockStructure, b: &mut [f64], nrhs: usize) {
    use splu_dense::{gemm_sub_view, trsm_lower_unit_view, trsm_upper_view, DenseMat};
    let n = bm.n();
    assert_eq!(b.len(), n * nrhs, "rhs block size mismatch");
    if n == 0 || nrhs == 0 {
        return;
    }
    let part = &bs.partition;
    let nb = bm.num_block_cols();
    // X as a dense n × nrhs matrix (column-major, same layout as `b`).
    let mut x = DenseMat::from_col_major(n, nrhs, b.to_vec());

    // Forward sweep.
    for k in 0..nb {
        let stack = bm.stack(k);
        let col = bm.column(k).read();
        let piv = col
            .pivots
            .as_ref()
            .expect("solve requires a completed factorization");
        let k_range = part.range(k);
        let global_row = |pos: usize| -> usize {
            let (ib, local) = stack.locate(pos);
            part.range(ib).start + local
        };
        for (c, &p) in piv.swaps().iter().enumerate() {
            if c != p {
                x.swap_rows(global_row(c), global_row(p));
            }
        }
        let diag = col.block(k).expect("diagonal block exists");
        let w = diag.ncols();
        // Extract X_k, trsm, write back.
        let mut xk = DenseMat::from_fn(w, nrhs, |r, c| x[(k_range.start + r, c)]);
        trsm_lower_unit_view(diag, xk.as_view_mut());
        for c in 0..nrhs {
            for r in 0..w {
                x[(k_range.start + r, c)] = xk[(r, c)];
            }
        }
        // Eliminate below: X_i -= L(i, k) · X_k.
        for &ib in &stack.l_rows[1..] {
            let blk = col.block(ib).expect("L block exists");
            let i_start = part.range(ib).start;
            let mut xi = DenseMat::from_fn(blk.nrows(), nrhs, |r, c| x[(i_start + r, c)]);
            gemm_sub_view(xi.as_view_mut(), blk, xk.as_view());
            for c in 0..nrhs {
                for r in 0..blk.nrows() {
                    x[(i_start + r, c)] = xi[(r, c)];
                }
            }
        }
    }

    // Backward sweep.
    for k in (0..nb).rev() {
        let col = bm.column(k).read();
        let diag = col.block(k).expect("diagonal block exists");
        let w = diag.ncols();
        let k_start = part.range(k).start;
        let mut xk = DenseMat::from_fn(w, nrhs, |r, c| x[(k_start + r, c)]);
        trsm_upper_view(diag, xk.as_view_mut());
        for c in 0..nrhs {
            for r in 0..w {
                x[(k_start + r, c)] = xk[(r, c)];
            }
        }
        for (pos, &ib) in col.block_rows.iter().enumerate() {
            if ib >= k {
                break;
            }
            let blk = &col.ublocks[pos];
            let i_start = part.range(ib).start;
            let mut xi = DenseMat::from_fn(blk.nrows(), nrhs, |r, c| x[(i_start + r, c)]);
            gemm_sub_view(xi.as_view_mut(), blk.as_view(), xk.as_view());
            for c in 0..nrhs {
                for r in 0..blk.nrows() {
                    x[(i_start + r, c)] = xi[(r, c)];
                }
            }
        }
    }
    b.copy_from_slice(x.data());
}

/// Log-magnitude and sign of `det(Ā)` from a factored block matrix, in
/// factorization order: the product of the `Ū` diagonal with the parity of
/// all interchanges.
///
/// Returns `(sign, ln|det|)`; `sign` is `0.0` only if a diagonal entry is
/// exactly zero (which the factorization rejects, so in practice ±1).
pub fn det_permuted(bm: &BlockMatrix, bs: &BlockStructure) -> (f64, f64) {
    let part = &bs.partition;
    let mut sign = 1.0_f64;
    let mut ln_abs = 0.0_f64;
    for k in 0..bm.num_block_cols() {
        let col = bm.column(k).read();
        let diag = col.block(k).expect("diagonal block exists");
        for c in 0..part.width(k) {
            let d = diag[(c, c)];
            if d == 0.0 {
                return (0.0, f64::NEG_INFINITY);
            }
            if d < 0.0 {
                sign = -sign;
            }
            ln_abs += d.abs().ln();
        }
        if let Some(piv) = &col.pivots {
            for (c, &p) in piv.swaps().iter().enumerate() {
                if c != p {
                    sign = -sign;
                }
            }
        }
    }
    (sign, ln_abs)
}

/// The element-growth factor of the factorization:
/// `max |stored factor entry| / max |Ā entry at assembly|`, a standard
/// stability diagnostic (small growth ⇒ the partial-pivoting factorization
/// is backward stable).
pub fn growth_factor(bm: &BlockMatrix, max_abs_a: f64) -> f64 {
    let mut max_f = 0.0_f64;
    for k in 0..bm.num_block_cols() {
        let col = bm.column(k).read();
        for blk in &col.ublocks {
            max_f = max_f.max(blk.max_abs());
        }
        max_f = max_f.max(col.panel.max_abs());
    }
    if max_abs_a == 0.0 {
        1.0
    } else {
        max_f / max_abs_a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::BlockMatrix;
    use crate::request::{factor_numeric_with, NumericRequest};
    use splu_sched::{build_sstar_graph, Mapping};
    use splu_sparse::{relative_residual, CscMatrix};
    use splu_symbolic::fixtures::fig1_matrix;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::{supernode_partition, BlockStructure};

    #[test]
    fn residual_is_small_after_solve() {
        let a = fig1_matrix();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let bm = BlockMatrix::assemble(&a, &bs);
        let graph = build_sstar_graph(&bs);
        factor_numeric_with(&bm, &NumericRequest::coarse(&graph, Mapping::Static1D)).unwrap();
        let b: Vec<f64> = (0..7).map(|i| i as f64 - 3.0).collect();
        let mut x = b.clone();
        solve_permuted(&bm, &bs, &mut x);
        assert!(relative_residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn multiple_rhs_reuse_the_factorization() {
        let a = fig1_matrix();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let bm = BlockMatrix::assemble(&a, &bs);
        let graph = build_sstar_graph(&bs);
        factor_numeric_with(&bm, &NumericRequest::coarse(&graph, Mapping::Static1D)).unwrap();
        for t in 0..4 {
            let b: Vec<f64> = (0..7).map(|i| ((i + t) % 3) as f64).collect();
            let mut x = b.clone();
            solve_permuted(&bm, &bs, &mut x);
            assert!(relative_residual(&a, &x, &b) < 1e-12, "rhs {t}");
        }
    }

    #[test]
    fn transpose_solve_matches_dense_oracle() {
        use splu_dense::{lu_full, lu_solve, DenseMat};
        let a = fig1_matrix();
        let n = a.nrows();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let bm = BlockMatrix::assemble(&a, &bs);
        let graph = build_sstar_graph(&bs);
        factor_numeric_with(&bm, &NumericRequest::coarse(&graph, Mapping::Static1D)).unwrap();

        let at = a.transpose();
        let mut dense = DenseMat::from_fn(n, n, |i, j| at.get(i, j));
        let piv = lu_full(&mut dense).unwrap();
        for trial in 0..3 {
            let b: Vec<f64> = (0..n).map(|i| ((i * 5 + trial) % 7) as f64 - 3.0).collect();
            let mut x_oracle = b.clone();
            lu_solve(&dense, &piv, &mut x_oracle);
            let mut x = b.clone();
            solve_transposed_permuted(&bm, &bs, &mut x);
            for i in 0..n {
                assert!(
                    (x[i] - x_oracle[i]).abs() < 1e-10,
                    "transpose mismatch at {i}: {} vs {}",
                    x[i],
                    x_oracle[i]
                );
            }
        }
    }

    #[test]
    fn transpose_solve_with_pivoting() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(12);
        let n = 24;
        let mut trips: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1e-8)).collect(); // tiny diagonal → pivoting
        for _ in 0..4 * n {
            trips.push((
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-2.0..2.0),
            ));
        }
        let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let bm = BlockMatrix::assemble(&a, &bs);
        let graph = build_sstar_graph(&bs);
        factor_numeric_with(&bm, &NumericRequest::coarse(&graph, Mapping::Static1D)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut x = b.clone();
        solve_transposed_permuted(&bm, &bs, &mut x);
        let at = a.transpose();
        assert!(relative_residual(&at, &x, &b) < 1e-9);
    }

    #[test]
    fn multi_rhs_matches_single_rhs() {
        let a = fig1_matrix();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let bm = BlockMatrix::assemble(&a, &bs);
        let graph = build_sstar_graph(&bs);
        factor_numeric_with(&bm, &NumericRequest::coarse(&graph, Mapping::Static1D)).unwrap();
        let n = 7;
        let nrhs = 3;
        let mut block: Vec<f64> = (0..n * nrhs).map(|i| (i as f64 * 0.37).sin()).collect();
        let singles: Vec<Vec<f64>> = (0..nrhs)
            .map(|r| {
                let mut x = block[r * n..(r + 1) * n].to_vec();
                solve_permuted(&bm, &bs, &mut x);
                x
            })
            .collect();
        solve_many_permuted(&bm, &bs, &mut block, nrhs);
        for r in 0..nrhs {
            assert_eq!(&block[r * n..(r + 1) * n], &singles[r][..]);
        }
    }

    #[test]
    fn determinant_matches_dense_oracle() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use splu_dense::{lu_full, DenseMat};
        let mut rng = SmallRng::seed_from_u64(42);
        for n in [2usize, 5, 12, 20] {
            let mut trips: Vec<(usize, usize, f64)> = (0..n)
                .map(|i| (i, i, 2.0 + rng.gen_range(0.0..2.0)))
                .collect();
            for _ in 0..3 * n {
                trips.push((
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(-1.0..1.0),
                ));
            }
            let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
            let f = static_symbolic_factorization(a.pattern()).unwrap();
            let bs = BlockStructure::new(&f, supernode_partition(&f));
            let bm = BlockMatrix::assemble(&a, &bs);
            let graph = build_sstar_graph(&bs);
            factor_numeric_with(&bm, &NumericRequest::coarse(&graph, Mapping::Static1D)).unwrap();
            let (sign, ln_abs) = det_permuted(&bm, &bs);
            // Dense oracle determinant.
            let mut dense = DenseMat::from_fn(n, n, |i, j| a.get(i, j));
            let piv = lu_full(&mut dense).unwrap();
            let mut oracle_sign = 1.0_f64;
            let mut oracle_ln = 0.0_f64;
            for c in 0..n {
                let d = dense[(c, c)];
                if d < 0.0 {
                    oracle_sign = -oracle_sign;
                }
                oracle_ln += d.abs().ln();
            }
            for (c, &p) in piv.swaps().iter().enumerate() {
                if c != p {
                    oracle_sign = -oracle_sign;
                }
            }
            assert_eq!(sign, oracle_sign, "n={n}");
            assert!((ln_abs - oracle_ln).abs() < 1e-8, "n={n}");
        }
    }

    #[test]
    fn growth_factor_is_modest_on_benign_matrices() {
        let a = fig1_matrix();
        let max_a = a.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let bm = BlockMatrix::assemble(&a, &bs);
        let graph = build_sstar_graph(&bs);
        factor_numeric_with(&bm, &NumericRequest::coarse(&graph, Mapping::Static1D)).unwrap();
        let g = growth_factor(&bm, max_a);
        assert!(g >= 1.0 - 1e-12, "factor entries include A's max");
        assert!(g < 10.0, "unexpected growth {g} on a dominant matrix");
    }

    #[test]
    fn identity_solves_trivially() {
        let a = CscMatrix::identity(5);
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let bm = BlockMatrix::assemble(&a, &bs);
        let graph = build_sstar_graph(&bs);
        factor_numeric_with(&bm, &NumericRequest::coarse(&graph, Mapping::Static1D)).unwrap();
        let mut x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        solve_permuted(&bm, &bs, &mut x);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
