//! Gilbert–Peierls left-looking sparse LU with partial pivoting.
//!
//! The classical *dynamic-structure* algorithm (time proportional to flops):
//! no static symbolic factorization, no supernodes, no parallelism. It
//! serves two roles in this reproduction:
//!
//! * an **independent numerical cross-check** for the supernodal code
//!   (different algorithm, same answers);
//! * the "column-based method" baseline the paper's introduction contrasts
//!   the supernodal approach against.

use crate::LuError;
use splu_sparse::CscMatrix;

const NONE: usize = usize::MAX;

/// A factorization produced by [`gp_factor`].
#[derive(Debug, Clone)]
pub struct GpLu {
    /// Unit lower-triangular factor; row indices are **original** rows, each
    /// column's entries divided by its pivot.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Upper factor by column: `(pivot_position, value)` pairs, position
    /// being the elimination step of the contributing pivot.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// `pinv[original_row] = elimination position`, or `NONE` internal.
    pinv: Vec<usize>,
    n: usize,
}

impl GpLu {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries in `L` (unit diagonal not stored).
    pub fn l_nnz(&self) -> usize {
        self.l_cols.iter().map(Vec::len).sum()
    }

    /// Number of stored entries in `U` (including the diagonal).
    pub fn u_nnz(&self) -> usize {
        self.u_cols.iter().map(Vec::len).sum()
    }

    /// Solves `A x = b`, overwriting `b` with `x`.
    pub fn solve(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        // Forward: y (in elimination positions) from L y = P b.
        let mut y = vec![0.0_f64; self.n];
        for (r, &pos) in self.pinv.iter().enumerate() {
            y[pos] = b[r];
        }
        for j in 0..self.n {
            let s = y[j];
            if s != 0.0 {
                for &(r, v) in &self.l_cols[j] {
                    y[self.pinv[r]] -= v * s;
                }
            }
        }
        // Backward: U x = y. u_cols[j] ends with the diagonal (position j).
        for j in (0..self.n).rev() {
            let &(dpos, dval) = self.u_cols[j].last().expect("diagonal stored");
            debug_assert_eq!(dpos, j);
            y[j] /= dval;
            let s = y[j];
            if s != 0.0 {
                for &(pos, v) in &self.u_cols[j][..self.u_cols[j].len() - 1] {
                    y[pos] -= v * s;
                }
            }
        }
        b.copy_from_slice(&y);
    }
}

/// Factorizes a square matrix with the Gilbert–Peierls algorithm.
pub fn gp_factor(a: &CscMatrix, pivot_threshold: f64) -> Result<GpLu, LuError> {
    if a.nrows() != a.ncols() {
        return Err(LuError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.ncols();
    let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    let mut pinv = vec![NONE; n];
    // Workspaces.
    let mut x = vec![0.0_f64; n]; // numeric scatter, indexed by original row
    let mut reach: Vec<usize> = Vec::new(); // topologically sorted rows
    let mut visited = vec![false; n];
    let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

    for j in 0..n {
        // --- Symbolic: rows reachable from struct(A[:, j]) through L.
        reach.clear();
        let (a_rows, a_vals) = a.col(j);
        for &r in a_rows {
            if !visited[r] {
                // Iterative DFS emitting nodes in postorder (reverse
                // topological order for the solve below).
                dfs_stack.push((r, 0));
                visited[r] = true;
                while let Some(&(node, child)) = dfs_stack.last() {
                    let deps: &[(usize, f64)] = if pinv[node] == NONE {
                        &[]
                    } else {
                        &l_cols[pinv[node]]
                    };
                    if child < deps.len() {
                        dfs_stack.last_mut().expect("stack nonempty").1 += 1;
                        let next = deps[child].0;
                        if !visited[next] {
                            visited[next] = true;
                            dfs_stack.push((next, 0));
                        }
                    } else {
                        reach.push(node);
                        dfs_stack.pop();
                    }
                }
            }
        }
        // --- Numeric: sparse lower solve in topological (reverse postorder)
        // order.
        for &(r, v) in a_rows
            .iter()
            .zip(a_vals)
            .map(|(&r, &v)| (r, v))
            .collect::<Vec<_>>()
            .iter()
        {
            x[r] = v;
        }
        for &r in reach.iter().rev() {
            if pinv[r] != NONE {
                let s = x[r];
                if s != 0.0 {
                    for &(rr, v) in &l_cols[pinv[r]] {
                        x[rr] -= v * s;
                    }
                }
            }
        }
        // --- Pivot among unassigned rows.
        let mut piv = NONE;
        let mut piv_abs = pivot_threshold;
        for &r in &reach {
            if pinv[r] == NONE {
                let a = x[r].abs();
                if a > piv_abs || (piv == NONE && a > pivot_threshold) {
                    piv_abs = a;
                    piv = r;
                }
            }
        }
        if piv == NONE || x[piv] == 0.0 {
            // Clean workspaces before bailing.
            for &r in &reach {
                visited[r] = false;
                x[r] = 0.0;
            }
            return Err(LuError::NumericallySingular { column: j });
        }
        let piv_val = x[piv];
        pinv[piv] = j;
        // --- Emit U column (assigned rows) and L column (unassigned).
        let mut ucol: Vec<(usize, f64)> = Vec::new();
        let mut lcol: Vec<(usize, f64)> = Vec::new();
        for &r in &reach {
            visited[r] = false;
            let v = x[r];
            x[r] = 0.0;
            if pinv[r] != NONE {
                if r == piv {
                    continue; // diagonal goes last
                }
                if v != 0.0 {
                    ucol.push((pinv[r], v));
                }
            } else if v != 0.0 {
                lcol.push((r, v / piv_val));
            }
        }
        ucol.sort_unstable_by_key(|&(pos, _)| pos);
        ucol.push((j, piv_val));
        l_cols.push(lcol);
        u_cols.push(ucol);
    }
    Ok(GpLu {
        l_cols,
        u_cols,
        pinv,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::relative_residual;
    use splu_symbolic::fixtures::fig1_matrix;

    #[test]
    fn solves_fig1() {
        let a = fig1_matrix();
        let lu = gp_factor(&a, 0.0).unwrap();
        let b: Vec<f64> = (0..7).map(|i| (i as f64).sin()).collect();
        let mut x = b.clone();
        lu.solve(&mut x);
        assert!(relative_residual(&a, &x, &b) < 1e-12);
        assert!(lu.l_nnz() > 0 && lu.u_nnz() >= 7);
        assert_eq!(lu.n(), 7);
    }

    #[test]
    fn pivots_on_dominant_rows() {
        // Tiny diagonal forces interchanges.
        let a = CscMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1e-14),
                (1, 0, 2.0),
                (0, 1, 1.0),
                (1, 1, 1e-14),
                (2, 1, 3.0),
                (2, 2, 1e-14),
                (0, 2, 4.0),
            ],
        )
        .unwrap();
        let lu = gp_factor(&a, 0.0).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let mut x = b.clone();
        lu.solve(&mut x);
        assert!(relative_residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn reports_singularity() {
        let a = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        assert!(matches!(
            gp_factor(&a, 0.0),
            Err(LuError::NumericallySingular { .. })
        ));
    }

    #[test]
    fn rejects_rectangular() {
        let a = CscMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(gp_factor(&a, 0.0), Err(LuError::NotSquare { .. })));
    }

    #[test]
    fn random_matrices_match_dense_oracle() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use splu_dense::{lu_full, lu_solve, DenseMat};
        let mut rng = SmallRng::seed_from_u64(77);
        for n in [1usize, 2, 5, 12, 30] {
            let mut trips: Vec<(usize, usize, f64)> =
                (0..n).map(|i| (i, i, rng.gen_range(1.0..2.0))).collect();
            for _ in 0..3 * n {
                trips.push((
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(-1.0..1.0),
                ));
            }
            let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
            let lu = gp_factor(&a, 0.0).unwrap();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut x = b.clone();
            lu.solve(&mut x);
            let mut dense = DenseMat::from_fn(n, n, |i, j| a.get(i, j));
            let piv = lu_full(&mut dense).unwrap();
            let mut x_oracle = b.clone();
            lu_solve(&dense, &piv, &mut x_oracle);
            for i in 0..n {
                assert!((x[i] - x_oracle[i]).abs() < 1e-8, "n={n}, i={i}");
            }
        }
    }
}
