//! Deterministic fault-injection points for the robustness test harness.
//!
//! Compiled only under the test-only `failpoints` cargo feature. A test
//! arms one [`FailScenario`] at a time (a process-wide lock serializes
//! scenarios, so `cargo test`'s default parallelism cannot interleave
//! them), sets the injection knobs, runs a factorization, and the guard
//! resets every knob on drop — panicking test bodies included.
//!
//! Four injection points exist, all keyed deterministically so a fault
//! fires at the same place on every thread count and mapping:
//!
//! * [`FailScenario::panic_at_factor`] — the `Factor(k)` task body panics
//!   before touching the panel, exercising the executors' panic
//!   containment ([`crate::LuError::WorkerPanic`]);
//! * [`FailScenario::force_breakdown_at`] — the pivot search at one global
//!   column behaves as if every candidate were below the threshold,
//!   exercising the breakdown policy
//!   ([`crate::BreakdownPolicy`]);
//! * [`FailScenario::stall_at_factor`] — the `Factor(k)` task body parks
//!   (sleep-loops) until the run is cancelled or fails, simulating a hung
//!   worker for the liveness watchdog ([`crate::LuError::Stalled`]). The
//!   stall is cooperative: the watchdog's abort cancels the run token,
//!   which releases the parked task so the run drains instead of leaking
//!   a thread;
//! * [`FailScenario::cancel_at_symbolic_chunk`] — the symbolic-fill chunk
//!   task cancels the run token at its own entry, exercising
//!   cancel-during-symbolic in the parallel front half
//!   ([`crate::analyze_with`]).
//!
//! The scenario lock is a `parking_lot`-style mutex that **never
//! poisons**: a test that panics while holding a scenario (the panic
//! containment tests do this on purpose, on worker threads) must not
//! poison the lock and cascade spurious failures into every later
//! scenario. `tests/failpoints.rs` carries a regression test for exactly
//! that.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Sentinel for "injection point disarmed".
const OFF: usize = usize::MAX;

static SCENARIO_LOCK: Mutex<()> = Mutex::new(());
static PANIC_AT_FACTOR: AtomicUsize = AtomicUsize::new(OFF);
static FORCE_BREAKDOWN_AT: AtomicUsize = AtomicUsize::new(OFF);
static STALL_AT_FACTOR: AtomicUsize = AtomicUsize::new(OFF);
static CANCEL_AT_SYMBOLIC_CHUNK: AtomicUsize = AtomicUsize::new(OFF);

fn reset() {
    PANIC_AT_FACTOR.store(OFF, Ordering::SeqCst);
    FORCE_BREAKDOWN_AT.store(OFF, Ordering::SeqCst);
    STALL_AT_FACTOR.store(OFF, Ordering::SeqCst);
    CANCEL_AT_SYMBOLIC_CHUNK.store(OFF, Ordering::SeqCst);
}

/// RAII guard over one fault-injection scenario: creation takes the
/// process-wide scenario lock and clears every knob; drop clears them
/// again, so a panicking test cannot leak an armed failpoint into the
/// next one.
pub struct FailScenario {
    _guard: parking_lot::MutexGuard<'static, ()>,
}

impl FailScenario {
    /// Starts a clean scenario (all injection points disarmed), blocking
    /// until any other live scenario is dropped.
    pub fn new() -> Self {
        let guard = SCENARIO_LOCK.lock();
        reset();
        FailScenario { _guard: guard }
    }

    /// Arms a panic inside the `Factor(k)` task body for block column `k`.
    pub fn panic_at_factor(&self, k: usize) {
        PANIC_AT_FACTOR.store(k, Ordering::SeqCst);
    }

    /// Forces the pivot search at **global** column `col` to report no
    /// acceptable pivot, as if every candidate were below the threshold.
    pub fn force_breakdown_at(&self, col: usize) {
        FORCE_BREAKDOWN_AT.store(col, Ordering::SeqCst);
    }

    /// Arms an indefinite cooperative stall inside the `Factor(k)` task
    /// body for block column `k`: the task sleep-loops until the run is
    /// cancelled or another failure aborts it. Pair with a watchdog (or a
    /// cancellation) so the run can drain.
    pub fn stall_at_factor(&self, k: usize) {
        STALL_AT_FACTOR.store(k, Ordering::SeqCst);
    }

    /// Arms a cancellation of the run token at the entry of symbolic-fill
    /// chunk task `chunk`, exercising cancel-during-symbolic: the chunk
    /// trips the budget exactly when a front-half task is in flight, so
    /// the drain path of the parallel symbolic driver is covered
    /// deterministically.
    pub fn cancel_at_symbolic_chunk(&self, chunk: usize) {
        CANCEL_AT_SYMBOLIC_CHUNK.store(chunk, Ordering::SeqCst);
    }
}

impl Default for FailScenario {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for FailScenario {
    fn drop(&mut self) {
        reset();
    }
}

/// Checked by the `Factor(k)` task body: panics if this block column is
/// the armed injection target.
pub(crate) fn maybe_panic_factor(k: usize) {
    if PANIC_AT_FACTOR.load(Ordering::SeqCst) == k {
        panic!("failpoint: injected panic in Factor({k})");
    }
}

/// The armed forced-breakdown global column, if any.
pub(crate) fn forced_breakdown_column() -> Option<usize> {
    let v = FORCE_BREAKDOWN_AT.load(Ordering::SeqCst);
    (v != OFF).then_some(v)
}

/// Checked at the entry of symbolic-fill chunk task `chunk`: cancels the
/// run token when this chunk is the armed injection target. The knob is
/// cleared on firing so retries (or the next scenario) see it disarmed.
pub(crate) fn maybe_cancel_symbolic(chunk: usize, token: Option<&crate::CancelToken>) {
    if CANCEL_AT_SYMBOLIC_CHUNK
        .compare_exchange(chunk, OFF, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        if let Some(t) = token {
            t.cancel();
        }
    }
}

/// Checked by the `Factor(k)` task body: if this block column is the armed
/// stall target, sleep-loop until `release` reports the run is being torn
/// down (token cancelled, abort latched, or another task failed). The knob
/// is cleared on entry so a retry of the same column (or the next
/// scenario) is not re-stalled.
pub(crate) fn maybe_stall_factor(k: usize, release: &dyn Fn() -> bool) {
    if STALL_AT_FACTOR
        .compare_exchange(k, OFF, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        while !release() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
