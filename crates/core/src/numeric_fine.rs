//! Numerical execution of the **fine-grained** task decomposition
//! (`Apply`/`Trsm`/`Gemm` stages per update — the paper's §6 future-work
//! direction, see `splu_sched::fine`).
//!
//! The task bodies are split out of [`crate::update_task`]:
//!
//! * [`apply_task`] — apply `Factor(src)`'s interchanges to column `dst`;
//! * [`trsm_task`] — `Ū(src, dst) = L(src, src)⁻¹ B̄(src, dst)`;
//! * [`gemm_task`] — one Schur update `B̄(row, dst) −= L(row, src)·Ū(src, dst)`.
//!
//! Because per-element write sets and orders are identical to the coarse
//! tasks', the factored matrix is **bit-identical** to the coarse execution
//! (asserted by the tests). Synchronization is per block *column* (the
//! coarse storage's lock granularity), so on a shared-memory host the fine
//! decomposition mainly demonstrates correctness; its scalability story is
//! evaluated on the simulator with per-block ownership (`twod` binary). A
//! production 2D build would shard the locks per block.

use crate::blocks::BlockMatrix;
use splu_dense::Dispatch;
use splu_obs::{Counter, MetricsRegistry};

/// Applies `Factor(src)`'s pivot interchanges to block column `dst`.
pub fn apply_task(bm: &BlockMatrix, src: usize, dst: usize) {
    debug_assert!(src < dst);
    let stack = bm.stack(src);
    let col_src = bm.column(src).read();
    let mut col_dst = bm.column(dst).write();
    let piv = col_src
        .pivots
        .as_ref()
        .expect("Apply(src, dst) scheduled before Factor(src)");
    for (c, &p) in piv.swaps().iter().enumerate() {
        if c == p {
            continue;
        }
        // A side without storage in column dst is structurally zero there
        // (see crate::numeric docs) and the swap degenerates to a no-op.
        col_dst.swap_scalar_rows(stack.locate(c), stack.locate(p));
    }
}

/// Computes `Ū(src, dst) = L(src, src)⁻¹ B̄(src, dst)` in place. The
/// diagonal block is read straight off the top of column `src`'s panel.
pub fn trsm_task(bm: &BlockMatrix, src: usize, dst: usize) {
    trsm_task_with(bm, src, dst, &Dispatch::portable())
}

/// [`trsm_task`] through an explicit kernel [`Dispatch`] table (resolved
/// once per factorization by the unified driver).
pub fn trsm_task_with(bm: &BlockMatrix, src: usize, dst: usize, kernels: &Dispatch) {
    trsm_task_metered(bm, src, dst, kernels, None)
}

/// [`trsm_task_with`] with optional kernel-call metering (same counting
/// contract as `crate::numeric::update_task_metered`).
pub(crate) fn trsm_task_metered(
    bm: &BlockMatrix,
    src: usize,
    dst: usize,
    kernels: &Dispatch,
    metrics: Option<&MetricsRegistry>,
) {
    let col_src = bm.column(src).read();
    let mut col_dst = bm.column(dst).write();
    let w = col_src.width();
    let diag = col_src.panel.row_range(0..w);
    let q = col_dst
        .find(src)
        .expect("Trsm(src, dst) requires block B̄(src, dst)");
    debug_assert!(q < col_dst.u_count());
    kernels.trsm_lower_unit(diag, col_dst.ublocks[q].as_view_mut());
    if let Some(reg) = metrics {
        reg.incr(Counter::TrsmCalls);
        reg.add(
            Counter::TrsmFlops,
            (w * w.saturating_sub(1) * col_dst.width()) as u64,
        );
    }
}

/// One Schur update: `B̄(row, dst) −= L(row, src) · Ū(src, dst)`, with
/// `L(row, src)` read as a strided row range of column `src`'s panel.
pub fn gemm_task(bm: &BlockMatrix, src: usize, dst: usize, row: usize) {
    gemm_task_with(bm, src, dst, row, &Dispatch::portable())
}

/// [`gemm_task`] through an explicit kernel [`Dispatch`] table (resolved
/// once per factorization by the unified driver).
pub fn gemm_task_with(bm: &BlockMatrix, src: usize, dst: usize, row: usize, kernels: &Dispatch) {
    gemm_task_metered(bm, src, dst, row, kernels, None)
}

/// [`gemm_task_with`] with optional kernel-call metering (same counting
/// contract as `crate::numeric::update_task_metered`).
pub(crate) fn gemm_task_metered(
    bm: &BlockMatrix,
    src: usize,
    dst: usize,
    row: usize,
    kernels: &Dispatch,
    metrics: Option<&MetricsRegistry>,
) {
    let stack = bm.stack(src);
    let col_src = bm.column(src).read();
    let mut col_dst = bm.column(dst).write();
    let t = stack
        .find_row(row)
        .expect("Gemm(src, dst, row) requires L(row, src)");
    let l = col_src
        .panel
        .row_range(stack.offsets[t]..stack.offsets[t + 1]);
    let q_dst = col_dst
        .find(row)
        .expect("fine graph only schedules present destinations");
    let q_u = col_dst.find(src).expect("Ū(src, dst) block exists");
    debug_assert!(q_u < col_dst.u_count());
    let (dst_blk, u_blk) = col_dst.dst_and_u(q_dst, q_u);
    kernels.gemm_sub(dst_blk, l, u_blk);
    if let Some(reg) = metrics {
        let rows = stack.offsets[t + 1] - stack.offsets[t];
        reg.incr(Counter::GemmCalls);
        reg.add(
            Counter::GemmFlops,
            (2 * rows * col_src.width() * col_dst.width()) as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{factor_numeric_with, NumericRequest};
    use crate::solve::solve_permuted;
    use crate::LuError;
    use splu_sched::{block_forest, build_eforest_graph, build_fine_graph, Mapping};
    use splu_sparse::{relative_residual, CscMatrix};
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::{supernode_partition, BlockStructure};

    fn random_matrix(n: usize, extra: usize, seed: u64) -> CscMatrix {
        splu_matgen::random_diag_dominant(n, extra, seed, 3.0)
    }

    #[test]
    fn fine_execution_is_bit_identical_to_coarse() {
        for seed in [1u64, 7, 23] {
            let a = random_matrix(40, 160, seed);
            let f = static_symbolic_factorization(a.pattern()).unwrap();
            let bs = BlockStructure::new(&f, supernode_partition(&f));
            let forest = block_forest(&bs);
            let fg = build_fine_graph(&bs, &forest);
            let coarse = build_eforest_graph(&bs);

            let bm_coarse = BlockMatrix::assemble(&a, &bs);
            factor_numeric_with(
                &bm_coarse,
                &NumericRequest::coarse(&coarse, Mapping::Static1D).threads(2),
            )
            .unwrap();
            for threads in [1usize, 2, 4] {
                let bm_fine = BlockMatrix::assemble(&a, &bs);
                factor_numeric_with(&bm_fine, &NumericRequest::fine(&fg).threads(threads)).unwrap();
                assert_eq!(bm_fine.panel_copy_count(), 0);
                for k in 0..bm_fine.num_block_cols() {
                    let cf = bm_fine.column(k).read();
                    let cc = bm_coarse.column(k).read();
                    assert_eq!(cf.pivots, cc.pivots, "pivots differ (seed {seed}, col {k})");
                    for (bf, bc) in cf.ublocks.iter().zip(&cc.ublocks) {
                        assert_eq!(
                            bf.data(),
                            bc.data(),
                            "U values differ (seed {seed}, threads {threads}, col {k})"
                        );
                    }
                    assert_eq!(
                        cf.panel.data(),
                        cc.panel.data(),
                        "panel values differ (seed {seed}, threads {threads}, col {k})"
                    );
                }
            }
        }
    }

    #[test]
    fn fine_execution_solves_with_pivoting() {
        // Tiny diagonal forces interchanges through the Apply stage.
        let n = 30;
        let mut trips: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1e-9)).collect();
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..5 * n {
            trips.push((
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-2.0..2.0),
            ));
        }
        let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let forest = block_forest(&bs);
        let fg = build_fine_graph(&bs, &forest);
        let bm = BlockMatrix::assemble(&a, &bs);
        factor_numeric_with(&bm, &NumericRequest::fine(&fg).threads(2)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos()).collect();
        let mut x = b.clone();
        solve_permuted(&bm, &bs, &mut x);
        assert!(relative_residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn fine_execution_reports_singularity() {
        let a =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 1, 1.0), (0, 1, 1.0), (1, 0, 0.0)])
                .unwrap();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let forest = block_forest(&bs);
        let fg = build_fine_graph(&bs, &forest);
        let bm = BlockMatrix::assemble(&a, &bs);
        let err = factor_numeric_with(&bm, &NumericRequest::fine(&fg)).unwrap_err();
        assert!(matches!(err, LuError::NumericallySingular { .. }));
    }
}
