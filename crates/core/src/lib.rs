//! The paper's end-to-end pipeline: analysis (orderings → static symbolic
//! factorization → eforest postordering → supernodes → task graph) and the
//! parallel supernodal numerical factorization with partial pivoting.
//!
//! Typical use goes through [`SparseLu`]:
//!
//! ```
//! use splu_core::{Options, SparseLu};
//! use splu_symbolic::fixtures::fig1_matrix;
//!
//! let a = fig1_matrix();
//! let b: Vec<f64> = (0..a.ncols()).map(|i| i as f64).collect();
//! let lu = SparseLu::factor(&a, &Options::default()).unwrap();
//! let x = lu.solve(&b);
//! assert!(splu_sparse::relative_residual(&a, &x, &b) < 1e-10);
//! ```
//!
//! The phases are also exposed separately ([`analyze`], [`SymbolicLu`],
//! [`NumericLu`]) so the benchmark harness can re-run the numerical phase
//! with different processor counts and task graphs against one symbolic
//! analysis, exactly as the paper's experiments do.

// Index-based loops are the natural idiom for the numerical kernels and
// symbolic algorithms in this crate; iterator rewrites obscure the maths.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod costs;
mod error;
#[cfg(feature = "failpoints")]
pub mod failpoints;
mod front;
pub mod gp;
mod numeric;
mod numeric_fine;
pub mod observe;
mod psolve;
mod request;
mod session;
mod solve;

pub use blocks::{BlockMatrix, ColumnData, StackMap};
pub use costs::{estimate_task_costs, total_flops};
pub use error::LuError;
pub use front::{
    postorder_parallel, postorder_parallel_obs, static_fill_parallel_with_parents, SymbolicRequest,
};
pub use numeric::{
    factor_left_looking, factor_task, factor_task_with_policy, factor_task_with_rule, update_task,
    update_task_with,
};
pub use numeric_fine::{apply_task, gemm_task, gemm_task_with, trsm_task, trsm_task_with};
pub use observe::{
    factor_reported, MatrixMeta, ObsSession, RunReport, RunStatus, PHASE_NAMES, REPORT_SCHEMA,
};
pub use psolve::solve_permuted_parallel;
pub use request::{factor_numeric_with, BreakdownPolicy, GraphRef, NumericRequest};
pub use session::{pattern_hash, SluSession};
pub use solve::{
    det_permuted, growth_factor, solve_many_permuted, solve_permuted, solve_transposed_permuted,
};
pub use splu_dense::{Dispatch, KernelChoice, PanelBreakdown, PivotRule};
pub use splu_sched::{
    CancelToken, ExecReport, ExecSchedule, ExecTrace, FactorHealth, Interrupt, RunBudget,
    SchedStats, StallReport, TaskPanic, TraceConfig, TraceMode, WatchdogConfig, WorkerSnapshot,
    WorkerState, WorkerStats,
};

mod condest;
pub use condest::estimate_inverse_1norm;

use splu_obs::{Counter, Track};
use splu_ordering::{
    column_min_degree_multi_with, column_min_degree_with, maximum_transversal,
    reverse_cuthill_mckee, StructuralRank,
};
use splu_sched::{block_forest, build_eforest_graph, build_sstar_graph, Mapping, TaskGraph};
use splu_sparse::{CscMatrix, Permutation, SparsityPattern};
use splu_symbolic::supernode::BlockStructure;
use splu_symbolic::{
    amalgamate, postorder_permutation, static_symbolic_factorization, supernode_partition,
    EliminationForest, FilledLu, SupernodeOptions,
};

/// Fill-reducing ordering choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingChoice {
    /// Minimum degree on the pattern of `AᵀA` — the paper's choice.
    MinDegreeAtA,
    /// Multiple-elimination minimum degree on `AᵀA`: each round eliminates
    /// an independent set of minimum-degree vertices with deferred degree
    /// updates (the parallel-friendly variant). Produces a different but
    /// comparable-quality permutation; off by default.
    MinDegreeMulti,
    /// Keep the given order (after the transversal).
    Natural,
    /// Reverse Cuthill–McKee on the symmetrized pattern (ablation).
    Rcm,
}

/// Task dependence graph choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskGraphKind {
    /// The paper's least-dependence graph built from the block eforest.
    EForest,
    /// The S* graph: per destination column, updates chained by ascending
    /// source index.
    SStar,
}

/// Driver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Fill-reducing ordering (paper: minimum degree on `AᵀA`).
    pub ordering: OrderingChoice,
    /// Apply the eforest postordering (Section 3). On by default.
    pub postorder: bool,
    /// Supernode amalgamation; `None` keeps exact supernodes.
    pub amalgamation: Option<SupernodeOptions>,
    /// Which task dependence graph drives the factorization.
    pub task_graph: TaskGraphKind,
    /// Worker threads for the numerical phase.
    pub threads: usize,
    /// Worker threads for the symbolic front half (static fill chunks,
    /// assembly scatters, postorder segments). `1` (the default) is the
    /// sequential path; any value produces bitwise-identical structures.
    pub front_threads: usize,
    /// Task-to-worker mapping (paper: static 1D column mapping).
    pub mapping: Mapping,
    /// Absolute pivot rejection threshold (`0.0`: any nonzero pivot).
    pub pivot_threshold: f64,
    /// Pivot-selection rule (partial, threshold, or static-diagonal
    /// pivoting).
    pub pivot_rule: PivotRule,
    /// Row/column equilibration before factorization (robustness extension;
    /// the paper's benchmark matrices do not need it).
    pub equilibrate: bool,
    /// Dense kernel selection for the numerical phase (portable scalar by
    /// default; `Simd`/`Auto` use the explicit-width kernels when the
    /// `simd` cargo feature is compiled in — factors are bit-identical
    /// either way).
    pub kernels: KernelChoice,
    /// What to do at a column with no acceptable pivot: fail
    /// ([`BreakdownPolicy::Error`], the default) or perturb the diagonal
    /// and recover through refinement ([`BreakdownPolicy::Perturb`]).
    pub breakdown: BreakdownPolicy,
    /// Bounds on the numeric phase: a [`CancelToken`] (caller or Ctrl-C
    /// driven), a wall-clock deadline, and/or a liveness watchdog.
    /// Unbounded by default; an interrupted run drains every worker and
    /// returns [`LuError::Cancelled`] / [`LuError::DeadlineExceeded`] /
    /// [`LuError::Stalled`] with progress attached.
    pub budget: RunBudget,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            ordering: OrderingChoice::MinDegreeAtA,
            postorder: true,
            amalgamation: Some(SupernodeOptions::default()),
            task_graph: TaskGraphKind::EForest,
            threads: 1,
            front_threads: 1,
            mapping: Mapping::Static1D,
            pivot_threshold: 0.0,
            pivot_rule: PivotRule::Partial,
            equilibrate: false,
            kernels: KernelChoice::Portable,
            breakdown: BreakdownPolicy::Error,
            budget: RunBudget::default(),
        }
    }
}

impl Options {
    /// A fluent, validating builder over the defaults — the recommended way
    /// to assemble options programmatically. Struct-update syntax stays
    /// available for tests and quick experiments, but the builder is the
    /// only path that rejects incoherent settings (zero threads, a pivot
    /// threshold that is negative or non-finite, a threshold-pivoting τ
    /// outside `(0, 1]`, a non-positive perturbation ε) with a structured
    /// [`LuError::InvalidOptions`] instead of a panic deep in the pipeline.
    pub fn builder() -> OptionsBuilder {
        OptionsBuilder::default()
    }
}

/// Fluent builder for [`Options`]; see [`Options::builder`].
///
/// ```
/// use splu_core::Options;
/// let opts = Options::builder().threads(4).equilibrate(true).build().unwrap();
/// assert_eq!(opts.threads, 4);
/// assert!(Options::builder().threads(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct OptionsBuilder {
    opts: Options,
}

impl OptionsBuilder {
    /// Fill-reducing ordering.
    pub fn ordering(mut self, ordering: OrderingChoice) -> Self {
        self.opts.ordering = ordering;
        self
    }

    /// Eforest postordering on/off.
    pub fn postorder(mut self, postorder: bool) -> Self {
        self.opts.postorder = postorder;
        self
    }

    /// Supernode amalgamation; `None` keeps exact supernodes.
    pub fn amalgamation(mut self, amalgamation: Option<SupernodeOptions>) -> Self {
        self.opts.amalgamation = amalgamation;
        self
    }

    /// Task dependence graph kind.
    pub fn task_graph(mut self, task_graph: TaskGraphKind) -> Self {
        self.opts.task_graph = task_graph;
        self
    }

    /// Worker threads for the numerical phase (must be ≥ 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Worker threads for the symbolic front half (must be ≥ 1).
    pub fn front_threads(mut self, front_threads: usize) -> Self {
        self.opts.front_threads = front_threads;
        self
    }

    /// Task-to-worker mapping.
    pub fn mapping(mut self, mapping: Mapping) -> Self {
        self.opts.mapping = mapping;
        self
    }

    /// Absolute pivot rejection threshold (finite, ≥ 0).
    pub fn pivot_threshold(mut self, pivot_threshold: f64) -> Self {
        self.opts.pivot_threshold = pivot_threshold;
        self
    }

    /// Pivot-selection rule; `Threshold(τ)` requires `0 < τ ≤ 1`.
    pub fn pivot_rule(mut self, pivot_rule: PivotRule) -> Self {
        self.opts.pivot_rule = pivot_rule;
        self
    }

    /// Row/column equilibration before factorization.
    pub fn equilibrate(mut self, equilibrate: bool) -> Self {
        self.opts.equilibrate = equilibrate;
        self
    }

    /// Dense kernel selection.
    pub fn kernels(mut self, kernels: KernelChoice) -> Self {
        self.opts.kernels = kernels;
        self
    }

    /// Pivot-breakdown policy; `Perturb { eps }` requires a finite ε > 0.
    pub fn breakdown(mut self, breakdown: BreakdownPolicy) -> Self {
        self.opts.breakdown = breakdown;
        self
    }

    /// Run budget (deadline, cancel token, watchdog).
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.opts.budget = budget;
        self
    }

    /// Validates the accumulated settings, returning the [`Options`] or
    /// [`LuError::InvalidOptions`] naming the first incoherent field.
    pub fn build(self) -> Result<Options, LuError> {
        let invalid = |message: String| Err(LuError::InvalidOptions { message });
        let o = self.opts;
        if o.threads == 0 {
            return invalid("threads must be at least 1".into());
        }
        if o.front_threads == 0 {
            return invalid("front_threads must be at least 1".into());
        }
        if !o.pivot_threshold.is_finite() || o.pivot_threshold < 0.0 {
            return invalid(format!(
                "pivot_threshold must be finite and non-negative, got {}",
                o.pivot_threshold
            ));
        }
        if let PivotRule::Threshold(tau) = o.pivot_rule {
            if !tau.is_finite() || tau <= 0.0 || tau > 1.0 {
                return invalid(format!("threshold pivoting needs 0 < tau <= 1, got {tau}"));
            }
        }
        if let BreakdownPolicy::Perturb { eps } = o.breakdown {
            if !eps.is_finite() || eps <= 0.0 {
                return invalid(format!(
                    "perturbation policy needs a finite eps > 0, got {eps}"
                ));
            }
        }
        Ok(o)
    }
}

/// Structural statistics gathered during analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Matrix order.
    pub n: usize,
    /// Nonzeros of the input matrix.
    pub nnz_a: usize,
    /// Entries of `Ā = L̄ + Ū − I`.
    pub nnz_filled: usize,
    /// `nnz_filled / nnz_a` — the paper's Table 1 ratio.
    pub fill_ratio: f64,
    /// Supernodes from the exact L/U partition (before amalgamation).
    pub supernodes_exact: usize,
    /// Supernodes after amalgamation (= number of block columns `N`).
    pub supernodes: usize,
    /// Widest supernode.
    pub max_supernode_width: usize,
    /// Diagonal blocks of the block-upper-triangular form (trees of the
    /// eforest); meaningful when postordering is on.
    pub btf_blocks: usize,
    /// Tasks in the chosen dependence graph.
    pub graph_tasks: usize,
    /// Edges in the chosen dependence graph.
    pub graph_edges: usize,
    /// Critical path length (tasks) of the chosen graph.
    pub critical_path: usize,
    /// Estimated factorization flops (structural model).
    pub flops_estimate: f64,
}

/// The analysis product: permutations, filled structure, block structure and
/// the block-level eforest — everything the numerical phase needs.
pub struct SymbolicLu {
    /// Total row permutation: the factored matrix is
    /// `A[row_perm, col_perm]`.
    pub row_perm: Permutation,
    /// Total column permutation.
    pub col_perm: Permutation,
    /// Filled structure in factorization order.
    pub filled: FilledLu,
    /// Supernode partition and block-level structure.
    pub block_structure: BlockStructure,
    /// Block-level LU elimination forest.
    pub block_forest: EliminationForest,
    /// Structural statistics (graph fields reflect `opts.task_graph`).
    pub stats: Stats,
    opts: Options,
}

impl SymbolicLu {
    /// Builds the requested task dependence graph for this structure.
    pub fn build_graph(&self, kind: TaskGraphKind) -> TaskGraph {
        match kind {
            TaskGraphKind::EForest => build_eforest_graph(&self.block_structure),
            TaskGraphKind::SStar => build_sstar_graph(&self.block_structure),
        }
    }

    /// Permutes an input matrix into factorization order.
    pub fn permute_matrix(&self, a: &CscMatrix) -> CscMatrix {
        a.permuted(&self.row_perm, &self.col_perm)
    }

    /// Runs the numerical factorization of `a` (in **original** order) over
    /// a prebuilt graph — the benchmark entry point that lets callers time
    /// the numerical phase alone and vary threads/graph.
    pub fn factor_numeric(
        &self,
        a: &CscMatrix,
        graph: &TaskGraph,
        threads: usize,
        mapping: Mapping,
        pivot_threshold: f64,
    ) -> Result<NumericLu<'_>, LuError> {
        let permuted = self.permute_matrix(a);
        self.factor_numeric_permuted(&permuted, graph, threads, mapping, pivot_threshold)
    }

    /// Same as [`Self::factor_numeric`] but takes the matrix already in
    /// factorization order (lets benchmarks hoist the permutation).
    pub fn factor_numeric_permuted(
        &self,
        permuted: &CscMatrix,
        graph: &TaskGraph,
        threads: usize,
        mapping: Mapping,
        pivot_threshold: f64,
    ) -> Result<NumericLu<'_>, LuError> {
        let bm = BlockMatrix::assemble(permuted, &self.block_structure);
        factor_numeric_with(
            &bm,
            &NumericRequest::coarse(graph, mapping)
                .threads(threads)
                .pivot_threshold(pivot_threshold)
                .kernels(self.opts.kernels)
                .breakdown(self.opts.breakdown)
                .budget(self.opts.budget.clone()),
        )?;
        Ok(NumericLu { sym: self, bm })
    }
}

/// A completed numerical factorization borrowing its symbolic analysis.
pub struct NumericLu<'a> {
    sym: &'a SymbolicLu,
    bm: BlockMatrix,
}

impl NumericLu<'_> {
    /// Solves `A x = b` for the original-order `b`, returning original-order
    /// `x`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut y = self.sym.row_perm.apply_vec(b);
        solve_permuted(&self.bm, &self.sym.block_structure, &mut y);
        self.sym.col_perm.apply_inverse_vec(&y)
    }

    /// Solves `Aᵀ x = b` for the original-order `b`.
    pub fn solve_transposed(&self, b: &[f64]) -> Vec<f64> {
        let mut y = self.sym.col_perm.apply_vec(b);
        solve_transposed_permuted(&self.bm, &self.sym.block_structure, &mut y);
        self.sym.row_perm.apply_inverse_vec(&y)
    }

    /// The underlying block storage (diagnostics, storage accounting).
    pub fn block_matrix(&self) -> &BlockMatrix {
        &self.bm
    }
}

/// Runs the full analysis pipeline on a sparsity pattern.
///
/// Equivalent to [`analyze_with`] under the front-half request implied by
/// `opts` ([`SymbolicRequest::from_options`]): `opts.front_threads` workers
/// and `opts.budget` as the bound.
pub fn analyze(pattern: &SparsityPattern, opts: &Options) -> Result<SymbolicLu, LuError> {
    analyze_with(pattern, opts, &SymbolicRequest::from_options(opts))
}

/// Runs the full analysis pipeline with an explicit front-half request.
///
/// `req.front_threads == 1` is the historical sequential path;
/// `req.front_threads > 1` runs the chunked parallel static fill
/// ([`static_fill_parallel_with_parents`]) and the stitched parallel
/// postorder ([`postorder_parallel`]) — both bitwise identical to the
/// sequential path, so the returned [`SymbolicLu`] does not depend on the
/// thread count.
///
/// `req.budget` bounds the front half: the ordering polls it once per
/// elimination round, the parallel fill at every chunk boundary, and the
/// driver between phases, returning [`LuError::Cancelled`] /
/// [`LuError::DeadlineExceeded`] with the number of completed factor
/// columns attached (0 while still ordering).
pub fn analyze_with(
    pattern: &SparsityPattern,
    opts: &Options,
    req: &SymbolicRequest,
) -> Result<SymbolicLu, LuError> {
    if !pattern.is_square() {
        return Err(LuError::NotSquare {
            nrows: pattern.nrows(),
            ncols: pattern.ncols(),
        });
    }
    let n = pattern.ncols();
    let obs = req.obs.as_ref();
    let check = |columns_done: usize| -> Result<(), LuError> {
        if let Some(o) = obs {
            o.metrics().incr(Counter::BudgetCheckpoints);
        }
        if req.tripped() {
            Err(req.trip_error(columns_done, n))
        } else {
            Ok(())
        }
    };
    check(0)?;
    // 0. Maximum transversal → zero-free diagonal.
    let (rp0, p1) = {
        let _p = obs.map(|o| o.phase("scale_transversal"));
        let rp0 = match maximum_transversal(pattern) {
            StructuralRank::Full(p) => p,
            StructuralRank::Deficient { rank } => {
                return Err(LuError::StructurallySingular { rank })
            }
        };
        let id = Permutation::identity(n);
        let p1 = pattern.permuted(&rp0, &id);
        (rp0, p1)
    };

    // 1. Fill-reducing ordering, applied symmetrically to keep the
    // diagonal. The minimum-degree variants poll the budget between
    // elimination rounds; an observed run records each round as a span
    // between consecutive polls and counts the polls as checkpoints.
    let ordering_phase = obs.map(|o| o.phase("ordering"));
    let round = std::cell::Cell::new(0usize);
    let round_started = std::cell::Cell::new(None::<std::time::Instant>);
    let mut keep_going = || {
        if let Some(o) = obs {
            o.metrics().incr(Counter::BudgetCheckpoints);
            if o.trace().is_enabled() {
                let now = std::time::Instant::now();
                if let Some(prev) = round_started.get() {
                    let r = round.get();
                    o.trace()
                        .record_between(Track::Driver, format!("mindeg round {r}"), prev, now);
                    round.set(r + 1);
                }
                round_started.set(Some(now));
            }
        }
        !req.tripped()
    };
    let q = match opts.ordering {
        OrderingChoice::MinDegreeAtA => column_min_degree_with(&p1, &mut keep_going),
        OrderingChoice::MinDegreeMulti => column_min_degree_multi_with(&p1, &mut keep_going),
        OrderingChoice::Natural => Some(Permutation::identity(n)),
        OrderingChoice::Rcm => keep_going().then(|| reverse_cuthill_mckee(&p1)),
    }
    .ok_or_else(|| req.trip_error(0, n))?;
    drop(ordering_phase);
    let p2 = p1.permuted(&q, &q);
    let mut row_perm = q.compose(&rp0);
    let mut col_perm = q.clone();

    // 2. Static symbolic factorization; the parallel path also yields the
    // eforest parents, saving the `from_filled` pass below. Both paths
    // count the same fill totals (the parallel path per chunk, the
    // sequential one from the result) — the structures are bitwise equal.
    check(0)?;
    let (f2, parents) = {
        let _p = obs.map(|o| o.phase("symbolic_fill"));
        if req.front_threads <= 1 {
            let f = static_symbolic_factorization(&p2)?;
            if let Some(o) = obs {
                o.metrics().add(Counter::FillL, f.l.nnz() as u64);
                o.metrics().add(Counter::FillU, f.u.nnz() as u64);
            }
            (f, None)
        } else {
            let (f, par) = static_fill_parallel_with_parents(&p2, req)?;
            (f, Some(par))
        }
    };

    // 3. Eforest postordering (Theorem 3: permute the structures directly).
    check(n)?;
    let filled = {
        let _p = obs.map(|o| o.phase("eforest_postorder"));
        if opts.postorder {
            let po = match parents {
                Some(par) => {
                    let forest = EliminationForest::from_parent_vec(par);
                    postorder_parallel_obs(&forest, req.front_threads, obs)
                }
                None => postorder_permutation(&f2),
            };
            row_perm = po.compose(&row_perm);
            col_perm = po.compose(&col_perm);
            FilledLu::from_parts(f2.l.permuted(&po, &po), f2.u.permuted(&po, &po))
        } else {
            f2
        }
    };
    check(n)?;

    // 4. Supernodes (+ amalgamation) and the block structure.
    let (supernodes_exact, block_structure, bf) = {
        let _p = obs.map(|o| o.phase("supernode_partition"));
        let exact = supernode_partition(&filled);
        let supernodes_exact = exact.num_blocks();
        let partition = match &opts.amalgamation {
            Some(sn_opts) => amalgamate(&filled, &exact, sn_opts),
            None => exact,
        };
        let block_structure = BlockStructure::new(&filled, partition);
        let bf = block_forest(&block_structure);
        (supernodes_exact, block_structure, bf)
    };

    // 5. Statistics, including the chosen task graph's shape.
    let _graph_phase = obs.map(|o| o.phase("graph_build"));
    let scalar_forest = EliminationForest::from_filled(&filled);
    let btf_blocks = scalar_forest.roots().len();
    let graph = match opts.task_graph {
        TaskGraphKind::EForest => build_eforest_graph(&block_structure),
        TaskGraphKind::SStar => build_sstar_graph(&block_structure),
    };
    let flops_estimate = total_flops(&estimate_task_costs(&block_structure, &graph));
    let stats = Stats {
        n,
        nnz_a: pattern.nnz(),
        nnz_filled: filled.nnz_filled(),
        fill_ratio: if pattern.nnz() == 0 {
            0.0
        } else {
            filled.nnz_filled() as f64 / pattern.nnz() as f64
        },
        supernodes_exact,
        supernodes: block_structure.num_blocks(),
        max_supernode_width: block_structure.partition.max_width(),
        btf_blocks,
        graph_tasks: graph.len(),
        graph_edges: graph.num_edges(),
        critical_path: graph.critical_path_len(),
        flops_estimate,
    };
    Ok(SymbolicLu {
        row_perm,
        col_perm,
        filled,
        block_structure,
        block_forest: bf,
        stats,
        opts: opts.clone(),
    })
}

/// The one-stop factorization object — a thin wrapper over [`SluSession`]
/// that adds equilibration, automatic refinement after pivot perturbation,
/// and the one-shot `factor → solve` ergonomics. Callers that refactorize
/// the same pattern repeatedly should hold an [`SluSession`] instead.
pub struct SparseLu {
    session: SluSession,
    equil: Option<splu_sparse::scaling::Equilibration>,
    /// Robustness report of the numeric phase (perturbed columns, growth,
    /// condition estimate); trivial unless the breakdown policy perturbed.
    /// Own copy (not the session's) so the condition estimate below can be
    /// attached after construction.
    health: FactorHealth,
    /// The original input, retained when the factorization perturbed
    /// pivots — [`Self::solve`] then refines against it automatically.
    refine_with: Option<CscMatrix>,
}

impl SparseLu {
    /// Analyzes and factorizes `a` with the given options.
    ///
    /// Input values are validated up front: any NaN or infinity is rejected
    /// as [`LuError::NonFiniteInput`] before the (parallel) numeric phase
    /// can propagate it silently.
    pub fn factor(a: &CscMatrix, opts: &Options) -> Result<SparseLu, LuError> {
        Self::factor_inner(a, opts, None)
    }

    /// [`Self::factor`] under an observability session: every pipeline
    /// phase records a span on the session's shared-epoch trace, the fill
    /// and kernel counters accumulate into its metrics registry, and the
    /// numeric executor's report is captured for
    /// [`ObsSession::report`] / [`ObsSession::chrome_json`]. The factors
    /// are bit-identical to the unobserved [`Self::factor`].
    pub fn factor_observed(
        a: &CscMatrix,
        opts: &Options,
        session: &ObsSession,
    ) -> Result<SparseLu, LuError> {
        Self::factor_inner(a, opts, Some(session))
    }

    fn factor_inner(
        a: &CscMatrix,
        opts: &Options,
        obs: Option<&ObsSession>,
    ) -> Result<SparseLu, LuError> {
        for (_, j, v) in a.triplets() {
            if !v.is_finite() {
                return Err(LuError::NonFiniteInput { column: j });
            }
        }
        // Equilibration shares the canonical "scale_transversal" phase with
        // the transversal inside `analyze_with` (spans of one name sum).
        let equil = {
            let _p = obs.map(|o| o.phase("scale_transversal"));
            opts.equilibrate
                .then(|| splu_sparse::scaling::equilibrate(a))
        };
        let work = equil.as_ref().map(|e| &e.scaled).unwrap_or(a);
        let mut session = match obs {
            Some(o) => SluSession::analyze_observed(work.pattern(), opts, o)?,
            None => SluSession::analyze(work.pattern(), opts)?,
        };
        match obs {
            Some(o) => session.factor_observed(work, o)?,
            None => session.factor(work)?,
        }
        let mut lu = SparseLu {
            health: session.health().clone(),
            session,
            equil,
            refine_with: None,
        };
        if lu.health.is_perturbed() {
            // The factors are those of a nearby matrix: estimate its
            // conditioning (Hager–Higham, through the perturbed factors)
            // and arm automatic refinement against the true input.
            lu.health.condest = Some(estimate_inverse_1norm(&lu, a.ncols(), 5));
            lu.refine_with = Some(a.clone());
        }
        Ok(lu)
    }

    /// The underlying persistent session. Note the session holds the
    /// *equilibrated* matrix's factors when `opts.equilibrate` was set —
    /// its raw solves then answer for `R·A·C`, not `A`; the wrapper's
    /// solve methods apply the scales.
    pub fn session(&self) -> &SluSession {
        &self.session
    }

    fn sym(&self) -> &SymbolicLu {
        self.session.symbolic()
    }

    fn bm(&self) -> &BlockMatrix {
        self.session
            .block_matrix()
            .expect("a constructed SparseLu always holds factors")
    }

    fn check_len(&self, b: &[f64], nrhs: usize) -> Result<(), LuError> {
        let expected = self.sym().stats.n * nrhs;
        if b.len() != expected {
            return Err(LuError::DimensionMismatch {
                expected,
                got: b.len(),
            });
        }
        Ok(())
    }

    /// Fallible [`Self::solve`]: rejects a wrong-length right-hand side
    /// with [`LuError::DimensionMismatch`] instead of panicking.
    pub fn try_solve(&self, b: &[f64]) -> Result<Vec<f64>, LuError> {
        self.check_len(b, 1)?;
        Ok(self.solve(b))
    }

    /// Fallible [`Self::solve_transposed`].
    pub fn try_solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LuError> {
        self.check_len(b, 1)?;
        Ok(self.solve_transposed(b))
    }

    /// Fallible [`Self::solve_many`].
    pub fn try_solve_many(&self, b: &[f64], nrhs: usize) -> Result<Vec<f64>, LuError> {
        self.check_len(b, nrhs)?;
        Ok(self.solve_many(b, nrhs))
    }

    /// Fallible [`Self::solve_refined`].
    pub fn try_solve_refined(
        &self,
        a: &CscMatrix,
        b: &[f64],
        tol: f64,
        max_iters: usize,
    ) -> Result<(Vec<f64>, usize), LuError> {
        self.check_len(b, 1)?;
        Ok(self.refine(a, b, tol, max_iters))
    }

    /// Solves `A x = b`. If the factorization perturbed pivots
    /// ([`BreakdownPolicy::Perturb`]), the solve automatically routes
    /// through iterative refinement against the retained input matrix, so
    /// the returned solution is accurate for `A` itself, not the perturbed
    /// nearby matrix; check the achieved residual with
    /// [`splu_sparse::relative_residual`].
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        match &self.refine_with {
            Some(a) => self.refine(a, b, 1e-12, 20).0,
            None => self.solve_raw(b),
        }
    }

    /// One forward/backward substitution through the stored factors, with
    /// no refinement — the raw factors' answer.
    fn solve_raw(&self, b: &[f64]) -> Vec<f64> {
        let scaled_b;
        let rhs: &[f64] = match &self.equil {
            Some(eq) => {
                scaled_b = eq.scale_rhs(b);
                &scaled_b
            }
            None => b,
        };
        let mut y = self.sym().row_perm.apply_vec(rhs);
        solve_permuted(self.bm(), &self.sym().block_structure, &mut y);
        let x = self.sym().col_perm.apply_inverse_vec(&y);
        match &self.equil {
            Some(eq) => eq.unscale_solution(&x),
            None => x,
        }
    }

    /// Solves `A x = b` with the forest-scheduled parallel triangular
    /// solve (bit-identical to [`Self::solve`], asserted by the tests).
    pub fn solve_parallel(&self, b: &[f64], nthreads: usize) -> Vec<f64> {
        let scaled_b;
        let rhs: &[f64] = match &self.equil {
            Some(eq) => {
                scaled_b = eq.scale_rhs(b);
                &scaled_b
            }
            None => b,
        };
        let mut y = self.sym().row_perm.apply_vec(rhs);
        solve_permuted_parallel(self.bm(), &self.sym().block_structure, &mut y, nthreads);
        let x = self.sym().col_perm.apply_inverse_vec(&y);
        match &self.equil {
            Some(eq) => eq.unscale_solution(&x),
            None => x,
        }
    }

    /// Solves `Aᵀ x = b`.
    pub fn solve_transposed(&self, b: &[f64]) -> Vec<f64> {
        // With equilibration S = R·A·C was factored, so Aᵀ = C⁻¹ Sᵀ R⁻¹ and
        // x = R · S⁻ᵀ · (C b): the scale vectors swap roles.
        let scaled_b;
        let rhs: &[f64] = match &self.equil {
            Some(eq) => {
                scaled_b = b
                    .iter()
                    .zip(&eq.col_scale)
                    .map(|(&v, &s)| v * s)
                    .collect::<Vec<f64>>();
                &scaled_b
            }
            None => b,
        };
        let mut y = self.sym().col_perm.apply_vec(rhs);
        solve_transposed_permuted(self.bm(), &self.sym().block_structure, &mut y);
        let x = self.sym().row_perm.apply_inverse_vec(&y);
        match &self.equil {
            Some(eq) => x.iter().zip(&eq.row_scale).map(|(&v, &s)| v * s).collect(),
            None => x,
        }
    }

    /// Solves `A x = b` with iterative refinement against the original
    /// matrix: repeat `x ← x + A⁻¹(b − A x)` until the scaled residual
    /// drops below `tol` or `max_iters` refinements have run. Returns the
    /// solution and the number of refinement steps taken.
    pub fn solve_refined(
        &self,
        a: &CscMatrix,
        b: &[f64],
        tol: f64,
        max_iters: usize,
    ) -> (Vec<f64>, usize) {
        self.refine(a, b, tol, max_iters)
    }

    /// Refinement loop over the raw (unrouted) solve — shared by
    /// [`Self::solve_refined`] and the automatic routing in
    /// [`Self::solve`], which must not recurse back into itself.
    fn refine(&self, a: &CscMatrix, b: &[f64], tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
        let mut x = self.solve_raw(b);
        for it in 0..max_iters {
            if splu_sparse::relative_residual(a, &x, b) <= tol {
                return (x, it);
            }
            let mut r = b.to_vec();
            a.mat_vec_sub(&x, &mut r);
            let dx = self.solve_raw(&r);
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += di;
            }
        }
        (x, max_iters)
    }

    /// The numeric phase's robustness report: perturbed columns, largest
    /// perturbation, element-growth estimate, and (when perturbed) a
    /// Hager–Higham condition estimate of the factored nearby matrix.
    pub fn health(&self) -> &FactorHealth {
        &self.health
    }

    /// Analysis statistics.
    pub fn stats(&self) -> &Stats {
        &self.sym().stats
    }

    /// The symbolic analysis.
    pub fn symbolic(&self) -> &SymbolicLu {
        self.sym()
    }

    /// Options used to build this factorization.
    pub fn options(&self) -> &Options {
        &self.sym().opts
    }

    /// Solves `A X = B` for `nrhs` right-hand sides stored column-major in
    /// `b` (`n × nrhs`), returning the solutions in the same layout.
    ///
    /// Walks the factors once, applying every elimination step to all
    /// right-hand sides with the BLAS-3 kernels.
    pub fn solve_many(&self, b: &[f64], nrhs: usize) -> Vec<f64> {
        let n = self.sym().stats.n;
        assert_eq!(b.len(), n * nrhs, "rhs block size mismatch");
        // Permute (and scale) each column into factorization order.
        let mut work = Vec::with_capacity(b.len());
        for r in 0..nrhs {
            let col = &b[r * n..(r + 1) * n];
            let scaled;
            let rhs: &[f64] = match &self.equil {
                Some(eq) => {
                    scaled = eq.scale_rhs(col);
                    &scaled
                }
                None => col,
            };
            work.extend(self.sym().row_perm.apply_vec(rhs));
        }
        solve_many_permuted(self.bm(), &self.sym().block_structure, &mut work, nrhs);
        let mut out = Vec::with_capacity(b.len());
        for r in 0..nrhs {
            let x = self
                .sym()
                .col_perm
                .apply_inverse_vec(&work[r * n..(r + 1) * n]);
            match &self.equil {
                Some(eq) => out.extend(eq.unscale_solution(&x)),
                None => out.extend(x),
            }
        }
        out
    }

    /// Sign and natural log of `|det(A)|`.
    ///
    /// Computed from the `Ū` diagonal, the pivot interchanges, and the
    /// parities of the analysis permutations; equilibration scales are
    /// divided back out.
    pub fn determinant(&self) -> (f64, f64) {
        let (mut sign, mut ln_abs) = det_permuted(self.bm(), &self.sym().block_structure);
        if !self.sym().row_perm.is_even() {
            sign = -sign;
        }
        if !self.sym().col_perm.is_even() {
            sign = -sign;
        }
        if let Some(eq) = &self.equil {
            for &s in eq.row_scale.iter().chain(&eq.col_scale) {
                ln_abs -= s.ln();
            }
        }
        (sign, ln_abs)
    }

    /// Element-growth factor `max|factor| / max|A|` — the standard
    /// backward-stability diagnostic for partial pivoting.
    pub fn growth(&self, a: &CscMatrix) -> f64 {
        let max_a = a.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        growth_factor(self.bm(), max_a)
    }

    /// Storage accounting of the factored block matrix.
    pub fn storage(&self) -> FactorStorage {
        let words = self.bm().storage_words();
        let structural = self.sym().stats.nnz_filled;
        FactorStorage {
            words,
            structural,
            padding_fraction: if words == 0 {
                0.0
            } else {
                1.0 - structural as f64 / words as f64
            },
        }
    }
}

/// Storage accounting for a factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorStorage {
    /// Dense words allocated by the block storage (explicit zeros
    /// included).
    pub words: usize,
    /// Entries of the scalar static structure `Ā`.
    pub structural: usize,
    /// Fraction of the stored words that are structural padding (explicit
    /// zeros introduced by blocking and amalgamation).
    pub padding_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::relative_residual;
    use splu_symbolic::fixtures::fig1_matrix;

    fn random_matrix(n: usize, extra: usize, seed: u64) -> CscMatrix {
        splu_matgen::random_diag_dominant(n, extra, seed, 4.0)
    }

    #[test]
    fn default_pipeline_solves_fig1() {
        let a = fig1_matrix();
        let lu = SparseLu::factor(&a, &Options::default()).unwrap();
        let b: Vec<f64> = (0..7).map(|i| (i as f64) - 2.0).collect();
        let x = lu.solve(&b);
        assert!(relative_residual(&a, &x, &b) < 1e-12);
        assert!(lu.stats().nnz_filled >= lu.stats().nnz_a);
        assert!(lu.stats().fill_ratio >= 1.0);
    }

    #[test]
    fn every_option_combination_agrees_with_gp() {
        let a = random_matrix(40, 110, 5);
        let b: Vec<f64> = (0..40).map(|i| ((i % 9) as f64) - 4.0).collect();
        let reference = {
            let lu = crate::gp::gp_factor(&a, 0.0).unwrap();
            let mut x = b.clone();
            lu.solve(&mut x);
            x
        };
        for ordering in [
            OrderingChoice::MinDegreeAtA,
            OrderingChoice::MinDegreeMulti,
            OrderingChoice::Natural,
            OrderingChoice::Rcm,
        ] {
            for postorder in [false, true] {
                for task_graph in [TaskGraphKind::EForest, TaskGraphKind::SStar] {
                    for amalgamation in [None, Some(SupernodeOptions::default())] {
                        let opts = Options {
                            ordering,
                            postorder,
                            task_graph,
                            amalgamation,
                            ..Options::default()
                        };
                        let lu = SparseLu::factor(&a, &opts).unwrap();
                        let x = lu.solve(&b);
                        assert!(
                            relative_residual(&a, &x, &b) < 1e-9,
                            "bad residual for {opts:?}"
                        );
                        let err: f64 = x
                            .iter()
                            .zip(&reference)
                            .map(|(p, q)| (p - q).abs())
                            .fold(0.0, f64::max);
                        assert!(err < 1e-6, "diverges from GP for {opts:?}: {err}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = random_matrix(60, 200, 8);
        let b: Vec<f64> = (0..60).map(|i| (i as f64).cos()).collect();
        let seq = SparseLu::factor(&a, &Options::default()).unwrap();
        let x_seq = seq.solve(&b);
        for threads in [2usize, 4] {
            for mapping in [Mapping::Static1D, Mapping::Dynamic] {
                let opts = Options {
                    threads,
                    mapping,
                    ..Options::default()
                };
                let par = SparseLu::factor(&a, &opts).unwrap();
                let x_par = par.solve(&b);
                for i in 0..60 {
                    assert!(
                        (x_seq[i] - x_par[i]).abs() < 1e-10,
                        "thread count changed the answer (threads={threads}, {mapping:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn matrices_without_zero_free_diagonal_are_handled() {
        // A cyclic permutation matrix plus noise: diagonal all zero.
        let n = 12;
        let mut trips: Vec<(usize, usize, f64)> = (0..n).map(|i| ((i + 1) % n, i, 3.0)).collect();
        trips.push((0, 4, 0.5));
        trips.push((7, 2, -0.25));
        let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let lu = SparseLu::factor(&a, &Options::default()).unwrap();
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = lu.solve(&b);
        assert!(relative_residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn structurally_singular_is_rejected() {
        let a = CscMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 0, 1.0), (2, 2, 1.0)]).unwrap();
        assert!(matches!(
            SparseLu::factor(&a, &Options::default()),
            Err(LuError::StructurallySingular { rank: 2 })
        ));
    }

    #[test]
    fn rectangular_is_rejected() {
        let p = SparsityPattern::empty(2, 3);
        assert!(matches!(
            analyze(&p, &Options::default()),
            Err(LuError::NotSquare { .. })
        ));
    }

    #[test]
    fn stats_are_coherent() {
        let a = random_matrix(50, 150, 13);
        let lu = SparseLu::factor(&a, &Options::default()).unwrap();
        let s = lu.stats();
        assert_eq!(s.n, 50);
        assert!(s.supernodes <= s.supernodes_exact);
        assert!(s.max_supernode_width >= 1);
        assert!(s.graph_tasks >= s.supernodes);
        assert!(s.critical_path <= s.graph_tasks);
        assert!(s.flops_estimate > 0.0);
        assert!(s.btf_blocks >= 1);
        assert_eq!(lu.options().threads, 1);
    }

    #[test]
    fn transpose_solve_through_the_full_pipeline() {
        let a = random_matrix(40, 120, 99);
        let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.31).cos()).collect();
        for equilibrate in [false, true] {
            let opts = Options {
                equilibrate,
                ..Options::default()
            };
            let lu = SparseLu::factor(&a, &opts).unwrap();
            let x = lu.solve_transposed(&b);
            let at = a.transpose();
            assert!(
                relative_residual(&at, &x, &b) < 1e-11,
                "equilibrate={equilibrate}"
            );
        }
    }

    #[test]
    fn storage_accounting_is_consistent() {
        let a = random_matrix(45, 140, 3);
        let lu = SparseLu::factor(&a, &Options::default()).unwrap();
        let s = lu.storage();
        assert!(s.words >= s.structural);
        assert!((0.0..1.0).contains(&s.padding_fraction));
        // No amalgamation + singleton-ish supernodes → padding only from
        // exact supernode blocks; with amalgamation off it still holds that
        // words >= structural.
        let lu2 = SparseLu::factor(
            &a,
            &Options {
                amalgamation: None,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(lu2.storage().padding_fraction <= s.padding_fraction + 1e-12);
    }

    #[test]
    fn pivot_rules_through_the_full_pipeline() {
        let a = random_matrix(45, 130, 55); // diagonally dominant
        let b: Vec<f64> = (0..45).map(|i| (i as f64 * 0.17).sin()).collect();
        for rule in [
            PivotRule::Partial,
            PivotRule::Threshold(0.5),
            PivotRule::Threshold(0.01),
            PivotRule::Diagonal,
        ] {
            let opts = Options {
                pivot_rule: rule,
                ..Options::default()
            };
            let lu = SparseLu::factor(&a, &opts).unwrap();
            let x = lu.solve(&b);
            assert!(
                relative_residual(&a, &x, &b) < 1e-9,
                "{rule:?}: residual too large"
            );
        }
        // On a dominant matrix the diagonal rule does zero interchanges, so
        // the growth matches the threshold rule's at τ→0.
        let diag = SparseLu::factor(
            &a,
            &Options {
                pivot_rule: PivotRule::Diagonal,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(diag.growth(&a) < 50.0);
    }

    #[test]
    fn diagonal_rule_fails_where_partial_succeeds() {
        // Zero diagonal entry: partial pivoting recovers, diagonal rule
        // cannot.
        let a =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0)])
                .unwrap();
        assert!(SparseLu::factor(&a, &Options::default()).is_ok());
        assert!(matches!(
            SparseLu::factor(
                &a,
                &Options {
                    pivot_rule: PivotRule::Diagonal,
                    ..Options::default()
                }
            ),
            Err(LuError::NumericallySingular { .. })
        ));
    }

    #[test]
    fn determinant_through_the_full_pipeline() {
        use splu_dense::{lu_full, DenseMat};
        let a = random_matrix(20, 55, 31);
        // Dense oracle.
        let n = 20;
        let mut dense = DenseMat::from_fn(n, n, |i, j| a.get(i, j));
        let piv = lu_full(&mut dense).unwrap();
        let mut oracle_sign = 1.0_f64;
        let mut oracle_ln = 0.0_f64;
        for c in 0..n {
            let d = dense[(c, c)];
            if d < 0.0 {
                oracle_sign = -oracle_sign;
            }
            oracle_ln += d.abs().ln();
        }
        for (c, &p) in piv.swaps().iter().enumerate() {
            if c != p {
                oracle_sign = -oracle_sign;
            }
        }
        for equilibrate in [false, true] {
            for postorder in [false, true] {
                let opts = Options {
                    equilibrate,
                    postorder,
                    ..Options::default()
                };
                let lu = SparseLu::factor(&a, &opts).unwrap();
                let (sign, ln_abs) = lu.determinant();
                assert_eq!(sign, oracle_sign, "equil={equilibrate} post={postorder}");
                assert!(
                    (ln_abs - oracle_ln).abs() < 1e-8,
                    "equil={equilibrate} post={postorder}: {ln_abs} vs {oracle_ln}"
                );
            }
        }
    }

    #[test]
    fn solve_many_and_growth_api() {
        let a = random_matrix(30, 80, 7);
        let lu = SparseLu::factor(&a, &Options::default()).unwrap();
        let n = 30;
        let nrhs = 4;
        let b: Vec<f64> = (0..n * nrhs).map(|i| ((i % 11) as f64) - 5.0).collect();
        let xs = lu.solve_many(&b, nrhs);
        for r in 0..nrhs {
            let x1 = lu.solve(&b[r * n..(r + 1) * n]);
            assert_eq!(&xs[r * n..(r + 1) * n], &x1[..]);
            assert!(relative_residual(&a, &x1, &b[r * n..(r + 1) * n]) < 1e-12);
        }
        // Growth can dip marginally below 1 when the largest entry of A lies
        // in a row that elimination reduces, so the lower bound is loose.
        let g = lu.growth(&a);
        assert!((0.99..100.0).contains(&g), "growth {g}");
    }

    #[test]
    fn equilibration_rescues_badly_scaled_systems() {
        // Columns scaled over 12 orders of magnitude.
        let n = 30;
        let mut trips: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n {
            let scale = 10f64.powi((i % 13) as i32 - 6);
            trips.push((i, i, 5.0 * scale));
            if i + 1 < n {
                trips.push((i + 1, i, 1.0 * scale));
                trips.push((i, i + 1, -0.5 * 10f64.powi(((i + 1) % 13) as i32 - 6)));
            }
        }
        let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        for equilibrate in [false, true] {
            let opts = Options {
                equilibrate,
                ..Options::default()
            };
            let lu = SparseLu::factor(&a, &opts).unwrap();
            let x = lu.solve(&b);
            assert!(
                relative_residual(&a, &x, &b) < 1e-10,
                "equilibrate={equilibrate}"
            );
        }
    }

    #[test]
    fn iterative_refinement_tightens_the_residual() {
        let a = random_matrix(50, 160, 77);
        let b: Vec<f64> = (0..50).map(|i| ((i * 11) % 17) as f64 - 8.0).collect();
        let lu = SparseLu::factor(&a, &Options::default()).unwrap();
        let (x, iters) = lu.solve_refined(&a, &b, 1e-15, 4);
        assert!(iters <= 4);
        assert!(relative_residual(&a, &x, &b) < 1e-13);
        // Refinement from an exact-enough start takes 0 or few steps.
        let (x2, iters2) = lu.solve_refined(&a, &b, 1e-2, 4);
        assert_eq!(iters2, 0);
        assert!(relative_residual(&a, &x2, &b) < 1e-2);
    }

    #[test]
    fn symbolic_reuse_across_graphs_and_threads() {
        let a = random_matrix(45, 130, 21);
        let sym = analyze(a.pattern(), &Options::default()).unwrap();
        let ge = sym.build_graph(TaskGraphKind::EForest);
        let gs = sym.build_graph(TaskGraphKind::SStar);
        assert!(ge.num_edges() <= gs.num_edges());
        let b: Vec<f64> = (0..45).map(|i| (i as f64).sin()).collect();
        let n1 = sym
            .factor_numeric(&a, &ge, 1, Mapping::Static1D, 0.0)
            .unwrap();
        let n2 = sym
            .factor_numeric(&a, &gs, 2, Mapping::Static1D, 0.0)
            .unwrap();
        let x1 = n1.solve(&b);
        let x2 = n2.solve(&b);
        for i in 0..45 {
            assert!((x1[i] - x2[i]).abs() < 1e-10);
        }
        assert!(n1.block_matrix().storage_words() > 0);
    }
}
