//! Parallel front half: threaded static symbolic fill and postorder
//! construction, driven by the same work-stealing executor as the numeric
//! phase.
//!
//! The chunked formulation (see [`splu_symbolic::static_fact`]) splits
//! static symbolic factorization into a cheap sequential **skeleton** pass
//! (the union–find merge loop, which also yields the elimination-forest
//! parents and every factor-column length) and an embarrassingly parallel
//! **fill** pass: each column's `Ū` structure is an independent bounded
//! reachability climb through the skeleton forest (the GSoFa-style
//! per-column formulation). Chunks of columns are scheduled as independent
//! tasks on `splu_sched`, each worker reusing a pooled
//! [`FillScratch`]; the per-chunk outputs are merged **deterministically**
//! (chunks tile the column range in ascending order and every entry's
//! final position is fixed before assembly starts), so the L/U patterns
//! are bitwise identical to the sequential path for every thread count,
//! chunking, and schedule.
//!
//! Cancellation: a [`RunBudget`] bounds the fill phase at chunk
//! boundaries exactly as it bounds the numeric phase at task boundaries —
//! `--time-limit` therefore covers symbolic runs too.

use crate::observe::ObsSession;
use crate::{LuError, Options};
use parking_lot::Mutex;
use splu_obs::{Counter, Track};
use splu_sched::{
    execute_dag_report, execute_dag_report_budgeted, CancelToken, EventKind, Interrupt, RunBudget,
    TraceConfig,
};
use splu_sparse::{Permutation, SparsityPattern};
use splu_symbolic::{
    assemble_filled_threads, fill_columns, fill_skeleton, EliminationForest, FillChunk,
    FillScratch, FilledLu,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Parameters of one symbolic front half (the analysis phases before the
/// numeric factorization). Build with [`SymbolicRequest::new`] or
/// [`SymbolicRequest::from_options`], adjust with the chainable setters,
/// run with [`crate::analyze_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicRequest {
    /// Worker threads for the front half: symbolic-fill chunks, the
    /// assembly scatters, and postorder segments. `1` (the default) is the
    /// sequential path.
    pub front_threads: usize,
    /// Fill chunks created per front thread (more chunks → better load
    /// balance, slightly more scheduling overhead).
    pub chunks_per_thread: usize,
    /// Bounds on the front half: cancellation token, wall-clock deadline,
    /// liveness watchdog. Checked at chunk/phase boundaries; an
    /// interrupted run returns [`LuError::Cancelled`] /
    /// [`LuError::DeadlineExceeded`] / [`LuError::Stalled`].
    pub budget: RunBudget,
    /// Observability session: when set, the front half records phase and
    /// per-chunk spans into its [`crate::observe::ObsSession::trace`] and
    /// counts fill entries / budget checkpoints into its metrics registry.
    /// `None` (the default) records and counts nothing — the unobserved
    /// path never reads the clock.
    pub obs: Option<ObsSession>,
}

impl Default for SymbolicRequest {
    fn default() -> Self {
        SymbolicRequest {
            front_threads: 1,
            chunks_per_thread: 4,
            budget: RunBudget::default(),
            obs: None,
        }
    }
}

impl SymbolicRequest {
    /// The default request: sequential, unbounded.
    pub fn new() -> Self {
        Self::default()
    }

    /// The front-half request implied by driver options: thread count and
    /// budget are lifted from [`Options::front_threads`] and
    /// [`Options::budget`].
    pub fn from_options(opts: &Options) -> Self {
        SymbolicRequest::new()
            .front_threads(opts.front_threads)
            .budget(opts.budget.clone())
    }

    /// Sets the front-half worker-thread count.
    pub fn front_threads(mut self, threads: usize) -> Self {
        self.front_threads = threads;
        self
    }

    /// Sets the number of fill chunks per front thread.
    pub fn chunks_per_thread(mut self, chunks: usize) -> Self {
        self.chunks_per_thread = chunks;
        self
    }

    /// Sets the run budget (cancellation / deadline / watchdog).
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches an observability session (spans + counters).
    pub fn observe(mut self, session: ObsSession) -> Self {
        self.obs = Some(session);
        self
    }

    /// Whether the budget asks the front half to stop (token cancelled or
    /// deadline passed).
    pub(crate) fn tripped(&self) -> bool {
        self.budget.token.as_ref().is_some_and(|t| t.is_cancelled())
            || self.budget.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The error a tripped budget maps to, mirroring the numeric phase's
    /// interrupt mapping. `columns_done` counts factor columns whose
    /// structure was completed before the trip.
    pub(crate) fn trip_error(&self, columns_done: usize, tasks_pending: usize) -> LuError {
        if self.budget.deadline.is_some_and(|d| Instant::now() >= d) {
            LuError::DeadlineExceeded {
                columns_done,
                tasks_pending,
            }
        } else {
            LuError::Cancelled {
                columns_done,
                tasks_pending,
            }
        }
    }
}

fn map_interrupt(interrupt: Interrupt, columns_done: usize) -> LuError {
    match interrupt {
        Interrupt::Cancelled { tasks_pending } => LuError::Cancelled {
            columns_done,
            tasks_pending,
        },
        Interrupt::DeadlineExceeded { tasks_pending } => LuError::DeadlineExceeded {
            columns_done,
            tasks_pending,
        },
        Interrupt::Stalled(report) => LuError::Stalled {
            columns_done,
            report,
        },
    }
}

/// Parallel static symbolic factorization: sequential skeleton pass, fill
/// chunks scheduled as independent tasks on the work-stealing executor,
/// threaded deterministic assembly. Returns the filled structure together
/// with the skeleton's elimination-forest parent vector (`usize::MAX`
/// marks roots), which equals `EliminationForest::from_filled(&filled)`'s
/// parents — callers get the forest without a second pass over `Ū`.
///
/// The result is **bitwise identical** to
/// [`splu_symbolic::static_symbolic_factorization`] for every
/// `front_threads` value; the executor only decides *when* each chunk
/// runs, never *what* it produces (each column's climb output is a pure
/// function of the skeleton) nor *where* it lands (all positions are fixed
/// by the skeleton's length arrays before assembly).
pub fn static_fill_parallel_with_parents(
    pattern: &SparsityPattern,
    req: &SymbolicRequest,
) -> Result<(FilledLu, Vec<usize>), LuError> {
    let threads = req.front_threads.max(1);
    let obs = req.obs.as_ref();
    let metrics = obs.map(|o| o.metrics().as_ref());
    let skel = {
        let _s = obs.map(|o| o.trace().span(Track::Driver, "fill_skeleton"));
        fill_skeleton(pattern)?
    };
    let n = skel.n();

    // Effective budget: a deadline or watchdog without a caller token gets
    // an internal one so interrupts can release cooperative waiters.
    let mut budget = req.budget.clone();
    if budget.token.is_none() && (budget.deadline.is_some() || budget.watchdog.is_some()) {
        budget.token = Some(CancelToken::new());
    }

    let ranges = skel.partition(pattern, threads * req.chunks_per_thread.max(1));
    let n_chunks = ranges.len();
    let slots: Vec<Mutex<Option<FillChunk>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let scratch_pool: Mutex<Vec<FillScratch>> = Mutex::new(Vec::new());
    let columns_done = AtomicUsize::new(0);
    let pred_counts = vec![0usize; n_chunks];
    // An observed run records each chunk as a span on its front-thread
    // track (shared-epoch executor trace, replayed below) and counts the
    // Ū entries it produced; the unobserved configuration is `off` and the
    // task body touches no counters, so the historical path is unchanged.
    let exec_config = match obs {
        Some(o) => o.executor_trace_config(n_chunks, threads),
        None => TraceConfig::off(),
    };
    let mut report = execute_dag_report_budgeted(
        n_chunks,
        &pred_counts,
        |_| &[][..],
        threads,
        1,
        |_| 0,
        |t| {
            #[cfg(feature = "failpoints")]
            crate::failpoints::maybe_cancel_symbolic(t, budget.token.as_ref());
            let mut scratch = scratch_pool
                .lock()
                .pop()
                .unwrap_or_else(|| FillScratch::new(n));
            let cols = ranges[t].clone();
            let filled_here = cols.len();
            let chunk = fill_columns(pattern, &skel, cols, &mut scratch);
            if let Some(reg) = metrics {
                // Every chunk boundary is a budget poll; u_idx counts the
                // Ū entries (diagonal included) this chunk contributed.
                reg.incr(Counter::BudgetCheckpoints);
                reg.add(Counter::FillU, chunk.u_idx.len() as u64);
            }
            *slots[t].lock() = Some(chunk);
            scratch_pool.lock().push(scratch);
            columns_done.fetch_add(filled_here, Ordering::Relaxed);
        },
        &exec_config,
        &budget,
    );
    if let (Some(o), Some(trace)) = (obs, report.trace.take()) {
        for e in &trace.events {
            if let EventKind::Task { tid } = e.kind {
                o.trace().record_rel(
                    Track::Front(e.worker),
                    format!("fill {:?}", ranges[tid]),
                    e.start_ns / 1_000,
                    (e.end_ns - e.start_ns) / 1_000,
                );
            }
        }
    }
    if let Some(p) = report.panic.take() {
        return Err(LuError::WorkerPanic {
            worker: p.worker,
            task: format!("SymbolicFill({:?})", ranges[p.task]),
        });
    }
    if let Some(interrupt) = report.interrupt.take() {
        return Err(map_interrupt(
            interrupt,
            columns_done.load(Ordering::Relaxed),
        ));
    }
    let chunks: Vec<FillChunk> = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("uninterrupted run completed every chunk")
        })
        .collect();
    let filled = {
        let _s = obs.map(|o| o.trace().span(Track::Driver, "fill_assembly"));
        assemble_filled_threads(&skel, &chunks, threads)?
    };
    if let Some(reg) = metrics {
        reg.add(Counter::FillL, filled.l.nnz() as u64);
    }
    Ok((filled, skel.parents().to_vec()))
}

/// Parallel postorder: the forest's trees are disjoint, so each root's
/// postorder segment is computed as an independent task and the segments
/// are stitched in ascending root order — exactly the order
/// [`EliminationForest::postorder`] visits them, so the permutation is
/// identical to the sequential one for every thread count.
pub fn postorder_parallel(forest: &EliminationForest, nthreads: usize) -> Permutation {
    postorder_parallel_obs(forest, nthreads, None)
}

/// [`postorder_parallel`] under an observability session: each root's
/// segment task is recorded as a `postorder root r` span on its
/// front-thread track. `None` is exactly the unobserved path.
pub fn postorder_parallel_obs(
    forest: &EliminationForest,
    nthreads: usize,
    obs: Option<&ObsSession>,
) -> Permutation {
    let roots = forest.roots();
    if nthreads <= 1 || roots.len() <= 1 {
        return forest.postorder();
    }
    let slots: Vec<Mutex<Vec<usize>>> = roots.iter().map(|_| Mutex::new(Vec::new())).collect();
    let pred_counts = vec![0usize; roots.len()];
    let exec_config = match obs {
        Some(o) => o.executor_trace_config(roots.len(), nthreads),
        None => TraceConfig::off(),
    };
    let mut report = execute_dag_report(
        roots.len(),
        &pred_counts,
        |_| &[][..],
        nthreads,
        1,
        |_| 0,
        |t| {
            *slots[t].lock() = forest.postorder_segment(roots[t]);
        },
        &exec_config,
    );
    if let (Some(o), Some(trace)) = (obs, report.trace.take()) {
        for e in &trace.events {
            if let EventKind::Task { tid } = e.kind {
                o.trace().record_rel(
                    Track::Front(e.worker),
                    format!("postorder root {}", roots[tid]),
                    e.start_ns / 1_000,
                    (e.end_ns - e.start_ns) / 1_000,
                );
            }
        }
    }
    let mut order = Vec::with_capacity(forest.n());
    for s in slots {
        order.extend(s.into_inner());
    }
    Permutation::from_vec(order).expect("stitched segments visit every node once")
}
