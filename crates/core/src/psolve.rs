//! Parallel triangular solves, scheduled by the block eforest.
//!
//! The forward (`L̄`) solve parallelizes bottom-up over the forest: a block
//! column only reads right-hand-side rows written by its descendants (row
//! branches are paths, so sibling subtrees touch **element-disjoint** rows),
//! making child→parent the complete dependence relation. The backward
//! (`Ū`) solve runs the reverse direction, with one dependence per
//! structurally nonzero `Ū` block.
//!
//! The right-hand side is sharded into per-block-row segments behind cheap
//! mutexes; since concurrent writers are element-disjoint, lock contention
//! is the only cost and the result is **bit-identical** to the sequential
//! solve (asserted by the tests).

use crate::blocks::BlockMatrix;
use parking_lot::Mutex;
use splu_sched::execute_dag;
use splu_symbolic::supernode::BlockStructure;

/// Right-hand side sharded by block row.
struct Shards {
    segs: Vec<Mutex<Vec<f64>>>,
}

impl Shards {
    fn scatter(b: &[f64], bs: &BlockStructure) -> Self {
        let part = &bs.partition;
        let segs = (0..part.num_blocks())
            .map(|k| Mutex::new(b[part.range(k)].to_vec()))
            .collect();
        Shards { segs }
    }

    fn gather(self, b: &mut [f64], bs: &BlockStructure) {
        let part = &bs.partition;
        for (k, seg) in self.segs.into_iter().enumerate() {
            b[part.range(k)].copy_from_slice(&seg.into_inner());
        }
    }
}

/// Parallel version of [`crate::solve_permuted`]: solves `Ā x = b` in
/// factorization order using `nthreads` workers. Overwrites `b`.
pub fn solve_permuted_parallel(
    bm: &BlockMatrix,
    bs: &BlockStructure,
    b: &mut [f64],
    nthreads: usize,
) {
    assert_eq!(b.len(), bm.n(), "rhs length mismatch");
    let nb = bm.num_block_cols();
    if nb == 0 {
        return;
    }
    let part = &bs.partition;

    // ---- Forward sweep, bottom-up over the block eforest. -------------
    // Dependences: child → parent, derived from each column's first
    // off-diagonal Ū entry exactly like the forest builder.
    let forest = splu_sched::block_forest(bs);
    let mut fwd_succ: Vec<Vec<usize>> = vec![Vec::new(); nb];
    let mut fwd_pred = vec![0usize; nb];
    for k in 0..nb {
        if let Some(p) = forest.parent(k) {
            fwd_succ[k].push(p);
            fwd_pred[p] += 1;
        }
    }
    let shards = Shards::scatter(b, bs);
    execute_dag(
        nb,
        &fwd_pred,
        |t| &fwd_succ[t],
        nthreads.max(1),
        1,
        |_| 0,
        |k| {
            let stack = bm.stack(k);
            let col = bm.column(k).read();
            let piv = col
                .pivots
                .as_ref()
                .expect("solve requires a completed factorization");
            // Apply interchanges. Swapped rows live in this column's stack
            // (its own block row + ancestors) — disjoint from concurrent
            // sibling work, but possibly in shared segments: lock per swap.
            for (c, &p) in piv.swaps().iter().enumerate() {
                if c == p {
                    continue;
                }
                let (ib1, r1) = stack.locate(c);
                let (ib2, r2) = stack.locate(p);
                if ib1 == ib2 {
                    let mut seg = shards.segs[ib1].lock();
                    seg.swap(r1, r2);
                } else {
                    // Ordered acquisition avoids deadlock.
                    let (lo, hi) = if ib1 < ib2 { (ib1, ib2) } else { (ib2, ib1) };
                    let mut s_lo = shards.segs[lo].lock();
                    let mut s_hi = shards.segs[hi].lock();
                    let (rlo, rhi) = if ib1 < ib2 { (r1, r2) } else { (r2, r1) };
                    std::mem::swap(&mut s_lo[rlo], &mut s_hi[rhi]);
                }
            }
            // Unit-lower solve on the diagonal block.
            let diag = col.block(k).expect("diagonal block exists");
            let w = diag.ncols();
            let mut yk = {
                let seg = shards.segs[k].lock();
                seg.clone()
            };
            for c in 0..w {
                let s = yk[c];
                if s != 0.0 {
                    let dcol = diag.col(c);
                    for r in c + 1..w {
                        yk[r] -= dcol[r] * s;
                    }
                }
            }
            {
                let mut seg = shards.segs[k].lock();
                seg.copy_from_slice(&yk);
            }
            // Eliminate the sub-diagonal blocks.
            for &ib in &stack.l_rows[1..] {
                let blk = col.block(ib).expect("L block exists");
                let mut seg = shards.segs[ib].lock();
                for c in 0..w {
                    let s = yk[c];
                    if s != 0.0 {
                        let bcol = blk.col(c);
                        for (r, &v) in bcol.iter().enumerate() {
                            seg[r] -= v * s;
                        }
                    }
                }
            }
        },
    );

    // ---- Backward sweep. ------------------------------------------------
    // Unlike the forward direction, several sources update the *same*
    // element of a destination segment (a Ū row is not a path), so
    // unordered concurrency would make the floating-point sums
    // schedule-dependent. We therefore chain, per destination segment, all
    // its source columns in descending order — exactly the sequential
    // sweep's order — keeping the result bit-identical while still running
    // independent destinations in parallel.
    let mut bwd_succ: Vec<Vec<usize>> = vec![Vec::new(); nb];
    let mut bwd_pred = vec![0usize; nb];
    {
        // Sources per destination block row, ascending; chain descending.
        let mut sources: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for j in 0..nb {
            let col = bm.column(j).read();
            for &ib in col.block_rows.iter().take_while(|&&ib| ib < j) {
                sources[ib].push(j);
            }
        }
        for (ib, srcs) in sources.iter().enumerate() {
            // srcs is ascending; iterate descending.
            let mut prev: Option<usize> = None;
            for &j in srcs.iter().rev() {
                if let Some(p) = prev {
                    bwd_succ[p].push(j);
                    bwd_pred[j] += 1;
                }
                prev = Some(j);
            }
            if let Some(last) = prev {
                bwd_succ[last].push(ib);
                bwd_pred[ib] += 1;
            }
        }
    }
    execute_dag(
        nb,
        &bwd_pred,
        |t| &bwd_succ[t],
        nthreads.max(1),
        1,
        |_| 0,
        |k| {
            let col = bm.column(k).read();
            let diag = col.block(k).expect("diagonal block exists");
            let w = diag.ncols();
            let mut xk = {
                let seg = shards.segs[k].lock();
                seg.clone()
            };
            for c in (0..w).rev() {
                let dcol = diag.col(c);
                xk[c] /= dcol[c];
                let s = xk[c];
                if s != 0.0 {
                    for r in 0..c {
                        xk[r] -= dcol[r] * s;
                    }
                }
            }
            {
                let mut seg = shards.segs[k].lock();
                seg.copy_from_slice(&xk);
            }
            for (pos, &ib) in col.block_rows.iter().enumerate() {
                if ib >= k {
                    break;
                }
                let blk = &col.ublocks[pos];
                let mut seg = shards.segs[ib].lock();
                for c in 0..w {
                    let s = xk[c];
                    if s != 0.0 {
                        let bcol = blk.col(c);
                        for (r, &v) in bcol.iter().enumerate() {
                            seg[r] -= v * s;
                        }
                    }
                }
            }
        },
    );

    shards.gather(b, bs);
    let _ = part;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{factor_numeric_with, NumericRequest};
    use crate::solve::solve_permuted;
    use splu_sched::{build_eforest_graph, Mapping};
    use splu_sparse::CscMatrix;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::{supernode_partition, BlockStructure};

    fn factored(a: &CscMatrix) -> (BlockMatrix, BlockStructure) {
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let bm = BlockMatrix::assemble(a, &bs);
        let graph = build_eforest_graph(&bs);
        factor_numeric_with(&bm, &NumericRequest::coarse(&graph, Mapping::Static1D)).unwrap();
        (bm, bs)
    }

    #[test]
    fn parallel_solve_is_bit_identical_to_sequential() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        for n in [10usize, 35, 80] {
            let mut trips: Vec<(usize, usize, f64)> = (0..n)
                .map(|i| (i, i, 3.0 + rng.gen_range(0.0..1.0)))
                .collect();
            for _ in 0..4 * n {
                trips.push((
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(-1.0..1.0),
                ));
            }
            let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
            let (bm, bs) = factored(&a);
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin()).collect();
            let mut x_seq = b.clone();
            solve_permuted(&bm, &bs, &mut x_seq);
            for threads in [1usize, 2, 4] {
                let mut x_par = b.clone();
                solve_permuted_parallel(&bm, &bs, &mut x_par, threads);
                assert_eq!(x_par, x_seq, "n={n}, threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_solve_with_pivoting_swaps() {
        // Tiny diagonal → interchanges cross block boundaries in the solve.
        let n = 40;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let mut trips: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1e-10)).collect();
        for _ in 0..5 * n {
            trips.push((
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(-2.0..2.0),
            ));
        }
        let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let (bm, bs) = factored(&a);
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut x_seq = b.clone();
        solve_permuted(&bm, &bs, &mut x_seq);
        let mut x_par = b.clone();
        solve_permuted_parallel(&bm, &bs, &mut x_par, 4);
        assert_eq!(x_par, x_seq);
    }
}
