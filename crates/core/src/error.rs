//! Error type for the factorization driver.

use splu_sparse::SparseError;
use splu_symbolic::SymbolicError;

/// Errors from analysis or numerical factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// The matrix is structurally singular: no full transversal exists.
    StructurallySingular {
        /// Size of the maximum matching found.
        rank: usize,
    },
    /// Numerical breakdown: no acceptable pivot in this (post-ordering)
    /// column despite a structurally full rank.
    NumericallySingular {
        /// Global column index (in factorization order) of the breakdown.
        column: usize,
    },
    /// Propagated symbolic-phase error.
    Symbolic(SymbolicError),
    /// Propagated substrate error.
    Sparse(SparseError),
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::NotSquare { nrows, ncols } => {
                write!(f, "matrix is {nrows}x{ncols}, LU needs a square matrix")
            }
            LuError::StructurallySingular { rank } => {
                write!(
                    f,
                    "structurally singular: maximum transversal has size {rank}"
                )
            }
            LuError::NumericallySingular { column } => {
                write!(f, "numerically singular at factorization column {column}")
            }
            LuError::Symbolic(e) => write!(f, "symbolic phase: {e}"),
            LuError::Sparse(e) => write!(f, "sparse substrate: {e}"),
        }
    }
}

impl std::error::Error for LuError {}

impl From<SymbolicError> for LuError {
    fn from(e: SymbolicError) -> Self {
        LuError::Symbolic(e)
    }
}

impl From<SparseError> for LuError {
    fn from(e: SparseError) -> Self {
        LuError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_relevant_index() {
        assert!(LuError::NumericallySingular { column: 7 }
            .to_string()
            .contains('7'));
        assert!(LuError::StructurallySingular { rank: 3 }
            .to_string()
            .contains('3'));
        assert!(LuError::NotSquare { nrows: 2, ncols: 5 }
            .to_string()
            .contains("2x5"));
    }
}
