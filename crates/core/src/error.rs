//! Error type for the factorization driver.

use splu_sparse::SparseError;
use splu_symbolic::SymbolicError;

/// Errors from analysis or numerical factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// The matrix is structurally singular: no full transversal exists.
    StructurallySingular {
        /// Size of the maximum matching found.
        rank: usize,
    },
    /// Numerical breakdown: no acceptable pivot in this (post-ordering)
    /// column despite a structurally full rank.
    NumericallySingular {
        /// Global column index (in factorization order) of the breakdown.
        column: usize,
    },
    /// A NaN or infinity in the input matrix values, detected before the
    /// factorization starts.
    NonFiniteInput {
        /// Original (pre-permutation) column index of the offending entry.
        column: usize,
    },
    /// A NaN or infinity surfaced in a pivot region during the
    /// factorization (overflow-scale element growth).
    NonFinitePivot {
        /// Global column index (in factorization order) where it appeared.
        column: usize,
    },
    /// A worker thread panicked during the parallel factorization. The
    /// executors contain the panic (no unwind, no hang, no poisoned state)
    /// and the driver reports it as this structured error.
    WorkerPanic {
        /// Index of the worker thread that panicked.
        worker: usize,
        /// Human-readable description of the task that panicked.
        task: String,
    },
    /// The run's [`CancelToken`](splu_sched::CancelToken) was cancelled
    /// (caller request or Ctrl-C). The factorization drained cleanly; the
    /// fields record how far it got.
    Cancelled {
        /// Block columns fully factored before the cancellation landed.
        columns_done: usize,
        /// Scheduler tasks not yet retired when the interrupt tripped.
        tasks_pending: usize,
    },
    /// The run's deadline ([`RunBudget::deadline`](splu_sched::RunBudget))
    /// passed. Checked at task boundaries, so detection latency is bounded
    /// by the longest single task.
    DeadlineExceeded {
        /// Block columns fully factored before the deadline fired.
        columns_done: usize,
        /// Scheduler tasks not yet retired when the interrupt tripped.
        tasks_pending: usize,
    },
    /// The liveness watchdog observed no scheduler progress for a full
    /// stall window and aborted the run.
    Stalled {
        /// Block columns fully factored before the stall was declared.
        columns_done: usize,
        /// The watchdog's diagnosis: per-worker states, last tasks,
        /// heartbeat epochs, and ready-queue depths.
        report: splu_sched::StallReport,
    },
    /// A right-hand side (or solution block) whose length does not match
    /// the factored matrix order. The fallible `try_solve*` entry points
    /// return this where the panicking `solve*` forms assert.
    DimensionMismatch {
        /// Length the operation required.
        expected: usize,
        /// Length the caller supplied.
        got: usize,
    },
    /// Values handed to a session `factor`/`refactor` whose sparsity
    /// pattern differs from the one the session was analyzed for (the
    /// pattern hashes disagree). Re-analyze to factor the new pattern.
    PatternMismatch {
        /// Pattern hash the session was built from.
        expected: u64,
        /// Hash of the pattern the values came with.
        got: u64,
    },
    /// A solve (or refactorization) was requested on a session that holds
    /// no factors yet: call `factor` first.
    NotFactored,
    /// The named session was evicted from a session pool under its memory
    /// budget (LRU order, idle sessions only). The symbolic analysis and
    /// factors are gone; re-run `analyze` to rebuild them. The field
    /// records how many resident bytes the eviction reclaimed.
    SessionEvicted {
        /// Resident bytes the session held when it was evicted.
        resident_bytes: u64,
    },
    /// An [`Options`](crate::Options) builder rejected an invalid
    /// combination at `build()` time.
    InvalidOptions {
        /// What was wrong.
        message: String,
    },
    /// Propagated symbolic-phase error.
    Symbolic(SymbolicError),
    /// Propagated substrate error.
    Sparse(SparseError),
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::NotSquare { nrows, ncols } => {
                write!(f, "matrix is {nrows}x{ncols}, LU needs a square matrix")
            }
            LuError::StructurallySingular { rank } => {
                write!(
                    f,
                    "structurally singular: maximum transversal has size {rank}"
                )
            }
            LuError::NumericallySingular { column } => {
                write!(f, "numerically singular at factorization column {column}")
            }
            LuError::NonFiniteInput { column } => {
                write!(f, "non-finite value (NaN/Inf) in input column {column}")
            }
            LuError::NonFinitePivot { column } => {
                write!(
                    f,
                    "non-finite pivot region at factorization column {column}"
                )
            }
            LuError::WorkerPanic { worker, task } => {
                write!(f, "worker {worker} panicked in task {task}")
            }
            LuError::Cancelled {
                columns_done,
                tasks_pending,
            } => {
                write!(
                    f,
                    "factorization cancelled: {columns_done} column(s) done, \
                     {tasks_pending} task(s) pending"
                )
            }
            LuError::DeadlineExceeded {
                columns_done,
                tasks_pending,
            } => {
                write!(
                    f,
                    "factorization deadline exceeded: {columns_done} column(s) done, \
                     {tasks_pending} task(s) pending"
                )
            }
            LuError::Stalled {
                columns_done,
                report,
            } => {
                write!(
                    f,
                    "factorization stalled after {columns_done} column(s): {report}"
                )
            }
            LuError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: expected a vector of length {expected}, got {got}"
                )
            }
            LuError::PatternMismatch { expected, got } => {
                write!(
                    f,
                    "sparsity pattern mismatch: session analyzed hash {expected:#018x}, \
                     values carry hash {got:#018x} (re-analyze for a new pattern)"
                )
            }
            LuError::NotFactored => {
                write!(f, "session holds no factors yet: call factor() first")
            }
            LuError::SessionEvicted { resident_bytes } => {
                write!(
                    f,
                    "session was evicted under the memory budget \
                     ({resident_bytes} resident bytes reclaimed); re-analyze to continue"
                )
            }
            LuError::InvalidOptions { message } => {
                write!(f, "invalid options: {message}")
            }
            LuError::Symbolic(e) => write!(f, "symbolic phase: {e}"),
            LuError::Sparse(e) => write!(f, "sparse substrate: {e}"),
        }
    }
}

impl std::error::Error for LuError {}

impl From<SymbolicError> for LuError {
    fn from(e: SymbolicError) -> Self {
        LuError::Symbolic(e)
    }
}

impl From<SparseError> for LuError {
    fn from(e: SparseError) -> Self {
        LuError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_relevant_index() {
        assert!(LuError::NumericallySingular { column: 7 }
            .to_string()
            .contains('7'));
        assert!(LuError::StructurallySingular { rank: 3 }
            .to_string()
            .contains('3'));
        assert!(LuError::NotSquare { nrows: 2, ncols: 5 }
            .to_string()
            .contains("2x5"));
        assert!(LuError::NonFiniteInput { column: 4 }
            .to_string()
            .contains('4'));
        assert!(LuError::NonFinitePivot { column: 9 }
            .to_string()
            .contains('9'));
        let wp = LuError::WorkerPanic {
            worker: 2,
            task: "Factor(5)".into(),
        };
        assert!(wp.to_string().contains("worker 2"));
        assert!(wp.to_string().contains("Factor(5)"));
    }

    #[test]
    fn interrupt_errors_report_progress() {
        let c = LuError::Cancelled {
            columns_done: 11,
            tasks_pending: 4,
        };
        assert!(c.to_string().contains("11 column(s)"));
        assert!(c.to_string().contains("4 task(s)"));
        let d = LuError::DeadlineExceeded {
            columns_done: 0,
            tasks_pending: 9,
        };
        assert!(d.to_string().contains("deadline"));
        assert!(d.to_string().contains("9 task(s)"));
        let s = LuError::Stalled {
            columns_done: 3,
            report: splu_sched::StallReport {
                stalled_for: std::time::Duration::from_millis(120),
                tasks_pending: 2,
                workers: vec![],
                queue_depths: vec![1],
            },
        };
        assert!(s.to_string().contains("stalled after 3 column(s)"));
        assert!(s.to_string().contains("120 ms"));
        // Structured comparison works (the variants are Eq).
        assert_eq!(c.clone(), c);
        assert_ne!(c, d);
    }

    #[test]
    fn session_errors_render_their_context() {
        let d = LuError::DimensionMismatch {
            expected: 100,
            got: 99,
        };
        assert!(d.to_string().contains("100"));
        assert!(d.to_string().contains("99"));
        let p = LuError::PatternMismatch {
            expected: 0xabcd,
            got: 0x1234,
        };
        assert!(p.to_string().contains("0x000000000000abcd"));
        assert!(p.to_string().contains("0x0000000000001234"));
        assert!(LuError::NotFactored.to_string().contains("factor()"));
        let e = LuError::SessionEvicted {
            resident_bytes: 4096,
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("re-analyze"));
        let i = LuError::InvalidOptions {
            message: "threads must be positive".into(),
        };
        assert!(i.to_string().contains("threads must be positive"));
    }
}
