//! Pipeline-wide observability: one [`ObsSession`] observes a whole run —
//! analysis, numeric factorization, solve — and yields the two artifacts
//! the tooling consumes:
//!
//! * a **combined Chrome trace** ([`ObsSession::chrome_json`]): driver
//!   phase spans (transversal, ordering rounds, symbolic skeleton,
//!   postorder, partition, graph build, solve), per-front-thread fill and
//!   postorder tracks, and the numeric executor's per-worker task events —
//!   all on one epoch fixed when the session was created;
//! * a **machine-readable [`RunReport`]** ([`ObsSession::report`]):
//!   versions, resolved options and kernel, per-phase wall times, every
//!   counter ([`splu_obs::Counter`] plus the scheduler's
//!   [`SchedStats::counters`]), [`FactorHealth`], heap high-water marks
//!   (when the counting allocator is installed), and the exit status —
//!   schema `parsplu-run-report/1`, validated by
//!   `splu_bench::json::validate_run_report`.
//!
//! The unobserved paths (`SymbolicRequest.obs == None`,
//! `NumericRequest.metrics == None`, `TraceConfig::off()`) never read the
//! clock and never count, so the bitwise-invariance guarantees of the
//! front half and the executors are untouched.

use crate::{LuError, Options, SparseLu, Stats};
use parking_lot::Mutex;
use splu_obs::{heap_stats, reset_heap_peak, HeapStats, MetricsRegistry, PipelineTrace, Track};
use splu_obs::{SpanEvent, SpanGuard};
use splu_sched::{EventKind, ExecTrace, FactorHealth, SchedStats, TraceConfig};
use std::fmt::Write as _;
use std::sync::Arc;

/// Canonical pipeline phase names, in pipeline order — the driver spans
/// that [`RunReport::phases_s`] aggregates. Matches
/// `splu_bench::json::PHASE_NAMES`.
pub const PHASE_NAMES: [&str; 9] = [
    "parse",
    "scale_transversal",
    "ordering",
    "symbolic_fill",
    "eforest_postorder",
    "supernode_partition",
    "graph_build",
    "numeric",
    "solve",
];

/// Everything the run deposits into the session as it executes.
#[derive(Debug, Default)]
struct Captured {
    /// Numeric executor aggregate (filled by `SparseLu::factor_observed`).
    sched: Option<SchedStats>,
    /// Numeric executor event stream (full-event sessions only).
    numeric_trace: Option<ExecTrace>,
    /// Display label per numeric task id, for the Chrome export.
    numeric_labels: Vec<String>,
    /// Numeric health report.
    health: Option<FactorHealth>,
    /// Per-phase heap high-water bytes (counting allocator installed only).
    heap_phases: Vec<(&'static str, u64)>,
}

/// One observed run. Cheap to clone (shared handles); create with
/// [`ObsSession::new`] (report-grade: phase spans + counters) or
/// [`ObsSession::with_events`] (additionally collects full executor event
/// streams for the combined Chrome trace).
#[derive(Debug, Clone)]
pub struct ObsSession {
    trace: PipelineTrace,
    metrics: Arc<MetricsRegistry>,
    collect_events: bool,
    captured: Arc<Mutex<Captured>>,
}

impl PartialEq for ObsSession {
    /// Handle identity, so request structs carrying a session keep their
    /// `PartialEq` derives.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.captured, &other.captured)
    }
}

impl Default for ObsSession {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsSession {
    /// A report-grade session: driver phase spans and counters, no
    /// per-task executor event streams.
    pub fn new() -> Self {
        ObsSession {
            trace: PipelineTrace::enabled(),
            metrics: Arc::new(MetricsRegistry::new()),
            collect_events: false,
            captured: Arc::new(Mutex::new(Captured::default())),
        }
    }

    /// A full session: like [`ObsSession::new`] plus per-task event
    /// streams from the fill, postorder, and numeric executors — the
    /// combined Chrome trace input.
    pub fn with_events() -> Self {
        ObsSession {
            collect_events: true,
            ..Self::new()
        }
    }

    /// The epoch-aligned span recorder for the pipeline phases.
    pub fn trace(&self) -> &PipelineTrace {
        &self.trace
    }

    /// The shared counters registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Whether executors should record full per-task event streams.
    pub fn collect_events(&self) -> bool {
        self.collect_events
    }

    /// The executor trace configuration this session implies: full
    /// recording on the shared epoch for event sessions, counters only
    /// otherwise.
    pub fn executor_trace_config(&self, n_tasks: usize, nthreads: usize) -> TraceConfig {
        let config = if self.collect_events {
            TraceConfig::full(n_tasks, nthreads)
        } else {
            TraceConfig::counters()
        };
        match self.trace.epoch() {
            Some(epoch) => config.with_epoch(epoch),
            None => config,
        }
    }

    /// Opens a driver-track phase span that also attributes the heap
    /// high-water mark to the phase (when the counting allocator is
    /// installed). Phases are sequential on the driver, so resetting the
    /// peak at each phase start yields per-phase peaks.
    pub fn phase(&self, name: &'static str) -> PhaseGuard<'_> {
        reset_heap_peak();
        PhaseGuard {
            session: self,
            name,
            span: Some(self.trace.span(Track::Driver, name)),
        }
    }

    /// Deposits the numeric executor's results: aggregate stats, health,
    /// and (in event sessions) the event stream with display labels.
    pub fn capture_numeric(
        &self,
        stats: SchedStats,
        health: FactorHealth,
        numeric_trace: Option<ExecTrace>,
        labels: Vec<String>,
    ) {
        let mut cap = self.captured.lock();
        cap.sched = Some(stats);
        cap.health = Some(health);
        cap.numeric_trace = numeric_trace;
        cap.numeric_labels = labels;
    }

    /// Renders everything the session observed as one Chrome `trace_event`
    /// JSON document: pid 0 carries the driver and front-thread tracks
    /// (phase spans, fill chunks, postorder segments), pid 1 the numeric
    /// executor's workers — all sharing the session epoch.
    pub fn chrome_json(&self) -> String {
        let events = self.trace.events();
        let cap = self.captured.lock();
        let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let _ = writeln!(
            out,
            "  {{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 0, \"tid\": 0, \
             \"args\": {{\"name\": \"pipeline\"}}}},"
        );
        let mut tracks: Vec<Track> = events.iter().map(|e| e.track).collect();
        tracks.sort_by_key(|t| t.tid());
        tracks.dedup();
        for t in &tracks {
            let _ = writeln!(
                out,
                "  {{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 0, \"tid\": {}, \
                 \"args\": {{\"name\": \"{}\"}}}},",
                t.tid(),
                escape_json(&t.label()),
            );
        }
        let numeric = cap.numeric_trace.as_ref();
        if let Some(nt) = numeric {
            let _ = writeln!(
                out,
                "  {{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, \
                 \"args\": {{\"name\": \"numeric executor\"}}}},"
            );
            for w in 0..nt.nthreads {
                let _ = writeln!(
                    out,
                    "  {{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {w}, \
                     \"args\": {{\"name\": \"worker {w}\"}}}},"
                );
            }
        }
        let n_span = events.len();
        let n_num = numeric.map_or(0, |t| t.events.len());
        for (i, e) in events.iter().enumerate() {
            let sep = if i + 1 == n_span && n_num == 0 {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "  {{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"phase\", \"pid\": 0, \
                 \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{}}}}{sep}",
                escape_json(&e.name),
                e.track.tid(),
                e.start_us,
                e.dur_us,
            );
        }
        if let Some(nt) = numeric {
            for (i, e) in nt.events.iter().enumerate() {
                let (name, cat) = match e.kind {
                    EventKind::Task { tid } => (
                        cap.numeric_labels
                            .get(tid)
                            .cloned()
                            .unwrap_or_else(|| format!("task {tid}")),
                        "task",
                    ),
                    EventKind::Steal { victim, success } => (
                        if success {
                            format!("steal<-{victim}")
                        } else {
                            "steal-miss".to_string()
                        },
                        "steal",
                    ),
                    EventKind::Park => ("idle".to_string(), "idle"),
                };
                let sep = if i + 1 == n_num { "" } else { "," };
                let _ = writeln!(
                    out,
                    "  {{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"{cat}\", \"pid\": 1, \
                     \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{}}}}{sep}",
                    escape_json(&name),
                    e.worker,
                    e.start_ns as f64 / 1e3,
                    (e.end_ns - e.start_ns) as f64 / 1e3,
                );
            }
        }
        out.push_str("]}\n");
        out
    }

    /// Per-phase wall seconds, aggregated from the driver spans whose
    /// names are canonical [`PHASE_NAMES`] (several spans of one name sum;
    /// phases that never ran are omitted), in pipeline order.
    pub fn phase_walls(&self) -> Vec<(&'static str, f64)> {
        let events = self.trace.events();
        PHASE_NAMES
            .iter()
            .filter_map(|&name| {
                let total_us: u64 = events
                    .iter()
                    .filter(|e| e.track == Track::Driver && e.name == name)
                    .map(|e| e.dur_us)
                    .sum();
                let seen = events
                    .iter()
                    .any(|e| e.track == Track::Driver && e.name == name);
                seen.then_some((name, total_us as f64 / 1e6))
            })
            .collect()
    }

    /// All span events recorded so far (tests and diagnostics).
    pub fn span_events(&self) -> Vec<SpanEvent> {
        self.trace.events()
    }

    /// Assembles the machine-readable [`RunReport`] from everything the
    /// session observed. `matrix` names the input; `opts` are the resolved
    /// driver options; `status` is the run's outcome
    /// ([`RunStatus::success`] / [`RunStatus::from_error`]).
    pub fn report(&self, matrix: MatrixMeta, opts: &Options, status: RunStatus) -> RunReport {
        let cap = self.captured.lock();
        let mut counters: Vec<(String, u64)> = self
            .metrics
            .snapshot()
            .iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect();
        if let Some(sched) = &cap.sched {
            counters.extend(
                sched
                    .counters()
                    .into_iter()
                    .map(|(n, v)| (n.to_string(), v)),
            );
        }
        RunReport {
            schema: REPORT_SCHEMA,
            package_version: env!("CARGO_PKG_VERSION"),
            matrix,
            options: opts.clone(),
            kernel: cap.sched.as_ref().map(|s| s.kernel.to_string()),
            phases_s: self.phase_walls(),
            counters,
            sched: cap.sched.clone(),
            health: cap.health.clone(),
            heap: heap_stats(),
            heap_phases: cap.heap_phases.clone(),
            status,
        }
    }
}

/// RAII guard from [`ObsSession::phase`]: closes the driver span and
/// attributes the phase's heap high-water mark on drop.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    session: &'a ObsSession,
    name: &'static str,
    span: Option<SpanGuard>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        drop(self.span.take());
        if let Some(hs) = heap_stats() {
            self.session
                .captured
                .lock()
                .heap_phases
                .push((self.name, hs.peak_bytes));
        }
    }
}

/// The run-report schema identifier.
pub const REPORT_SCHEMA: &str = "parsplu-run-report/1";

/// Input-matrix identification for the report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatrixMeta {
    /// Display name (file stem or suite name; may be empty).
    pub name: String,
    /// Matrix order.
    pub n: usize,
    /// Nonzeros of the input.
    pub nnz: usize,
}

impl MatrixMeta {
    /// Metadata from the analysis statistics.
    pub fn from_stats(name: &str, stats: &Stats) -> Self {
        MatrixMeta {
            name: name.to_string(),
            n: stats.n,
            nnz: stats.nnz_a,
        }
    }
}

/// How the run ended, as the report records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStatus {
    /// `true` iff the run produced usable factors.
    pub ok: bool,
    /// Outcome class: `"ok"`, `"cancelled"`, `"deadline"`, `"stalled"`,
    /// `"singular"`, `"panic"`, or `"error"`.
    pub kind: String,
    /// Human-readable error rendering (`None` on success).
    pub error: Option<String>,
}

impl RunStatus {
    /// The successful outcome.
    pub fn success() -> Self {
        RunStatus {
            ok: true,
            kind: "ok".to_string(),
            error: None,
        }
    }

    /// The outcome of a failed run, classified from the error.
    pub fn from_error(e: &LuError) -> Self {
        let kind = match e {
            LuError::Cancelled { .. } => "cancelled",
            LuError::DeadlineExceeded { .. } => "deadline",
            LuError::Stalled { .. } => "stalled",
            LuError::NumericallySingular { .. } | LuError::StructurallySingular { .. } => {
                "singular"
            }
            LuError::WorkerPanic { .. } => "panic",
            _ => "error",
        };
        RunStatus {
            ok: false,
            kind: kind.to_string(),
            error: Some(e.to_string()),
        }
    }
}

/// The per-run manifest: everything a run produced, as one JSON-ready
/// struct (schema [`REPORT_SCHEMA`]). Serialize with [`RunReport::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Schema identifier (`parsplu-run-report/1`).
    pub schema: &'static str,
    /// The `splu-core` package version that produced the report.
    pub package_version: &'static str,
    /// Input-matrix identification.
    pub matrix: MatrixMeta,
    /// Resolved driver options.
    pub options: Options,
    /// Resolved dense-kernel implementation (`"portable"`, `"simd-avx2"`,
    /// …), once the numeric phase ran.
    pub kernel: Option<String>,
    /// Per-phase wall seconds in pipeline order (phases that ran only).
    pub phases_s: Vec<(&'static str, f64)>,
    /// Every counter: the [`splu_obs::Counter`] registry plus the
    /// scheduler counters, flat `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Numeric executor aggregate, once the numeric phase ran.
    pub sched: Option<SchedStats>,
    /// Numeric health (perturbed columns, growth, condition estimate).
    pub health: Option<FactorHealth>,
    /// Heap counters at report time (counting allocator installed only).
    pub heap: Option<HeapStats>,
    /// Per-phase heap high-water bytes (counting allocator installed only).
    pub heap_phases: Vec<(&'static str, u64)>,
    /// How the run ended.
    pub status: RunStatus,
}

impl RunReport {
    /// Serializes the report as schema-`parsplu-run-report/1` JSON
    /// (validated by `splu_bench::json::validate_run_report`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", self.schema);
        let _ = writeln!(
            out,
            "  \"package_version\": \"{}\",",
            escape_json(self.package_version)
        );
        let _ = writeln!(
            out,
            "  \"matrix\": {{\"name\": \"{}\", \"n\": {}, \"nnz\": {}}},",
            escape_json(&self.matrix.name),
            self.matrix.n,
            self.matrix.nnz
        );
        let o = &self.options;
        let _ = writeln!(
            out,
            "  \"options\": {{\"ordering\": \"{:?}\", \"postorder\": {}, \"amalgamation\": {}, \
             \"task_graph\": \"{:?}\", \"threads\": {}, \"front_threads\": {}, \
             \"mapping\": \"{:?}\", \"pivot_threshold\": {}, \"pivot_rule\": \"{:?}\", \
             \"equilibrate\": {}, \"kernels\": \"{:?}\", \"breakdown\": \"{:?}\"}},",
            o.ordering,
            o.postorder,
            o.amalgamation.is_some(),
            o.task_graph,
            o.threads,
            o.front_threads,
            o.mapping,
            json_f64(o.pivot_threshold),
            o.pivot_rule,
            o.equilibrate,
            o.kernels,
            o.breakdown,
        );
        match &self.kernel {
            Some(k) => {
                let _ = writeln!(out, "  \"kernel\": \"{}\",", escape_json(k));
            }
            None => {
                let _ = writeln!(out, "  \"kernel\": null,");
            }
        }
        out.push_str("  \"phases_s\": {");
        for (i, (name, t)) in self.phases_s.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{name}\": {}", json_f64(*t));
        }
        out.push_str("},\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": {v}", escape_json(name));
        }
        out.push_str("},\n");
        match &self.sched {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "  \"sched\": {{\"nthreads\": {}, \"n_tasks\": {}, \"wall_s\": {}, \
                     \"busy_s\": {}, \"idle_s\": {}, \"steal_s\": {}, \
                     \"load_imbalance\": {}, \"parallel_efficiency\": {}}},",
                    s.nthreads,
                    s.n_tasks,
                    json_f64(s.wall_s),
                    json_f64(s.busy_total()),
                    json_f64(s.idle_total()),
                    json_f64(s.steal_total()),
                    json_f64(s.load_imbalance()),
                    json_f64(s.parallel_efficiency()),
                );
            }
            None => {
                let _ = writeln!(out, "  \"sched\": null,");
            }
        }
        match &self.health {
            Some(h) => {
                let mut cols = String::new();
                for (i, c) in h.perturbed_columns.iter().enumerate() {
                    if i > 0 {
                        cols.push_str(", ");
                    }
                    let _ = write!(cols, "{c}");
                }
                let _ = writeln!(
                    out,
                    "  \"health\": {{\"perturbed_columns\": [{cols}], \
                     \"max_perturbation\": {}, \"growth\": {}, \"condest\": {}}},",
                    json_f64(h.max_perturbation),
                    json_f64(h.growth),
                    h.condest.map_or("null".to_string(), json_f64),
                );
            }
            None => {
                let _ = writeln!(out, "  \"health\": null,");
            }
        }
        match &self.heap {
            Some(hs) => {
                let _ = writeln!(
                    out,
                    "  \"heap\": {{\"current_bytes\": {}, \"peak_bytes\": {}}},",
                    hs.current_bytes, hs.peak_bytes
                );
            }
            None => {
                let _ = writeln!(out, "  \"heap\": null,");
            }
        }
        out.push_str("  \"heap_phases\": {");
        for (i, (name, v)) in self.heap_phases.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{name}\": {v}");
        }
        out.push_str("},\n");
        let _ = writeln!(
            out,
            "  \"status\": {{\"ok\": {}, \"kind\": \"{}\", \"error\": {}}}",
            self.status.ok,
            escape_json(&self.status.kind),
            self.status
                .error
                .as_ref()
                .map_or("null".to_string(), |e| format!("\"{}\"", escape_json(e))),
        );
        out.push_str("}\n");
        out
    }
}

/// Finite-JSON rendering of a float (`NaN`/`±inf` have no JSON form; they
/// degrade to `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Convenience: analyze + factor `a` under `opts` with a fresh full
/// session, returning the factorization result together with the report
/// and the session (for the Chrome trace). The one-call form of
/// [`SparseLu::factor_observed`].
pub fn factor_reported(
    a: &splu_sparse::CscMatrix,
    opts: &Options,
    name: &str,
) -> (Result<SparseLu, LuError>, RunReport, ObsSession) {
    let session = ObsSession::with_events();
    let result = SparseLu::factor_observed(a, opts, &session);
    let (matrix, status) = match &result {
        Ok(lu) => (
            MatrixMeta::from_stats(name, lu.stats()),
            RunStatus::success(),
        ),
        Err(e) => (
            MatrixMeta {
                name: name.to_string(),
                n: a.ncols(),
                nnz: a.nnz(),
            },
            RunStatus::from_error(e),
        ),
    };
    let report = session.report(matrix, opts, status);
    (result, report, session)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classification() {
        assert_eq!(RunStatus::success().kind, "ok");
        let s = RunStatus::from_error(&LuError::Cancelled {
            columns_done: 3,
            tasks_pending: 7,
        });
        assert_eq!(s.kind, "cancelled");
        assert!(!s.ok);
        assert!(s.error.is_some());
        let s = RunStatus::from_error(&LuError::StructurallySingular { rank: 2 });
        assert_eq!(s.kind, "singular");
    }

    #[test]
    fn phase_walls_aggregate_by_canonical_name() {
        let session = ObsSession::new();
        {
            let _p = session.phase("ordering");
        }
        {
            let _p = session.phase("ordering");
        }
        {
            let _p = session.phase("numeric");
        }
        // Non-canonical names are recorded as spans but not phases.
        {
            let _s = session.trace().span(Track::Driver, "assemble");
        }
        let walls = session.phase_walls();
        let names: Vec<_> = walls.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["ordering", "numeric"]);
        assert_eq!(session.span_events().len(), 4);
    }
}
