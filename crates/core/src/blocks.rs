//! Block storage of the filled matrix `Ā` under the supernode partition.
//!
//! The matrix is divided into `N × N` submatrix blocks `B̄(I, J)` by the
//! L/U supernode partition (the paper's Section 3). Each structurally
//! nonzero block is stored as a dense column-major panel; positions inside a
//! block that are outside the *scalar* static structure hold explicit zeros,
//! and stay exactly `0.0` for the whole factorization (every kernel write
//! lands inside the scalar structure — the George–Ng closure property).
//!
//! Storage is per block **column**, because the paper's 1D mapping makes the
//! block column the unit of ownership: `Factor(k)` and all `Update(·, k)`
//! write only column `k`.

use parking_lot::RwLock;
use splu_dense::{DenseMat, Pivots};
use splu_sparse::CscMatrix;
use splu_symbolic::supernode::BlockStructure;

/// All blocks of one block column, plus the pivot sequence once factored.
#[derive(Debug)]
pub struct ColumnData {
    /// Block-row ids with a structurally nonzero block in this column,
    /// ascending (strictly above-diagonal `Ū` rows first, then the diagonal
    /// and the `L̄` rows).
    pub block_rows: Vec<usize>,
    /// Dense storage parallel to `block_rows`.
    pub blocks: Vec<DenseMat>,
    /// Pivot sequence of `Factor(k)` over the stacked panel (positions are
    /// stack-local); `None` until factored.
    pub pivots: Option<Pivots>,
}

impl ColumnData {
    /// Index into `blocks` for block row `i`, if present.
    #[inline]
    pub fn find(&self, i: usize) -> Option<usize> {
        self.block_rows.binary_search(&i).ok()
    }

    /// Immutable block at block row `i`, if present.
    pub fn block(&self, i: usize) -> Option<&DenseMat> {
        self.find(i).map(|p| &self.blocks[p])
    }

    /// Mutable block at block row `i`, if present.
    pub fn block_mut(&mut self, i: usize) -> Option<&mut DenseMat> {
        self.find(i).map(move |p| &mut self.blocks[p])
    }

    /// Two distinct blocks mutably (for cross-block row swaps).
    pub fn two_blocks_mut(&mut self, p1: usize, p2: usize) -> (&mut DenseMat, &mut DenseMat) {
        assert_ne!(p1, p2);
        if p1 < p2 {
            let (a, b) = self.blocks.split_at_mut(p2);
            (&mut a[p1], &mut b[0])
        } else {
            let (a, b) = self.blocks.split_at_mut(p1);
            (&mut b[0], &mut a[p2])
        }
    }
}

/// Maps stacked-panel positions of a block column to `(block_row,
/// local_row)` pairs — fixed by the structure, shared by `Factor`, every
/// `Update` sourcing this column, and the triangular solves.
#[derive(Debug, Clone)]
pub struct StackMap {
    /// L-region block rows of this column (`l_blocks[k]`: diagonal first).
    pub l_rows: Vec<usize>,
    /// Prefix offsets: block `l_rows[t]` occupies stacked positions
    /// `offsets[t]..offsets[t + 1]`.
    pub offsets: Vec<usize>,
}

impl StackMap {
    /// Total stacked height.
    pub fn height(&self) -> usize {
        *self.offsets.last().expect("offsets nonempty")
    }

    /// Resolves a stacked position to `(block_row, local_row)`.
    pub fn locate(&self, pos: usize) -> (usize, usize) {
        debug_assert!(pos < self.height());
        let t = match self.offsets.binary_search(&pos) {
            Ok(t) => t,
            Err(t) => t - 1,
        };
        (self.l_rows[t], pos - self.offsets[t])
    }
}

/// The block matrix: per-column data behind `RwLock`s (readers: updates
/// sourcing the column; writer: the column's own factor/update tasks).
pub struct BlockMatrix {
    columns: Vec<RwLock<ColumnData>>,
    stacks: Vec<StackMap>,
    n: usize,
}

impl BlockMatrix {
    /// Assembles the block storage of `a` (already permuted into
    /// factorization order) under the given block structure.
    ///
    /// Every structurally nonzero block of `Ā` is allocated (zero-filled)
    /// and the entries of `a` scattered into place.
    pub fn assemble(a: &CscMatrix, bs: &BlockStructure) -> Self {
        let nb = bs.num_blocks();
        let part = &bs.partition;
        assert_eq!(a.ncols(), part.n(), "matrix and partition disagree");
        let block_of = part.block_of_cols();

        // Per column J: U-region block rows (I < J), from the row lists.
        let mut u_region: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for i in 0..nb {
            for &j in bs.u_blocks[i].iter().skip(1) {
                u_region[j].push(i);
            }
        }
        let mut columns = Vec::with_capacity(nb);
        let mut stacks = Vec::with_capacity(nb);
        for jb in 0..nb {
            // u_region was filled in ascending i automatically.
            let mut block_rows = u_region[jb].clone();
            block_rows.extend_from_slice(&bs.l_blocks[jb]);
            let width = part.width(jb);
            let blocks: Vec<DenseMat> = block_rows
                .iter()
                .map(|&ib| DenseMat::zeros(part.width(ib), width))
                .collect();
            columns.push(RwLock::new(ColumnData {
                block_rows,
                blocks,
                pivots: None,
            }));
            let l_rows = bs.l_blocks[jb].clone();
            let mut offsets = Vec::with_capacity(l_rows.len() + 1);
            offsets.push(0);
            let mut acc = 0usize;
            for &ib in &l_rows {
                acc += part.width(ib);
                offsets.push(acc);
            }
            stacks.push(StackMap { l_rows, offsets });
        }
        let mut bm = BlockMatrix {
            columns,
            stacks,
            n: part.n(),
        };
        // Scatter values.
        for (i, j, v) in a.triplets() {
            let (ib, jb) = (block_of[i], block_of[j]);
            let col = bm.columns[jb].get_mut();
            let pos = col
                .find(ib)
                .expect("original entry outside the filled block structure");
            let li = i - part.range(ib).start;
            let lj = j - part.range(jb).start;
            col.blocks[pos][(li, lj)] = v;
        }
        bm
    }

    /// Resets the storage to hold the values of `a` again (zero everything,
    /// rescatter, forget pivots) — for repeated factorizations with the same
    /// structure without reallocating.
    pub fn reset_from(&mut self, a: &CscMatrix, bs: &BlockStructure) {
        assert_eq!(a.ncols(), self.n, "matrix and structure disagree");
        let part = &bs.partition;
        let block_of = part.block_of_cols();
        for col in &mut self.columns {
            let col = col.get_mut();
            col.pivots = None;
            for blk in &mut col.blocks {
                blk.data_mut().fill(0.0);
            }
        }
        for (i, j, v) in a.triplets() {
            let (ib, jb) = (block_of[i], block_of[j]);
            let col = self.columns[jb].get_mut();
            let pos = col
                .find(ib)
                .expect("entry outside the filled block structure");
            let li = i - part.range(ib).start;
            let lj = j - part.range(jb).start;
            col.blocks[pos][(li, lj)] = v;
        }
    }

    /// Matrix order (scalar).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of block columns.
    pub fn num_block_cols(&self) -> usize {
        self.columns.len()
    }

    /// The lock guarding block column `j`.
    pub fn column(&self, j: usize) -> &RwLock<ColumnData> {
        &self.columns[j]
    }

    /// Exclusive access to column `j` without locking (requires `&mut`).
    pub fn column_mut(&mut self, j: usize) -> &mut ColumnData {
        self.columns[j].get_mut()
    }

    /// The stacked-panel map of block column `k`.
    pub fn stack(&self, k: usize) -> &StackMap {
        &self.stacks[k]
    }

    /// Total dense storage in f64 words (explicit zeros included).
    pub fn storage_words(&self) -> usize {
        self.columns
            .iter()
            .map(|c| {
                let c = c.read();
                c.blocks.iter().map(|b| b.nrows() * b.ncols()).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_symbolic::fixtures::fig1_matrix;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::supernode_partition;
    use splu_symbolic::Partition;

    fn fig1_setup() -> (CscMatrix, BlockStructure) {
        let a = fig1_matrix();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let part = supernode_partition(&f);
        (a, BlockStructure::new(&f, part))
    }

    #[test]
    fn assemble_places_every_entry() {
        let (a, bs) = fig1_setup();
        let bm = BlockMatrix::assemble(&a, &bs);
        let block_of = bs.partition.block_of_cols();
        for (i, j, v) in a.triplets() {
            let (ib, jb) = (block_of[i], block_of[j]);
            let col = bm.column(jb).read();
            let blk = col.block(ib).expect("block exists");
            let li = i - bs.partition.range(ib).start;
            let lj = j - bs.partition.range(jb).start;
            assert_eq!(blk[(li, lj)], v, "entry ({i},{j})");
        }
    }

    #[test]
    fn stack_map_locates_positions() {
        let (a, bs) = fig1_setup();
        let bm = BlockMatrix::assemble(&a, &bs);
        for k in 0..bm.num_block_cols() {
            let st = bm.stack(k);
            let mut pos = 0usize;
            for (t, &ib) in st.l_rows.iter().enumerate() {
                for local in 0..bs.partition.width(ib) {
                    assert_eq!(st.locate(pos), (ib, local), "column {k}, t {t}");
                    pos += 1;
                }
            }
            assert_eq!(pos, st.height());
            assert_eq!(st.l_rows[0], k, "diagonal block leads the stack");
        }
    }

    #[test]
    fn singleton_partition_gives_scalar_blocks() {
        let a = fig1_matrix();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(7));
        let bm = BlockMatrix::assemble(&a, &bs);
        assert_eq!(bm.num_block_cols(), 7);
        assert_eq!(bm.n(), 7);
        // Storage equals the filled nnz exactly for 1x1 blocks.
        assert_eq!(bm.storage_words(), f.nnz_filled());
    }

    #[test]
    fn two_blocks_mut_returns_disjoint_references() {
        let (a, bs) = fig1_setup();
        let mut bm = BlockMatrix::assemble(&a, &bs);
        for j in 0..bm.num_block_cols() {
            let col = bm.column_mut(j);
            if col.blocks.len() >= 2 {
                let (x, y) = col.two_blocks_mut(0, 1);
                let _ = (x.nrows(), y.nrows());
                let (y2, x2) = col.two_blocks_mut(1, 0);
                let _ = (x2.nrows(), y2.nrows());
                return;
            }
        }
    }
}
