//! Block storage of the filled matrix `Ā` under the supernode partition.
//!
//! The matrix is divided into `N × N` submatrix blocks `B̄(I, J)` by the
//! L/U supernode partition (the paper's Section 3). Positions inside a
//! block that are outside the *scalar* static structure hold explicit
//! zeros, and stay exactly `0.0` for the whole factorization (every kernel
//! write lands inside the scalar structure — the George–Ng closure
//! property).
//!
//! Storage is per block **column**, because the paper's 1D mapping makes the
//! block column the unit of ownership: `Factor(k)` and all `Update(·, k)`
//! write only column `k`. Within a column the layout is **panel-major**:
//!
//! * the whole L-region (diagonal block first, then the sub-diagonal `L̄`
//!   blocks in ascending block row) is ONE contiguous column-major
//!   [`DenseMat`] — exactly the stacked panel `Factor(k)` pivots over, so
//!   the panel LU runs **in place** with zero gather/scatter copies, and
//!   `Update(k, j)` reads each `L(i, k)` as a strided row range
//!   ([`MatRef`]) of the same storage;
//! * the U-region blocks (`B̄(I, J)` with `I < J`) stay individual dense
//!   matrices, since they are written one at a time by their own update.
//!
//! A debug counter ([`BlockMatrix::panel_copy_count`]) records any code
//! path that still gathers or scatters a panel; the factorization keeps it
//! at zero, which the test-suite asserts.

use parking_lot::RwLock;
use splu_dense::{DenseMat, MatMut, MatRef, Pivots};
use splu_sparse::CscMatrix;
use splu_symbolic::supernode::BlockStructure;
use std::sync::atomic::{AtomicUsize, Ordering};

/// All blocks of one block column, plus the pivot sequence once factored.
#[derive(Debug)]
pub struct ColumnData {
    /// Block-row ids with a structurally nonzero block in this column,
    /// ascending (strictly above-diagonal `Ū` rows first, then the diagonal
    /// and the `L̄` rows).
    pub block_rows: Vec<usize>,
    /// U-region storage: one dense block per `block_rows[p]` with
    /// `p < u_count()`.
    pub ublocks: Vec<DenseMat>,
    /// The L-region as one stacked column-major panel (diagonal block
    /// first); block `block_rows[u_count() + t]` occupies panel rows
    /// `l_offsets[t]..l_offsets[t + 1]`.
    pub panel: DenseMat,
    /// Prefix row offsets of the L-region blocks inside `panel`.
    pub l_offsets: Vec<usize>,
    /// Pivot sequence of `Factor(k)` over the stacked panel (positions are
    /// stack-local); `None` until factored.
    pub pivots: Option<Pivots>,
}

/// Where a block row's storage lives inside a [`ColumnData`].
enum Slot {
    /// Index into `ublocks`.
    U(usize),
    /// Index into `l_offsets` (the `t`-th L-region block).
    L(usize),
}

impl ColumnData {
    /// Index into `block_rows` for block row `i`, if present.
    #[inline]
    pub fn find(&self, i: usize) -> Option<usize> {
        self.block_rows.binary_search(&i).ok()
    }

    /// Number of U-region blocks (they lead `block_rows`).
    #[inline]
    pub fn u_count(&self) -> usize {
        self.ublocks.len()
    }

    /// Width of the block column.
    #[inline]
    pub fn width(&self) -> usize {
        self.panel.ncols()
    }

    fn slot(&self, pos: usize) -> Slot {
        if pos < self.ublocks.len() {
            Slot::U(pos)
        } else {
            Slot::L(pos - self.ublocks.len())
        }
    }

    /// Panel row range of the `t`-th L-region block.
    #[inline]
    fn l_range(&self, t: usize) -> std::ops::Range<usize> {
        self.l_offsets[t]..self.l_offsets[t + 1]
    }

    /// Immutable view of the block at block row `i`, if present — a direct
    /// borrow for U-region blocks, a strided row range of the panel for
    /// L-region blocks. Never copies.
    pub fn block(&self, i: usize) -> Option<MatRef<'_>> {
        let pos = self.find(i)?;
        Some(match self.slot(pos) {
            Slot::U(q) => self.ublocks[q].as_view(),
            Slot::L(t) => self.panel.row_range(self.l_range(t)),
        })
    }

    /// Mutable view of the block at block row `i`, if present.
    pub fn block_mut(&mut self, i: usize) -> Option<MatMut<'_>> {
        let pos = self.find(i)?;
        Some(match self.slot(pos) {
            Slot::U(q) => self.ublocks[q].as_view_mut(),
            Slot::L(t) => {
                let r = self.l_range(t);
                self.panel.row_range_mut(r)
            }
        })
    }

    /// Swaps scalar row `r1` of block row `ib1` with row `r2` of block row
    /// `ib2` across the whole column width. A side without storage here must
    /// be structurally — hence numerically — zero (debug-asserted); the swap
    /// is then a no-op.
    pub fn swap_scalar_rows(&mut self, (ib1, r1): (usize, usize), (ib2, r2): (usize, usize)) {
        let w = self.width();
        match (self.find(ib1), self.find(ib2)) {
            (Some(p1), Some(p2)) => match (self.slot(p1), self.slot(p2)) {
                (Slot::U(q1), Slot::U(q2)) if q1 == q2 => self.ublocks[q1].swap_rows(r1, r2),
                (Slot::U(q1), Slot::U(q2)) => {
                    let (lo, hi) = (q1.min(q2), q1.max(q2));
                    let (a, b) = self.ublocks.split_at_mut(hi);
                    let (first, second) = (&mut a[lo], &mut b[0]);
                    let (ra, rb) = if q1 < q2 { (r1, r2) } else { (r2, r1) };
                    for jj in 0..w {
                        std::mem::swap(&mut first[(ra, jj)], &mut second[(rb, jj)]);
                    }
                }
                (Slot::L(t1), Slot::L(t2)) => {
                    let (pr1, pr2) = (self.l_offsets[t1] + r1, self.l_offsets[t2] + r2);
                    self.panel.swap_rows(pr1, pr2);
                }
                (Slot::U(q), Slot::L(t)) => {
                    let pr = self.l_offsets[t] + r2;
                    for jj in 0..w {
                        std::mem::swap(&mut self.ublocks[q][(r1, jj)], &mut self.panel[(pr, jj)]);
                    }
                }
                (Slot::L(t), Slot::U(q)) => {
                    let pr = self.l_offsets[t] + r1;
                    for jj in 0..w {
                        std::mem::swap(&mut self.panel[(pr, jj)], &mut self.ublocks[q][(r2, jj)]);
                    }
                }
            },
            (Some(p), None) => self.debug_assert_stored_row_zero(p, r1),
            (None, Some(p)) => self.debug_assert_stored_row_zero(p, r2),
            (None, None) => {}
        }
    }

    /// The destination block at position `pos` mutably, together with the
    /// (shared) `Ū` source block at U-region position `qk` — the two
    /// operands of one Schur update `B̄(i, j) ← B̄(i, j) − L(i, k)·Ū(k, j)`.
    pub fn dst_and_u(&mut self, pos: usize, qk: usize) -> (MatMut<'_>, MatRef<'_>) {
        assert!(qk < self.ublocks.len(), "Ū block lives in the U-region");
        if pos < self.ublocks.len() {
            assert_ne!(pos, qk, "destination cannot be the Ū block itself");
            let (lo, hi) = (pos.min(qk), pos.max(qk));
            let (a, b) = self.ublocks.split_at_mut(hi);
            if pos < qk {
                (a[lo].as_view_mut(), b[0].as_view())
            } else {
                (b[0].as_view_mut(), a[lo].as_view())
            }
        } else {
            let t = pos - self.ublocks.len();
            let r = self.l_offsets[t]..self.l_offsets[t + 1];
            (self.panel.row_range_mut(r), self.ublocks[qk].as_view())
        }
    }

    /// Debug-only invariant: a row involved in an interchange whose partner
    /// has no storage in this column must itself be entirely zero here.
    fn debug_assert_stored_row_zero(&self, pos: usize, r: usize) {
        if cfg!(debug_assertions) {
            let view = match self.slot(pos) {
                Slot::U(q) => self.ublocks[q].as_view(),
                Slot::L(t) => self.panel.row_range(self.l_range(t)),
            };
            for jj in 0..view.ncols() {
                debug_assert_eq!(
                    view[(r, jj)],
                    0.0,
                    "pivot interchange would lose a nonzero at local row {r}"
                );
            }
        }
    }
}

/// Maps stacked-panel positions of a block column to `(block_row,
/// local_row)` pairs — fixed by the structure, shared by `Factor`, every
/// `Update` sourcing this column, and the triangular solves.
#[derive(Debug, Clone)]
pub struct StackMap {
    /// L-region block rows of this column (`l_blocks[k]`: diagonal first).
    pub l_rows: Vec<usize>,
    /// Prefix offsets: block `l_rows[t]` occupies stacked positions
    /// `offsets[t]..offsets[t + 1]`.
    pub offsets: Vec<usize>,
}

impl StackMap {
    /// Total stacked height.
    pub fn height(&self) -> usize {
        *self.offsets.last().expect("offsets nonempty")
    }

    /// Resolves a stacked position to `(block_row, local_row)`.
    pub fn locate(&self, pos: usize) -> (usize, usize) {
        debug_assert!(pos < self.height());
        let t = match self.offsets.binary_search(&pos) {
            Ok(t) => t,
            Err(t) => t - 1,
        };
        (self.l_rows[t], pos - self.offsets[t])
    }

    /// Index `t` of block row `ib` in the stack (`l_rows[t] == ib`), if the
    /// block row belongs to this column's L-region.
    pub fn find_row(&self, ib: usize) -> Option<usize> {
        self.l_rows.binary_search(&ib).ok()
    }
}

/// The block matrix: per-column data behind `RwLock`s (readers: updates
/// sourcing the column; writer: the column's own factor/update tasks).
pub struct BlockMatrix {
    columns: Vec<RwLock<ColumnData>>,
    stacks: Vec<StackMap>,
    n: usize,
    /// Global scalar column index of the first column of each block column —
    /// the single source callers use to map panel-local pivot columns to
    /// factorization-order column indices.
    col_starts: Vec<usize>,
    /// Panel gather/scatter copies performed since assembly — instrumenting
    /// the zero-copy claim; see [`Self::panel_copy_count`].
    panel_copies: AtomicUsize,
}

impl BlockMatrix {
    /// Assembles the block storage of `a` (already permuted into
    /// factorization order) under the given block structure.
    ///
    /// Every structurally nonzero block of `Ā` is allocated (zero-filled)
    /// and the entries of `a` scattered into place.
    pub fn assemble(a: &CscMatrix, bs: &BlockStructure) -> Self {
        let nb = bs.num_blocks();
        let part = &bs.partition;
        assert_eq!(a.ncols(), part.n(), "matrix and partition disagree");
        let block_of = part.block_of_cols();

        // Per column J: U-region block rows (I < J), from the row lists.
        let mut u_region: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for i in 0..nb {
            for &j in bs.u_blocks[i].iter().skip(1) {
                u_region[j].push(i);
            }
        }
        let mut columns = Vec::with_capacity(nb);
        let mut stacks = Vec::with_capacity(nb);
        for jb in 0..nb {
            // u_region was filled in ascending i automatically.
            let u_rows = &u_region[jb];
            let mut block_rows = u_rows.clone();
            block_rows.extend_from_slice(&bs.l_blocks[jb]);
            let width = part.width(jb);
            let ublocks: Vec<DenseMat> = u_rows
                .iter()
                .map(|&ib| DenseMat::zeros(part.width(ib), width))
                .collect();
            let l_rows = bs.l_blocks[jb].clone();
            let mut offsets = Vec::with_capacity(l_rows.len() + 1);
            offsets.push(0);
            let mut acc = 0usize;
            for &ib in &l_rows {
                acc += part.width(ib);
                offsets.push(acc);
            }
            columns.push(RwLock::new(ColumnData {
                block_rows,
                ublocks,
                panel: DenseMat::zeros(acc, width),
                l_offsets: offsets.clone(),
                pivots: None,
            }));
            stacks.push(StackMap { l_rows, offsets });
        }
        let col_starts = (0..nb).map(|jb| part.range(jb).start).collect();
        let mut bm = BlockMatrix {
            columns,
            stacks,
            n: part.n(),
            col_starts,
            panel_copies: AtomicUsize::new(0),
        };
        // Scatter values.
        for (i, j, v) in a.triplets() {
            let (ib, jb) = (block_of[i], block_of[j]);
            let li = i - part.range(ib).start;
            let lj = j - part.range(jb).start;
            let col = bm.columns[jb].get_mut();
            let mut blk = col
                .block_mut(ib)
                .expect("original entry outside the filled block structure");
            blk[(li, lj)] = v;
        }
        bm
    }

    /// Zeroes every stored value and empties the pivot sequences **in
    /// place** — every allocation (U blocks, panels, pivot swap vectors) is
    /// retained, so a rescatter + refactorization on top allocates nothing.
    /// After the reset, factored columns hold `Some` *empty* pivots rather
    /// than `None`; the factor task treats both as "not factored" and
    /// recycles the swap storage.
    pub fn reset_values(&mut self) {
        for col in &mut self.columns {
            let col = col.get_mut();
            if let Some(p) = col.pivots.as_mut() {
                p.clear();
            }
            for blk in &mut col.ublocks {
                blk.data_mut().fill(0.0);
            }
            col.panel.data_mut().fill(0.0);
        }
        self.panel_copies.store(0, Ordering::Relaxed);
    }

    /// Resets the storage to hold the values of `a` again (zero everything,
    /// rescatter, forget pivots) — for repeated factorizations with the same
    /// structure without reallocating.
    pub fn reset_from(&mut self, a: &CscMatrix, bs: &BlockStructure) {
        assert_eq!(a.ncols(), self.n, "matrix and structure disagree");
        let part = &bs.partition;
        let block_of = part.block_of_cols();
        self.reset_values();
        for (i, j, v) in a.triplets() {
            let (ib, jb) = (block_of[i], block_of[j]);
            let li = i - part.range(ib).start;
            let lj = j - part.range(jb).start;
            let col = self.columns[jb].get_mut();
            let mut blk = col
                .block_mut(ib)
                .expect("entry outside the filled block structure");
            blk[(li, lj)] = v;
        }
        self.panel_copies.store(0, Ordering::Relaxed);
    }

    /// Matrix order (scalar).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of block columns.
    pub fn num_block_cols(&self) -> usize {
        self.columns.len()
    }

    /// The lock guarding block column `j`.
    pub fn column(&self, j: usize) -> &RwLock<ColumnData> {
        &self.columns[j]
    }

    /// Exclusive access to column `j` without locking (requires `&mut`).
    pub fn column_mut(&mut self, j: usize) -> &mut ColumnData {
        self.columns[j].get_mut()
    }

    /// The stacked-panel map of block column `k`.
    pub fn stack(&self, k: usize) -> &StackMap {
        &self.stacks[k]
    }

    /// Global (factorization-order) scalar column index of the first column
    /// of block column `k` — the offset that maps a panel-local column to
    /// its global index, so every caller reports breakdown positions in the
    /// same coordinate system.
    pub fn global_col_start(&self, k: usize) -> usize {
        self.col_starts[k]
    }

    /// The matrix 1-norm `‖A‖₁` (maximum absolute column sum) of the stored
    /// values. Meaningful on the *assembled* values, before factoring — the
    /// perturbation magnitude `eps·‖A‖₁` of GESP-style static pivoting is
    /// computed from it.
    pub fn one_norm(&self) -> f64 {
        let mut norm = 0.0f64;
        for col in &self.columns {
            let col = col.read();
            for lj in 0..col.width() {
                let mut sum: f64 = col.panel.col(lj).iter().map(|x| x.abs()).sum();
                for blk in &col.ublocks {
                    sum += blk.col(lj).iter().map(|x| x.abs()).sum::<f64>();
                }
                norm = norm.max(sum);
            }
        }
        norm
    }

    /// Largest absolute stored value (`max |a_ij|` on the assembled values;
    /// `max |l/u_ij|` after factoring) — the two ends of the element-growth
    /// estimate.
    pub fn max_abs(&self) -> f64 {
        self.columns
            .iter()
            .map(|c| {
                let c = c.read();
                let u = c.ublocks.iter().fold(0.0f64, |m, b| m.max(b.max_abs()));
                u.max(c.panel.max_abs())
            })
            .fold(0.0f64, f64::max)
    }

    /// Records one panel gather or scatter copy. The panel-major layout
    /// makes `Factor(k)` pivot in place, so the factorization never calls
    /// this; any future code path that reintroduces a panel copy must, and
    /// the regression test on [`Self::panel_copy_count`] will catch it.
    pub fn record_panel_copy(&self) {
        self.panel_copies.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of panel gather/scatter copies since assembly (zero for the
    /// whole factor + solve pipeline).
    pub fn panel_copy_count(&self) -> usize {
        self.panel_copies.load(Ordering::Relaxed)
    }

    /// Total dense storage in f64 words (explicit zeros included).
    pub fn storage_words(&self) -> usize {
        self.columns
            .iter()
            .map(|c| {
                let c = c.read();
                let u: usize = c.ublocks.iter().map(|b| b.nrows() * b.ncols()).sum();
                u + c.panel.nrows() * c.panel.ncols()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_symbolic::fixtures::fig1_matrix;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::supernode_partition;
    use splu_symbolic::Partition;

    fn fig1_setup() -> (CscMatrix, BlockStructure) {
        let a = fig1_matrix();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let part = supernode_partition(&f);
        (a, BlockStructure::new(&f, part))
    }

    #[test]
    fn assemble_places_every_entry() {
        let (a, bs) = fig1_setup();
        let bm = BlockMatrix::assemble(&a, &bs);
        let block_of = bs.partition.block_of_cols();
        for (i, j, v) in a.triplets() {
            let (ib, jb) = (block_of[i], block_of[j]);
            let col = bm.column(jb).read();
            let blk = col.block(ib).expect("block exists");
            let li = i - bs.partition.range(ib).start;
            let lj = j - bs.partition.range(jb).start;
            assert_eq!(blk[(li, lj)], v, "entry ({i},{j})");
        }
    }

    #[test]
    fn stack_map_locates_positions() {
        let (a, bs) = fig1_setup();
        let bm = BlockMatrix::assemble(&a, &bs);
        for k in 0..bm.num_block_cols() {
            let st = bm.stack(k);
            let mut pos = 0usize;
            for (t, &ib) in st.l_rows.iter().enumerate() {
                assert_eq!(st.find_row(ib), Some(t));
                for local in 0..bs.partition.width(ib) {
                    assert_eq!(st.locate(pos), (ib, local), "column {k}, t {t}");
                    pos += 1;
                }
            }
            assert_eq!(pos, st.height());
            assert_eq!(st.l_rows[0], k, "diagonal block leads the stack");
        }
    }

    /// The L-region of a column is one contiguous panel whose row ranges
    /// alias the per-block views — the zero-copy invariant.
    #[test]
    fn l_blocks_alias_the_panel() {
        let (a, bs) = fig1_setup();
        let bm = BlockMatrix::assemble(&a, &bs);
        for k in 0..bm.num_block_cols() {
            let st = bm.stack(k);
            let col = bm.column(k).read();
            assert_eq!(col.panel.nrows(), st.height(), "column {k}");
            assert_eq!(col.l_offsets, st.offsets, "column {k}");
            for (t, &ib) in st.l_rows.iter().enumerate() {
                let via_block = col.block(ib).expect("L block exists");
                let via_range = col.panel.row_range(st.offsets[t]..st.offsets[t + 1]);
                assert_eq!(via_block.nrows(), via_range.nrows());
                for jj in 0..col.width() {
                    for r in 0..via_block.nrows() {
                        assert!(
                            std::ptr::eq(&via_block[(r, jj)], &via_range[(r, jj)]),
                            "block view copies instead of aliasing (col {k}, row {ib})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn singleton_partition_gives_scalar_blocks() {
        let a = fig1_matrix();
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(7));
        let bm = BlockMatrix::assemble(&a, &bs);
        assert_eq!(bm.num_block_cols(), 7);
        assert_eq!(bm.n(), 7);
        // Storage equals the filled nnz exactly for 1x1 blocks.
        assert_eq!(bm.storage_words(), f.nnz_filled());
    }

    #[test]
    fn cross_region_row_swaps_move_whole_rows() {
        let (a, bs) = fig1_setup();
        let bm = BlockMatrix::assemble(&a, &bs);
        // Find a column with both a U-region and an L-region block.
        for j in 0..bm.num_block_cols() {
            let mut col = bm.column(j).write();
            if col.u_count() == 0 {
                continue;
            }
            let ib_u = col.block_rows[0];
            let ib_l = col.block_rows[col.u_count()];
            let before_u: Vec<f64> = (0..col.width())
                .map(|jj| col.block(ib_u).unwrap()[(0, jj)])
                .collect();
            let before_l: Vec<f64> = (0..col.width())
                .map(|jj| col.block(ib_l).unwrap()[(0, jj)])
                .collect();
            col.swap_scalar_rows((ib_u, 0), (ib_l, 0));
            for jj in 0..col.width() {
                assert_eq!(col.block(ib_u).unwrap()[(0, jj)], before_l[jj]);
                assert_eq!(col.block(ib_l).unwrap()[(0, jj)], before_u[jj]);
            }
            return;
        }
        panic!("fixture has no column with both regions");
    }

    #[test]
    fn global_col_start_and_norms_match_dense_reference() {
        let (a, bs) = fig1_setup();
        let bm = BlockMatrix::assemble(&a, &bs);
        for k in 0..bm.num_block_cols() {
            assert_eq!(bm.global_col_start(k), bs.partition.range(k).start);
        }
        let n = a.ncols();
        let mut dense = vec![0.0f64; n * n];
        for (i, j, v) in a.triplets() {
            dense[j * n + i] = v;
        }
        let one = (0..n)
            .map(|j| {
                dense[j * n..(j + 1) * n]
                    .iter()
                    .map(|x| x.abs())
                    .sum::<f64>()
            })
            .fold(0.0f64, f64::max);
        let mx = dense.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert_eq!(bm.one_norm(), one);
        assert_eq!(bm.max_abs(), mx);
    }

    #[test]
    fn panel_copy_counter_starts_at_zero_and_records() {
        let (a, bs) = fig1_setup();
        let mut bm = BlockMatrix::assemble(&a, &bs);
        assert_eq!(bm.panel_copy_count(), 0);
        bm.record_panel_copy();
        assert_eq!(bm.panel_copy_count(), 1);
        bm.reset_from(&a, &bs);
        assert_eq!(bm.panel_copy_count(), 0, "reset clears the counter");
    }
}
