//! Condition estimation: the Hager–Higham 1-norm estimator.
//!
//! Estimates `‖A⁻¹‖₁` from a handful of solves with `A` and `Aᵀ` (never
//! forming the inverse), so `κ₁(A) ≈ ‖A‖₁ · estimate` comes almost for free
//! once the factorization exists — the standard LAPACK `gecon` approach.

use crate::SparseLu;

/// Estimates `‖A⁻¹‖₁` using the factorization `lu` of `A`.
///
/// Runs Hager's iteration (with Higham's refinements: convergence on a
/// repeated sign pattern and the alternating-parity fallback vector),
/// performing at most `max_iters` forward+transpose solve pairs.
///
/// The result is a **lower bound** that is almost always within a small
/// factor of the truth; multiply by `a.one_norm()` for the condition
/// estimate.
pub fn estimate_inverse_1norm(lu: &SparseLu, n: usize, max_iters: usize) -> f64 {
    assert!(n > 0, "empty matrix has no condition number");
    let mut x = vec![1.0 / n as f64; n];
    let mut best = 0.0_f64;
    let mut last_signs: Option<Vec<bool>> = None;
    for _ in 0..max_iters.max(1) {
        let y = lu.solve(&x);
        let norm: f64 = y.iter().map(|v| v.abs()).sum();
        best = best.max(norm);
        let signs: Vec<bool> = y.iter().map(|&v| v >= 0.0).collect();
        if last_signs.as_ref() == Some(&signs) {
            break;
        }
        last_signs = Some(signs.clone());
        let xi: Vec<f64> = signs.iter().map(|&s| if s { 1.0 } else { -1.0 }).collect();
        let z = lu.solve_transposed(&xi);
        // Pick the unit vector at the largest |z| component.
        let (jmax, zmax) = z
            .iter()
            .enumerate()
            .map(|(j, &v)| (j, v.abs()))
            .fold((0, -1.0), |acc, cur| if cur.1 > acc.1 { cur } else { acc });
        // Convergence test: no component exceeds zᵀx.
        let ztx: f64 = z.iter().zip(&x).map(|(a, b)| a * b).sum();
        if zmax <= ztx.abs() + 1e-300 {
            break;
        }
        x = vec![0.0; n];
        x[jmax] = 1.0;
    }
    // Higham's alternating vector guards against underestimation.
    let alt: Vec<f64> = (0..n)
        .map(|i| {
            let v = 1.0 + i as f64 / (n.max(2) - 1) as f64;
            if i % 2 == 0 {
                v
            } else {
                -v
            }
        })
        .collect();
    let y = lu.solve(&alt);
    let alt_norm: f64 = y.iter().map(|v| v.abs()).sum::<f64>() * 2.0 / (3.0 * n as f64);
    best.max(alt_norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Options, SparseLu};
    use splu_dense::{lu_full, lu_solve, DenseMat};
    use splu_sparse::CscMatrix;

    /// Exact ‖A⁻¹‖₁ by solving for every unit vector (small n only).
    fn exact_inverse_1norm(a: &CscMatrix) -> f64 {
        let n = a.ncols();
        let mut dense = DenseMat::from_fn(n, n, |i, j| a.get(i, j));
        let piv = lu_full(&mut dense).unwrap();
        let mut best = 0.0_f64;
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            lu_solve(&dense, &piv, &mut e);
            best = best.max(e.iter().map(|v| v.abs()).sum());
        }
        best
    }

    fn check(a: &CscMatrix) {
        let lu = SparseLu::factor(a, &Options::default()).unwrap();
        let est = estimate_inverse_1norm(&lu, a.ncols(), 6);
        let exact = exact_inverse_1norm(a);
        assert!(
            est <= exact * (1.0 + 1e-10),
            "estimator exceeded the exact norm: {est} > {exact}"
        );
        assert!(
            est >= exact / 10.0,
            "estimator too loose: {est} vs exact {exact}"
        );
    }

    #[test]
    fn estimates_well_conditioned_matrices() {
        let a = CscMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 4.0),
                (1, 1, 5.0),
                (2, 2, 3.0),
                (3, 3, 6.0),
                (0, 1, 1.0),
                (2, 0, -1.0),
                (3, 1, 0.5),
            ],
        )
        .unwrap();
        check(&a);
    }

    #[test]
    fn estimates_random_matrices() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for n in [3usize, 8, 15, 25] {
            let mut trips: Vec<(usize, usize, f64)> = (0..n)
                .map(|i| (i, i, 3.0 + rng.gen_range(0.0..2.0)))
                .collect();
            for _ in 0..3 * n {
                trips.push((
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(-1.0..1.0),
                ));
            }
            let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
            check(&a);
        }
    }

    #[test]
    fn detects_bad_conditioning() {
        // A nearly singular 2x2: condition ~ 1e8.
        let a = CscMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0 + 1e-8)],
        )
        .unwrap();
        let lu = SparseLu::factor(&a, &Options::default()).unwrap();
        let est = estimate_inverse_1norm(&lu, 2, 6);
        assert!(est > 1e7, "missed ill-conditioning: {est}");
    }
}
