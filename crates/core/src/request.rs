//! The unified numeric-phase entry point: a [`NumericRequest`] names every
//! parameter of one factorization — task graph, worker count and mapping,
//! pivoting, tracing, and kernel selection — and
//! [`factor_numeric_with`] is the single driver that runs it.
//!
//! Historically each parameter combination grew its own entry point
//! (`factor_with_graph`, `factor_with_graph_rule`, `…_traced`,
//! `factor_with_fine_graph`, …): six functions whose signatures drifted
//! apart — the fine-grained path, for instance, could not select a pivot
//! rule. The request struct collapsed them, their deprecated shims have
//! since been retired, and new parameters (like [`KernelChoice`] for the
//! SIMD kernel layer, or the cached [`ExecSchedule`] a solver session
//! replays) become fields with defaults instead of new functions.
//!
//! The kernel choice resolves to one [`Dispatch`] table **once per
//! factorization** (CPU feature probing included), and that table threads
//! through every `Update`/`Trsm`/`Gemm` task body — all of which preserve
//! the bitwise-equivalence contract documented on
//! [`splu_dense::gemm_sub_view`], so the factors are independent of the
//! selected kernels.

use crate::blocks::BlockMatrix;
use crate::numeric::{factor_flops, factor_task_with_policy, update_task_metered};
use crate::numeric_fine::{apply_task, gemm_task_metered, trsm_task_metered};
use crate::solve::growth_factor;
use crate::LuError;
use parking_lot::Mutex;
use splu_dense::{Dispatch, KernelChoice, PanelBreakdown, PivotRule};
use splu_obs::{Counter, MetricsRegistry};
use splu_sched::{
    execute_dag_report_budgeted, execute_seq_budgeted, execute_traced_budgeted,
    execute_traced_budgeted_with_priorities, CancelToken, ExecReport, ExecSchedule, FineGraph,
    FineTask, Interrupt, Mapping, RunBudget, Task, TaskGraph, TraceConfig,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// What the factorization does at a column whose static structure offers no
/// pivot above the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BreakdownPolicy {
    /// Stop: the driver returns [`LuError::NumericallySingular`] at the
    /// first such column (the remaining tasks drain as no-ops).
    #[default]
    Error,
    /// GESP-style static pivoting (cf. SuperLU_DIST): replace the column's
    /// diagonal by `sign(d)·eps·‖A‖₁`, complete the factorization, and
    /// report every perturbed column through
    /// [`splu_sched::FactorHealth`]. The factors are those of a nearby
    /// matrix, so callers must recover accuracy with iterative refinement
    /// ([`crate::SparseLu::solve`] does so automatically).
    Perturb {
        /// Perturbation magnitude relative to `‖A‖₁`.
        eps: f64,
    },
}

impl BreakdownPolicy {
    /// The customary perturbation magnitude `√ε ≈ 1.49e-8` (machine
    /// epsilon's square root, SuperLU_DIST's default).
    pub fn perturb_default() -> Self {
        BreakdownPolicy::Perturb {
            eps: f64::EPSILON.sqrt(),
        }
    }
}

/// Which task dependence graph drives the factorization.
#[derive(Clone, Copy)]
pub enum GraphRef<'g> {
    /// The coarse `Factor`/`Update` graph, executed under a task-to-worker
    /// [`Mapping`].
    Coarse {
        /// The dependence graph.
        graph: &'g TaskGraph,
        /// Task-to-worker mapping (paper: static 1D column mapping).
        mapping: Mapping,
    },
    /// The fine-grained `Apply`/`Trsm`/`Gemm` decomposition, executed on a
    /// single shared priority pool.
    Fine(&'g FineGraph),
}

/// All parameters of one numeric factorization. Build with
/// [`NumericRequest::coarse`] / [`NumericRequest::fine`], adjust with the
/// chainable setters, run with [`factor_numeric_with`].
#[derive(Clone)]
pub struct NumericRequest<'g> {
    /// The task graph (and, for the coarse form, its mapping).
    pub graph: GraphRef<'g>,
    /// Worker threads for the numerical phase.
    pub threads: usize,
    /// Pivot-selection rule (partial, threshold, or static-diagonal).
    pub pivot_rule: PivotRule,
    /// Absolute pivot rejection threshold (`0.0`: any nonzero pivot).
    pub pivot_threshold: f64,
    /// Scheduler telemetry; [`TraceConfig::off`] is the untraced fast path.
    pub trace: TraceConfig,
    /// Dense kernel selection, resolved once into a [`Dispatch`] table.
    pub kernels: KernelChoice,
    /// What to do at a column with no acceptable pivot
    /// ([`BreakdownPolicy::Error`] by default).
    pub breakdown: BreakdownPolicy,
    /// Run bounds: cancellation token, deadline, liveness watchdog. The
    /// default is unbounded; an interrupted run drains and returns
    /// [`LuError::Cancelled`] / [`LuError::DeadlineExceeded`] /
    /// [`LuError::Stalled`] with progress attached.
    pub budget: RunBudget,
    /// Optional counters registry: every kernel invocation adds its call
    /// and model-flop counts ([`splu_obs::Counter`]), and the perturbed
    /// column total lands in [`splu_obs::Counter::PerturbedColumns`].
    /// `None` (the default) skips all counting.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Cached executor schedule for the **coarse** graph (a session computes
    /// it once per analysis with [`ExecSchedule::for_graph`]). With a
    /// schedule attached, parallel runs skip the per-run bottom-level
    /// recomputation, and an untraced single-threaded run without a watchdog
    /// replays the precomputed order **inline with zero heap allocation**
    /// ([`execute_seq_budgeted`]) — the session `refactor` hot path. The
    /// factors are bitwise identical either way. Ignored by the fine graph.
    pub schedule: Option<Arc<ExecSchedule>>,
}

impl<'g> NumericRequest<'g> {
    /// A request over the coarse graph with the defaults: 1 thread, partial
    /// pivoting with zero threshold, tracing off, portable kernels.
    pub fn coarse(graph: &'g TaskGraph, mapping: Mapping) -> Self {
        Self::with_graph(GraphRef::Coarse { graph, mapping })
    }

    /// A request over the fine-grained graph (same defaults).
    pub fn fine(graph: &'g FineGraph) -> Self {
        Self::with_graph(GraphRef::Fine(graph))
    }

    /// A request over an explicit [`GraphRef`] (same defaults).
    pub fn with_graph(graph: GraphRef<'g>) -> Self {
        NumericRequest {
            graph,
            threads: 1,
            pivot_rule: PivotRule::Partial,
            pivot_threshold: 0.0,
            trace: TraceConfig::off(),
            kernels: KernelChoice::Portable,
            breakdown: BreakdownPolicy::Error,
            budget: RunBudget::default(),
            metrics: None,
            schedule: None,
        }
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the pivot-selection rule.
    pub fn pivot_rule(mut self, rule: PivotRule) -> Self {
        self.pivot_rule = rule;
        self
    }

    /// Sets the absolute pivot rejection threshold.
    pub fn pivot_threshold(mut self, threshold: f64) -> Self {
        self.pivot_threshold = threshold;
        self
    }

    /// Sets the scheduler trace configuration.
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = config;
        self
    }

    /// Sets the dense kernel selection.
    pub fn kernels(mut self, kernels: KernelChoice) -> Self {
        self.kernels = kernels;
        self
    }

    /// Sets the breakdown policy.
    pub fn breakdown(mut self, policy: BreakdownPolicy) -> Self {
        self.breakdown = policy;
        self
    }

    /// Sets the run budget (cancellation / deadline / watchdog).
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a counters registry (kernel calls/flops, perturbations).
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Attaches a cached executor schedule (see the field docs).
    pub fn schedule(mut self, schedule: Arc<ExecSchedule>) -> Self {
        self.schedule = Some(schedule);
        self
    }
}

/// Runs one numeric factorization described by `req` over the assembled
/// block storage, returning the executor's [`ExecReport`] (with the
/// zero-copy counter filled in from the block storage). On numerical
/// breakdown under [`BreakdownPolicy::Error`] the remaining tasks drain as
/// no-ops and the first error is returned; under
/// [`BreakdownPolicy::Perturb`] the run completes and the perturbed
/// columns land in the report's [`splu_sched::FactorHealth`]. A worker
/// panic is contained by the executor and surfaces as
/// [`LuError::WorkerPanic`] — never as an unwind or a hang.
///
/// A bounded run ([`NumericRequest::budget`]) that is cancelled, misses its
/// deadline, or trips the liveness watchdog likewise drains every worker
/// and returns the matching [`LuError`] variant with the number of block
/// columns completed and tasks still pending.
///
/// This is the single driver behind every public factorization entry point;
/// the kernel table is resolved from `req.kernels` exactly once here.
pub fn factor_numeric_with(
    bm: &BlockMatrix,
    req: &NumericRequest<'_>,
) -> Result<ExecReport, LuError> {
    let dispatch = Dispatch::resolve(req.kernels);
    // The inline sequential replay: a cached schedule, one worker, no
    // tracing, no watchdog. Allocation-free, so the internal-token fixup
    // below (which allocates) is skipped for it — the inline executor
    // handles the deadline itself.
    let inline_seq = req.schedule.is_some()
        && req.threads <= 1
        && !req.trace.is_on()
        && req.budget.watchdog.is_none()
        && matches!(req.graph, GraphRef::Coarse { .. });
    // Effective budget: a deadline or watchdog without a caller token gets
    // an internal one, so a budget trip can release cooperative waiters
    // (e.g. the stall failpoint) that poll the token.
    let mut budget = req.budget.clone();
    if !inline_seq
        && budget.token.is_none()
        && (budget.deadline.is_some() || budget.watchdog.is_some())
    {
        budget.token = Some(CancelToken::new());
    }
    let failed = AtomicBool::new(false);
    let columns_done = AtomicUsize::new(0);
    let first_error: Mutex<Option<LuError>> = Mutex::new(None);
    let perturbed: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
    // Resolve the policy once: the perturbation is `eps·‖A‖₁` of the
    // assembled values, and the element-growth estimate needs `max|a_ij|`
    // from before the factorization overwrites the storage.
    let (panel_policy, max_abs_a) = match req.breakdown {
        BreakdownPolicy::Error => (PanelBreakdown::Error, 0.0),
        BreakdownPolicy::Perturb { eps } => {
            let norm = bm.one_norm();
            let value = if norm > 0.0 { eps * norm } else { eps };
            (PanelBreakdown::Perturb { value }, bm.max_abs())
        }
    };
    let metrics = req.metrics.as_deref();
    let factor = |k: usize| {
        #[cfg(feature = "failpoints")]
        crate::failpoints::maybe_panic_factor(k);
        #[cfg(feature = "failpoints")]
        crate::failpoints::maybe_stall_factor(k, &|| {
            failed.load(Ordering::Acquire)
                || budget.token.as_ref().is_some_and(|t| t.is_cancelled())
        });
        #[cfg(feature = "failpoints")]
        let force = crate::failpoints::forced_breakdown_column();
        #[cfg(not(feature = "failpoints"))]
        let force = None;
        match factor_task_with_policy(
            bm,
            k,
            req.pivot_rule,
            req.pivot_threshold,
            panel_policy,
            force,
        ) {
            Ok(p) => {
                columns_done.fetch_add(1, Ordering::Relaxed);
                if let Some(reg) = metrics {
                    let col = bm.column(k).read();
                    reg.incr(Counter::FactorCalls);
                    reg.add(
                        Counter::FactorFlops,
                        factor_flops(col.panel.nrows(), col.width()),
                    );
                }
                if !p.is_empty() {
                    perturbed.lock().extend(p);
                }
            }
            Err(e) => {
                failed.store(true, Ordering::Release);
                first_error.lock().get_or_insert(e);
            }
        }
    };
    let mut report = match req.graph {
        GraphRef::Coarse { graph, mapping } => {
            let runner = |task: Task| {
                if failed.load(Ordering::Acquire) {
                    return;
                }
                match task {
                    Task::Factor(k) => factor(k),
                    Task::Update { src, dst } => {
                        update_task_metered(bm, src, dst, &dispatch, metrics)
                    }
                }
            };
            match &req.schedule {
                Some(schedule) if inline_seq => {
                    execute_seq_budgeted(graph, schedule, runner, &budget)
                }
                Some(schedule) => execute_traced_budgeted_with_priorities(
                    graph,
                    schedule,
                    req.threads,
                    mapping,
                    runner,
                    &req.trace,
                    &budget,
                ),
                None => execute_traced_budgeted(
                    graph,
                    req.threads,
                    mapping,
                    runner,
                    &req.trace,
                    &budget,
                ),
            }
        }
        GraphRef::Fine(fg) => execute_dag_report_budgeted(
            fg.len(),
            fg.pred_counts(),
            |t| fg.successors(t),
            req.threads,
            1,
            |_| 0,
            |tid| {
                if failed.load(Ordering::Acquire) {
                    return;
                }
                match fg.tasks()[tid] {
                    FineTask::Factor(k) => factor(k),
                    FineTask::Apply { src, dst } => apply_task(bm, src, dst),
                    FineTask::Trsm { src, dst } => {
                        trsm_task_metered(bm, src, dst, &dispatch, metrics)
                    }
                    FineTask::Gemm { src, dst, row } => {
                        gemm_task_metered(bm, src, dst, row, &dispatch, metrics)
                    }
                }
            },
            &req.trace,
            &budget,
        ),
    };
    report.stats.panel_copies = bm.panel_copy_count();
    report.stats.kernel = dispatch.name();
    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    if let Some(p) = report.panic.take() {
        let task = match req.graph {
            GraphRef::Coarse { graph, .. } => format!("{:?}", graph.task(p.task)),
            GraphRef::Fine(fg) => format!("{:?}", fg.tasks()[p.task]),
        };
        return Err(LuError::WorkerPanic {
            worker: p.worker,
            task,
        });
    }
    if let Some(interrupt) = report.interrupt.take() {
        let columns_done = columns_done.load(Ordering::Relaxed);
        return Err(match interrupt {
            Interrupt::Cancelled { tasks_pending } => LuError::Cancelled {
                columns_done,
                tasks_pending,
            },
            Interrupt::DeadlineExceeded { tasks_pending } => LuError::DeadlineExceeded {
                columns_done,
                tasks_pending,
            },
            Interrupt::Stalled(report) => LuError::Stalled {
                columns_done,
                report,
            },
        });
    }
    let mut perturbed = perturbed.into_inner();
    if let Some(reg) = metrics {
        reg.add(Counter::PerturbedColumns, perturbed.len() as u64);
    }
    if !perturbed.is_empty() {
        // The perturbed *set* is deterministic (each column's panel decides
        // independently); only the collection order is scheduling-dependent.
        perturbed.sort_unstable_by_key(|a| a.0);
        report.health.max_perturbation = perturbed.iter().fold(0.0f64, |m, &(_, v)| m.max(v));
        report.health.perturbed_columns = perturbed.into_iter().map(|(c, _)| c).collect();
        report.health.growth = growth_factor(bm, max_abs_a);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sched::{block_forest, build_eforest_graph, build_fine_graph};
    use splu_sparse::CscMatrix;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::{supernode_partition, BlockStructure};

    fn random_matrix(n: usize, extra: usize, seed: u64) -> CscMatrix {
        splu_matgen::random_diag_dominant(n, extra, seed, 3.0)
    }

    /// One request drives both graph forms, and every kernel choice yields
    /// bit-identical factors on both.
    #[test]
    fn unified_driver_is_kernel_and_graph_invariant() {
        let a = random_matrix(40, 150, 17);
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let graph = build_eforest_graph(&bs);
        let forest = block_forest(&bs);
        let fg = build_fine_graph(&bs, &forest);

        let bm_ref = BlockMatrix::assemble(&a, &bs);
        let report =
            factor_numeric_with(&bm_ref, &NumericRequest::coarse(&graph, Mapping::Static1D))
                .unwrap();
        assert_eq!(report.stats.kernel, "portable");
        assert_eq!(report.stats.panel_copies, 0);

        for kernels in [
            KernelChoice::Portable,
            KernelChoice::Simd,
            KernelChoice::Auto,
        ] {
            let coarse_req = NumericRequest::coarse(&graph, Mapping::Dynamic)
                .threads(2)
                .kernels(kernels);
            let fine_req = NumericRequest::fine(&fg).threads(2).kernels(kernels);
            for req in [coarse_req, fine_req] {
                let bm = BlockMatrix::assemble(&a, &bs);
                factor_numeric_with(&bm, &req).unwrap();
                for k in 0..bm.num_block_cols() {
                    let c = bm.column(k).read();
                    let r = bm_ref.column(k).read();
                    assert_eq!(c.pivots, r.pivots, "pivots differ ({kernels:?}, col {k})");
                    assert_eq!(
                        c.panel.data(),
                        r.panel.data(),
                        "panel differs ({kernels:?}, col {k})"
                    );
                    for (cb, rb) in c.ublocks.iter().zip(&r.ublocks) {
                        assert_eq!(cb.data(), rb.data(), "U differs ({kernels:?}, col {k})");
                    }
                }
            }
        }
    }

    /// A pre-cancelled token yields a structured `Cancelled` error with
    /// zero progress, and the same storage then factors cleanly once the
    /// budget is lifted (the drained run left no partial state behind).
    #[test]
    fn pre_cancelled_budget_returns_structured_error() {
        let a = random_matrix(30, 100, 11);
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let graph = build_eforest_graph(&bs);

        let token = CancelToken::new();
        token.cancel();
        let req = NumericRequest::coarse(&graph, Mapping::Dynamic)
            .threads(2)
            .budget(RunBudget::unbounded().with_token(token));
        let bm = BlockMatrix::assemble(&a, &bs);
        match factor_numeric_with(&bm, &req) {
            Err(LuError::Cancelled {
                columns_done,
                tasks_pending,
            }) => {
                assert_eq!(columns_done, 0, "no task ran under a pre-cancelled token");
                assert!(tasks_pending > 0);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        let req = req.budget(RunBudget::default());
        factor_numeric_with(&bm, &req).unwrap();
    }

    /// The fine path honours the pivot rule (it could not before the
    /// request API).
    #[test]
    fn fine_path_honours_pivot_rule() {
        let a = random_matrix(30, 100, 5);
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let forest = block_forest(&bs);
        let fg = build_fine_graph(&bs, &forest);

        // Diagonally dominant → the diagonal rule does zero interchanges.
        let bm = BlockMatrix::assemble(&a, &bs);
        factor_numeric_with(
            &bm,
            &NumericRequest::fine(&fg).pivot_rule(PivotRule::Diagonal),
        )
        .unwrap();
        for k in 0..bm.num_block_cols() {
            let col = bm.column(k).read();
            let piv = col.pivots.as_ref().unwrap();
            assert!(piv.swaps().iter().enumerate().all(|(c, &p)| c == p));
        }
    }
}
