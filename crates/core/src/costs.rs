//! Structural flop/communication estimates per task, feeding the
//! list-scheduling simulator (DESIGN.md §5, substitution 2).

use splu_sched::{Task, TaskCost, TaskGraph};
use splu_symbolic::supernode::BlockStructure;

/// Stacked panel height of block column `k` (diagonal block included).
fn stack_height(bs: &BlockStructure, k: usize) -> usize {
    bs.l_blocks[k]
        .iter()
        .map(|&ib| bs.partition.width(ib))
        .sum()
}

/// Estimates per-task flops and communication volume from the block
/// structure alone.
///
/// * `Factor(k)`: panel LU of an `m × w` panel —
///   `Σ_c (m − c − 1) · (1 + 2 (w − c − 1))` flops, no remote reads.
/// * `Update(k, j)`: `trsm` (`w_k² · w_j`) plus the Schur `gemm`
///   (`2 (m_k − w_k) w_k w_j`); reads the remote panel of column `k`
///   (`m_k · w_k` words plus the pivot sequence).
pub fn estimate_task_costs(bs: &BlockStructure, graph: &TaskGraph) -> Vec<TaskCost> {
    graph
        .tasks()
        .iter()
        .map(|t| match *t {
            Task::Factor(k) => {
                let m = stack_height(bs, k);
                let w = bs.partition.width(k);
                let mut flops = 0.0_f64;
                for c in 0..w {
                    let below = (m - c - 1) as f64;
                    flops += below * (1.0 + 2.0 * (w - c - 1) as f64);
                }
                TaskCost {
                    flops,
                    comm_words: 0.0,
                    reads_remote: false,
                    src_col: k,
                    dst_col: k,
                }
            }
            Task::Update { src, dst } => {
                let m = stack_height(bs, src) as f64;
                let wk = bs.partition.width(src) as f64;
                let wj = bs.partition.width(dst) as f64;
                let trsm = wk * (wk - 1.0) * wj;
                let gemm = 2.0 * (m - wk) * wk * wj;
                TaskCost {
                    flops: trsm + gemm,
                    comm_words: m * wk + wk,
                    reads_remote: true,
                    src_col: src,
                    dst_col: dst,
                }
            }
        })
        .collect()
}

/// Total flops of a task-cost vector (serial work under the flop model).
pub fn total_flops(costs: &[TaskCost]) -> f64 {
    costs.iter().map(|c| c.flops).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sched::build_eforest_graph;
    use splu_symbolic::fixtures::fig1_pattern;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::{supernode_partition, BlockStructure};

    #[test]
    fn costs_are_positive_and_consistent() {
        let f = static_symbolic_factorization(&fig1_pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let g = build_eforest_graph(&bs);
        let costs = estimate_task_costs(&bs, &g);
        assert_eq!(costs.len(), g.len());
        for (t, c) in g.tasks().iter().zip(&costs) {
            match *t {
                Task::Factor(k) => {
                    assert!(!c.reads_remote);
                    assert_eq!(c.dst_col, k);
                    assert!(c.flops >= 0.0);
                }
                Task::Update { src, dst } => {
                    assert!(c.reads_remote);
                    assert_eq!((c.src_col, c.dst_col), (src, dst));
                    // A width-1 source with no sub-diagonal blocks does its
                    // whole update inside the unit-diagonal trsm: 0 flops.
                    assert!(c.flops >= 0.0);
                    assert!(c.comm_words > 0.0);
                }
            }
        }
        assert!(total_flops(&costs) > 0.0);
    }

    #[test]
    fn wider_panels_cost_more() {
        // A dense 6x6 matrix as one supernode vs six singletons: the total
        // factor flops should be in the same ballpark (identical elimination),
        // and the single-panel Factor must dominate any singleton Factor.
        use splu_sparse::SparsityPattern;
        use splu_symbolic::Partition;
        let n = 6;
        let p =
            SparsityPattern::from_entries(n, n, (0..n).flat_map(|i| (0..n).map(move |j| (i, j))))
                .unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let bs1 = BlockStructure::new(&f, supernode_partition(&f));
        assert_eq!(bs1.num_blocks(), 1);
        let g1 = build_eforest_graph(&bs1);
        let c1 = estimate_task_costs(&bs1, &g1);
        let bsn = BlockStructure::new(&f, Partition::singletons(n));
        let gn = build_eforest_graph(&bsn);
        let cn = estimate_task_costs(&bsn, &gn);
        let f1 = total_flops(&c1);
        let fnn = total_flops(&cn);
        assert!(f1 > 0.0 && fnn > 0.0);
        // Same arithmetic, different task decomposition: within 2x.
        assert!(f1 < 2.0 * fnn && fnn < 2.0 * f1, "f1={f1}, fn={fnn}");
    }
}
