//! Property test: the work-stealing executor is **bitwise deterministic**.
//!
//! The paper's Section 5 argument: updates into one block column have
//! pairwise-disjoint scalar write/read-modify sets only *per element*; their
//! floating-point contributions into an element commute because each element
//! is touched by a fixed sequence of `gemm` subtractions whose order is
//! pinned by the task graph's dependences, not by the schedule. Any
//! topological execution order — including dynamic self-scheduling with
//! work stealing on any number of threads — therefore produces the same
//! factors **bit for bit** as the sequential left-looking sweep.
//!
//! This test drives the `Mapping::Dynamic` (stealing) executor at 1, 2, 4
//! and 8 threads over random diagonally-dominant matrices and compares
//! every stored `Ū` block, every L panel and every pivot sequence bitwise
//! against the sequential reference, also asserting the zero-copy counter
//! stayed at zero. Every run repeats under each [`KernelChoice`] — the
//! kernel dispatch layer promises the same bits, so the SIMD tables (when
//! compiled in) must reproduce the sequential portable reference exactly.

use proptest::prelude::*;
use splu_core::{
    factor_left_looking, factor_numeric_with, BlockMatrix, KernelChoice, NumericRequest,
};
use splu_sched::{build_eforest_graph, Mapping};
use splu_sparse::CscMatrix;
use splu_symbolic::static_fact::static_symbolic_factorization;
use splu_symbolic::supernode::{supernode_partition, BlockStructure};

/// Random square matrices with a dominant diagonal (so partial pivoting
/// never breaks down) and enough off-diagonal mass to produce nontrivial
/// supernodes and fill.
fn arb_dominant(max_n: usize) -> impl Strategy<Value = CscMatrix> {
    (6..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), n..6 * n).prop_map(move |mut t| {
            for i in 0..n {
                t.push((i, i, 4.0 + (i as f64) * 0.01));
            }
            CscMatrix::from_triplets(n, n, &t).expect("indices in range")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stealing_execution_is_bitwise_identical_to_sequential(a in arb_dominant(48)) {
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let graph = build_eforest_graph(&bs);

        let bm_seq = BlockMatrix::assemble(&a, &bs);
        factor_left_looking(&bm_seq, 0.0).unwrap();

        for threads in [1usize, 2, 4, 8] {
            for kernels in [KernelChoice::Portable, KernelChoice::Simd, KernelChoice::Auto] {
                let bm = BlockMatrix::assemble(&a, &bs);
                factor_numeric_with(
                    &bm,
                    &NumericRequest::coarse(&graph, Mapping::Dynamic)
                        .threads(threads)
                        .kernels(kernels),
                )
                .unwrap();
                prop_assert_eq!(bm.panel_copy_count(), 0, "threads {}", threads);
                for k in 0..bm.num_block_cols() {
                    let cd = bm.column(k).read();
                    let cs = bm_seq.column(k).read();
                    prop_assert_eq!(
                        &cd.pivots, &cs.pivots,
                        "pivots differ: threads {}, {:?}, column {}", threads, kernels, k
                    );
                    for (bd, bref) in cd.ublocks.iter().zip(&cs.ublocks) {
                        prop_assert_eq!(
                            bd.data(), bref.data(),
                            "U block bits differ: threads {}, {:?}, column {}",
                            threads, kernels, k
                        );
                    }
                    prop_assert_eq!(
                        cd.panel.data(), cs.panel.data(),
                        "panel bits differ: threads {}, {:?}, column {}",
                        threads, kernels, k
                    );
                }
            }
        }
    }
}
