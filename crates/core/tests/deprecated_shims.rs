//! Compatibility test for the deprecated factorization entry points.
//!
//! The six pre-request drivers (`factor_with_graph`,
//! `factor_with_graph_rule`, their `_traced` forms, and the two
//! `factor_with_fine_graph` forms) survive as thin shims over
//! [`splu_core::factor_numeric_with`]. This is the **only** place that may
//! still call them: it pins the shims' signatures and checks each one
//! produces bit-identical factors to the request it is documented to build.
#![allow(deprecated)]

use splu_core::{
    factor_numeric_with, factor_with_fine_graph, factor_with_fine_graph_traced, factor_with_graph,
    factor_with_graph_rule, factor_with_graph_rule_traced, factor_with_graph_traced, BlockMatrix,
    NumericRequest, PivotRule, TraceConfig,
};
use splu_sched::{block_forest, build_eforest_graph, build_fine_graph, Mapping};
use splu_sparse::CscMatrix;
use splu_symbolic::static_fact::static_symbolic_factorization;
use splu_symbolic::supernode::{supernode_partition, BlockStructure};

fn random_matrix(n: usize, extra: usize, seed: u64) -> CscMatrix {
    splu_matgen::random_diag_dominant(n, extra, seed, 3.0)
}

fn assert_same_factors(a: &BlockMatrix, b: &BlockMatrix, what: &str) {
    for k in 0..a.num_block_cols() {
        let ca = a.column(k).read();
        let cb = b.column(k).read();
        assert_eq!(ca.pivots, cb.pivots, "{what}: pivots differ at {k}");
        assert_eq!(
            ca.panel.data(),
            cb.panel.data(),
            "{what}: panel differs at {k}"
        );
        for (ba, bb) in ca.ublocks.iter().zip(&cb.ublocks) {
            assert_eq!(ba.data(), bb.data(), "{what}: U differs at {k}");
        }
    }
}

#[test]
fn every_shim_matches_its_request() {
    let a = random_matrix(36, 120, 11);
    let f = static_symbolic_factorization(a.pattern()).unwrap();
    let bs = BlockStructure::new(&f, supernode_partition(&f));
    let graph = build_eforest_graph(&bs);
    let forest = block_forest(&bs);
    let fg = build_fine_graph(&bs, &forest);
    let rule = PivotRule::Threshold(0.5);
    let trace = TraceConfig::counters();

    let reference = BlockMatrix::assemble(&a, &bs);
    factor_numeric_with(
        &reference,
        &NumericRequest::coarse(&graph, Mapping::Static1D).threads(2),
    )
    .unwrap();

    let bm = BlockMatrix::assemble(&a, &bs);
    factor_with_graph(&bm, &graph, 2, Mapping::Static1D, 0.0).unwrap();
    assert_same_factors(&bm, &reference, "factor_with_graph");

    let bm = BlockMatrix::assemble(&a, &bs);
    let report = factor_with_graph_traced(&bm, &graph, 2, Mapping::Static1D, 0.0, &trace).unwrap();
    assert_eq!(report.stats.kernel, "portable");
    assert_same_factors(&bm, &reference, "factor_with_graph_traced");

    // Rule-carrying shims against a rule-carrying request.
    let rule_ref = BlockMatrix::assemble(&a, &bs);
    factor_numeric_with(
        &rule_ref,
        &NumericRequest::coarse(&graph, Mapping::Static1D).pivot_rule(rule),
    )
    .unwrap();

    let bm = BlockMatrix::assemble(&a, &bs);
    factor_with_graph_rule(&bm, &graph, 1, Mapping::Static1D, rule, 0.0).unwrap();
    assert_same_factors(&bm, &rule_ref, "factor_with_graph_rule");

    let bm = BlockMatrix::assemble(&a, &bs);
    factor_with_graph_rule_traced(&bm, &graph, 1, Mapping::Static1D, rule, 0.0, &trace).unwrap();
    assert_same_factors(&bm, &rule_ref, "factor_with_graph_rule_traced");

    // Fine-grained shims.
    let bm = BlockMatrix::assemble(&a, &bs);
    factor_with_fine_graph(&bm, &fg, 2, 0.0).unwrap();
    assert_same_factors(&bm, &reference, "factor_with_fine_graph");

    let bm = BlockMatrix::assemble(&a, &bs);
    let report = factor_with_fine_graph_traced(&bm, &fg, 2, 0.0, &trace).unwrap();
    assert_eq!(report.stats.panel_copies, 0);
    assert_same_factors(&bm, &reference, "factor_with_fine_graph_traced");
}
