//! Property test: **telemetry is invisible to the numerics**.
//!
//! The tracing layer's contract is that recording per-worker event streams
//! changes nothing but wall clock: the recorder is worker-owned (no shared
//! state on the hot path) and runs strictly *around* task bodies, so the
//! schedule-independent bitwise determinism argument (see
//! `proptest_determinism.rs`) carries over verbatim. This test factors
//! random diagonally-dominant matrices with full tracing enabled at 1, 2, 4
//! and 8 threads and compares every pivot sequence, `Ū` block and L panel
//! bitwise against the untraced sequential reference, while also checking
//! the report's accounting invariants (started == retired == n_tasks, one
//! Task event per task in the event stream).

use proptest::prelude::*;
use splu_core::{
    factor_left_looking, factor_numeric_with, BlockMatrix, NumericRequest, TraceConfig,
};
use splu_sched::{build_eforest_graph, EventKind, Mapping};
use splu_sparse::CscMatrix;
use splu_symbolic::static_fact::static_symbolic_factorization;
use splu_symbolic::supernode::{supernode_partition, BlockStructure};

/// Same generator family as `proptest_determinism.rs`: dominant diagonal so
/// partial pivoting cannot break down, dense enough for real fill.
fn arb_dominant(max_n: usize) -> impl Strategy<Value = CscMatrix> {
    (6..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), n..6 * n).prop_map(move |mut t| {
            for i in 0..n {
                t.push((i, i, 4.0 + (i as f64) * 0.01));
            }
            CscMatrix::from_triplets(n, n, &t).expect("indices in range")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn full_tracing_leaves_the_factors_bitwise_unchanged(a in arb_dominant(40)) {
        let f = static_symbolic_factorization(a.pattern()).unwrap();
        let bs = BlockStructure::new(&f, supernode_partition(&f));
        let graph = build_eforest_graph(&bs);

        let bm_seq = BlockMatrix::assemble(&a, &bs);
        factor_left_looking(&bm_seq, 0.0).unwrap();

        for threads in [1usize, 2, 4, 8] {
            let bm = BlockMatrix::assemble(&a, &bs);
            let config = TraceConfig::full(graph.len(), threads);
            let report = factor_numeric_with(
                &bm,
                &NumericRequest::coarse(&graph, Mapping::Dynamic)
                    .threads(threads)
                    .trace(config),
            ).unwrap();

            // Accounting invariants of the report itself.
            report.stats.assert_consistent();
            prop_assert_eq!(report.stats.nthreads, threads);
            prop_assert_eq!(report.stats.panel_copies, 0);
            let trace = report.trace.as_ref().expect("full mode keeps events");
            let task_events = trace
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Task { .. }))
                .count();
            prop_assert_eq!(task_events, graph.len(), "one Task event per task");

            // The factors are bit-identical to the untraced reference.
            for k in 0..bm.num_block_cols() {
                let cd = bm.column(k).read();
                let cs = bm_seq.column(k).read();
                prop_assert_eq!(
                    &cd.pivots, &cs.pivots,
                    "pivots differ: threads {}, column {}", threads, k
                );
                for (bd, bref) in cd.ublocks.iter().zip(&cs.ublocks) {
                    prop_assert_eq!(
                        bd.data(), bref.data(),
                        "U block bits differ: threads {}, column {}", threads, k
                    );
                }
                prop_assert_eq!(
                    cd.panel.data(), cs.panel.data(),
                    "panel bits differ: threads {}, column {}", threads, k
                );
            }
        }
    }
}
