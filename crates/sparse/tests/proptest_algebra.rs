//! Property tests for the sparse substrate's algebra: permutations,
//! patterns, equilibration and matrix-vector products.

use proptest::prelude::*;
use splu_sparse::scaling::equilibrate;
use splu_sparse::{CscMatrix, Permutation};

fn arb_perm(max_n: usize) -> impl Strategy<Value = Permutation> {
    (1..=max_n).prop_flat_map(|n| {
        Just(n).prop_perturb(move |n, mut rng| {
            let mut v: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                v.swap(i, j);
            }
            Permutation::from_vec(v).expect("shuffle is a bijection")
        })
    })
}

fn arb_square(max_n: usize) -> impl Strategy<Value = CscMatrix> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -10.0f64..10.0), 0..5 * n)
            .prop_map(move |trips| CscMatrix::from_triplets(n, n, &trips).expect("in range"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn permutation_inverse_is_involutive(p in arb_perm(24)) {
        prop_assert_eq!(p.inverse().inverse(), p.clone());
        prop_assert!(p.compose(&p.inverse()).is_identity());
        prop_assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn permutation_parity_multiplies(p in arb_perm(16), q in arb_perm(16)) {
        if p.len() == q.len() {
            let pq = p.compose(&q);
            prop_assert_eq!(pq.is_even(), p.is_even() == q.is_even());
        }
    }

    #[test]
    fn apply_then_unapply_roundtrips(p in arb_perm(20)) {
        let x: Vec<f64> = (0..p.len()).map(|i| i as f64 * 1.5 - 3.0).collect();
        let y = p.apply_vec(&x);
        prop_assert_eq!(p.apply_inverse_vec(&y), x);
    }

    #[test]
    fn pattern_transpose_is_involutive_and_preserves_nnz(a in arb_square(20)) {
        let p = a.pattern();
        let t = p.transpose();
        prop_assert_eq!(t.nnz(), p.nnz());
        prop_assert_eq!(&t.transpose(), p);
    }

    #[test]
    fn union_is_commutative_and_idempotent(a in arb_square(15), b in arb_square(15)) {
        if a.ncols() == b.ncols() && a.nrows() == b.nrows() {
            let (pa, pb) = (a.pattern(), b.pattern());
            prop_assert_eq!(pa.union(pb), pb.union(pa));
            prop_assert_eq!(&pa.union(pa), pa);
        }
    }

    #[test]
    fn matvec_is_linear(a in arb_square(20)) {
        let n = a.ncols();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let xy: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.0 * a - 3.0 * b).collect();
        let lhs = a.mat_vec(&xy);
        let ax = a.mat_vec(&x);
        let ay = a.mat_vec(&y);
        for i in 0..n {
            let rhs = 2.0 * ax[i] - 3.0 * ay[i];
            prop_assert!((lhs[i] - rhs).abs() <= 1e-9 * rhs.abs().max(1.0));
        }
    }

    #[test]
    fn permuted_matrix_preserves_values_as_a_multiset(a in arb_square(15), p in arb_perm(15)) {
        if p.len() == a.ncols() {
            let b = a.permuted(&p, &p);
            let mut va: Vec<u64> = a.values().iter().map(|v| v.to_bits()).collect();
            let mut vb: Vec<u64> = b.values().iter().map(|v| v.to_bits()).collect();
            va.sort_unstable();
            vb.sort_unstable();
            prop_assert_eq!(va, vb);
        }
    }

    #[test]
    fn equilibrated_matrix_has_unit_column_norms(a in arb_square(15)) {
        let eq = equilibrate(&a);
        let n = a.ncols();
        let mut col_max = vec![0.0f64; n];
        for (_, j, v) in eq.scaled.triplets() {
            col_max[j] = col_max[j].max(v.abs());
        }
        for (j, &cm) in col_max.iter().enumerate() {
            // Columns with at least one entry end up with max exactly 1.
            if a.col(j).0.iter().len() > 0 && a.col(j).1.iter().any(|v| *v != 0.0) {
                prop_assert!((cm - 1.0).abs() < 1e-12, "col {}: {}", j, cm);
            }
        }
    }

    #[test]
    fn triangular_split_reassembles(a in arb_square(18)) {
        let p = a.pattern();
        prop_assert_eq!(p.lower().union(&p.upper()), p.clone());
        prop_assert!(p.lower().is_lower_triangular());
        prop_assert!(p.upper().is_upper_triangular());
    }
}
