//! Property tests for the file formats: arbitrary matrices must survive a
//! Matrix Market or Harwell–Boeing round-trip exactly.

use proptest::prelude::*;
use splu_sparse::io::{
    format_harwell_boeing, format_matrix_market, parse_harwell_boeing, parse_matrix_market,
};
use splu_sparse::CscMatrix;

fn arb_matrix() -> impl Strategy<Value = CscMatrix> {
    (1usize..12, 1usize..12).prop_flat_map(|(nrows, ncols)| {
        proptest::collection::vec(
            (0..nrows, 0..ncols, -1e6f64..1e6),
            0..(nrows * ncols).min(40),
        )
        .prop_map(move |trips| CscMatrix::from_triplets(nrows, ncols, &trips).expect("in range"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matrix_market_roundtrip_is_exact(a in arb_matrix()) {
        let text = format_matrix_market(&a);
        let b = parse_matrix_market(&text).expect("own output parses");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn harwell_boeing_roundtrip_preserves_structure_and_values(a in arb_matrix()) {
        let text = format_harwell_boeing(&a, "proptest");
        let b = parse_harwell_boeing(&text).expect("own output parses");
        prop_assert_eq!(a.pattern(), b.pattern());
        for ((_, _, va), (_, _, vb)) in a.triplets().zip(b.triplets()) {
            prop_assert!(
                (va - vb).abs() <= 1e-12 * va.abs().max(1.0),
                "value drift: {} vs {}", va, vb
            );
        }
    }

    /// Values with extreme magnitudes survive (format width is sufficient).
    #[test]
    fn extreme_values_roundtrip(exp in -300i32..300) {
        let v = 1.2345678901234567 * 10f64.powi(exp);
        let a = CscMatrix::from_triplets(1, 1, &[(0, 0, v)]).expect("valid");
        let mm = parse_matrix_market(&format_matrix_market(&a)).expect("parses");
        prop_assert_eq!(mm.get(0, 0), v);
        let hb = parse_harwell_boeing(&format_harwell_boeing(&a, "x")).expect("parses");
        prop_assert!((hb.get(0, 0) - v).abs() <= 1e-12 * v.abs());
    }
}
