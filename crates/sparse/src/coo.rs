//! Triplet (coordinate) sparse matrices — the assembly format.

use crate::{CscMatrix, SparseError};

/// A sparse matrix in coordinate (triplet) form.
///
/// This is the natural assembly format for generators and file readers;
/// duplicates are allowed and are **summed** on conversion to [`CscMatrix`],
/// matching finite-element assembly semantics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// An empty `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// An empty matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends the triplet `(row, col, val)`.
    ///
    /// # Panics
    /// Panics when the indices are out of bounds; generators are trusted
    /// code, so this is a programming error rather than a recoverable one.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "triplet ({row}, {col}) outside {}x{}",
            self.nrows,
            self.ncols
        );
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Iterator over stored triplets.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to compressed-column form, summing duplicate entries.
    pub fn to_csc(&self) -> CscMatrix {
        CscMatrix::from_triplets_iter(self.nrows, self.ncols, self.triplets())
            .expect("CooMatrix::push already validated the indices")
    }
}

impl TryFrom<&CooMatrix> for CscMatrix {
    type Error = SparseError;

    fn try_from(coo: &CooMatrix) -> Result<Self, Self::Error> {
        CscMatrix::from_triplets_iter(coo.nrows, coo.ncols, coo.triplets())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 1, -1.0);
        assert_eq!(coo.nnz(), 3);
        let csc = coo.to_csc();
        assert_eq!(csc.nnz(), 2);
        assert_eq!(csc.get(0, 0), 3.5);
        assert_eq!(csc.get(1, 1), -1.0);
        assert_eq!(csc.get(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_rejects_out_of_bounds() {
        CooMatrix::new(1, 1).push(1, 0, 1.0);
    }

    #[test]
    fn with_capacity_and_accessors() {
        let coo = CooMatrix::with_capacity(3, 4, 10);
        assert_eq!(coo.nrows(), 3);
        assert_eq!(coo.ncols(), 4);
        assert_eq!(coo.nnz(), 0);
        assert_eq!(coo.triplets().count(), 0);
    }
}
