//! Compressed sparse column matrices — the solver's working format.

use crate::{CsrMatrix, Permutation, SparseError, SparsityPattern};

/// A numeric sparse matrix in compressed-column form.
///
/// Values are stored parallel to the pattern's row indices; explicit zeros
/// are allowed (static symbolic factorization deliberately pads structures).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    pattern: SparsityPattern,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a matrix from a pattern and values of matching length.
    pub fn from_pattern_values(
        pattern: SparsityPattern,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if values.len() != pattern.nnz() {
            return Err(SparseError::InvalidStructure(format!(
                "value count {} != nnz {}",
                values.len(),
                pattern.nnz()
            )));
        }
        Ok(CscMatrix { pattern, values })
    }

    /// Builds a matrix with the given pattern and all values zero.
    pub fn zeros_from_pattern(pattern: SparsityPattern) -> Self {
        let values = vec![0.0; pattern.nnz()];
        CscMatrix { pattern, values }
    }

    /// Builds a matrix from `(row, col, value)` triplets, summing duplicates.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, SparseError> {
        Self::from_triplets_iter(nrows, ncols, triplets.iter().copied())
    }

    /// Iterator-based triplet constructor, summing duplicates.
    pub fn from_triplets_iter<I>(
        nrows: usize,
        ncols: usize,
        triplets: I,
    ) -> Result<Self, SparseError>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut per_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        for (r, c, v) in triplets {
            if r >= nrows || c >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows,
                    ncols,
                });
            }
            per_col[c].push((r, v));
        }
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for col in &mut per_col {
            col.sort_unstable_by_key(|&(r, _)| r);
            let mut it = col.iter().copied().peekable();
            while let Some((r, mut v)) = it.next() {
                while matches!(it.peek(), Some(&(r2, _)) if r2 == r) {
                    v += it.next().unwrap().1;
                }
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        let pattern = SparsityPattern::new(nrows, ncols, col_ptr, row_idx)?;
        Ok(CscMatrix { pattern, values })
    }

    /// The dense `n × n` identity.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            pattern: SparsityPattern::identity(n),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.pattern.nrows()
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.pattern.ncols()
    }

    /// Number of stored entries (including explicit zeros).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.pattern.nnz()
    }

    /// Borrow the structure.
    #[inline]
    pub fn pattern(&self) -> &SparsityPattern {
        &self.pattern
    }

    /// Borrow the value array (parallel to `pattern().row_indices()`).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable borrow of the value array.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Row indices and values of column `j`.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.pattern.col_ptr()[j];
        let hi = self.pattern.col_ptr()[j + 1];
        (&self.pattern.row_indices()[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(i, j)`, zero when not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (rows, vals) = self.col(j);
        match rows.binary_search(&i) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(row, col, value)` in column-major order.
    pub fn triplets(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.ncols()).flat_map(move |j| {
            let (rows, vals) = self.col(j);
            rows.iter().zip(vals).map(move |(&i, &v)| (i, j, v))
        })
    }

    /// `y ← y + A x`.
    pub fn mat_vec_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols());
        assert_eq!(y.len(), self.nrows());
        for j in 0..self.ncols() {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                y[i] += v * xj;
            }
        }
    }

    /// `y ← y − A x`.
    pub fn mat_vec_sub(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols());
        assert_eq!(y.len(), self.nrows());
        for j in 0..self.ncols() {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                y[i] -= v * xj;
            }
        }
    }

    /// `y = A x` into a fresh vector.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows()];
        self.mat_vec_add(x, &mut y);
        y
    }

    /// Infinity norm: maximum absolute row sum.
    pub fn inf_norm(&self) -> f64 {
        let mut row_sum = vec![0.0_f64; self.nrows()];
        for (i, _, v) in self.triplets() {
            row_sum[i] += v.abs();
        }
        row_sum.iter().fold(0.0_f64, |m, &s| m.max(s))
    }

    /// One norm: maximum absolute column sum.
    pub fn one_norm(&self) -> f64 {
        (0..self.ncols())
            .map(|j| self.col(j).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Transposed matrix.
    pub fn transpose(&self) -> CscMatrix {
        CscMatrix::from_triplets_iter(
            self.ncols(),
            self.nrows(),
            self.triplets().map(|(i, j, v)| (j, i, v)),
        )
        .expect("transpose preserves validity")
    }

    /// Permuted matrix `B[i][j] = A[rp[i]][cp[j]]`.
    pub fn permuted(&self, row_perm: &Permutation, col_perm: &Permutation) -> CscMatrix {
        assert_eq!(row_perm.len(), self.nrows());
        assert_eq!(col_perm.len(), self.ncols());
        CscMatrix::from_triplets_iter(
            self.nrows(),
            self.ncols(),
            self.triplets()
                .map(|(i, j, v)| (row_perm.new_of(i), col_perm.new_of(j), v)),
        )
        .expect("permutation preserves validity")
    }

    /// Conversion to compressed-row form.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets_iter(self.nrows(), self.ncols(), self.triplets())
            .expect("valid matrix converts")
    }

    /// Dense column-major dump: element `(i, j)` at `out[i + j * nrows]`.
    pub fn to_dense_col_major(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.nrows() * self.ncols()];
        for (i, j, v) in self.triplets() {
            out[i + j * self.nrows()] += v;
        }
        out
    }

    /// Drops stored entries with `|value| <= tol`, returning the count removed.
    pub fn prune(&mut self, tol: f64) -> usize {
        let before = self.nnz();
        let kept: Vec<(usize, usize, f64)> =
            self.triplets().filter(|&(_, _, v)| v.abs() > tol).collect();
        *self = CscMatrix::from_triplets_iter(self.nrows(), self.ncols(), kept)
            .expect("pruning preserves validity");
        before - self.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 1  0  2 ]
        // [ 0 -3  0 ]
        // [ 4  0  5 ]
        CscMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (2, 0, 4.0),
                (1, 1, -3.0),
                (0, 2, 2.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn get_and_col_access() {
        let a = sample();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 0), 0.0);
        let (rows, vals) = a.col(2);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[2.0, 5.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let y = a.mat_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0 + 6.0, -6.0, 4.0 + 15.0]);
    }

    #[test]
    fn norms() {
        let a = sample();
        assert_eq!(a.inf_norm(), 9.0); // row 2: 4 + 5
        assert_eq!(a.one_norm(), 7.0); // col 2: 2 + 5
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        let at = a.transpose();
        assert_eq!(at.get(0, 2), 4.0);
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn permuted_matches_definition() {
        let a = sample();
        let rp = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let cp = Permutation::from_vec(vec![1, 2, 0]).unwrap();
        let b = a.permuted(&rp, &cp);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(b.get(i, j), a.get(rp.old_of(i), cp.old_of(j)));
            }
        }
    }

    #[test]
    fn identity_and_dense_dump() {
        let i3 = CscMatrix::identity(3);
        assert_eq!(i3.nnz(), 3);
        let d = i3.to_dense_col_major();
        assert_eq!(d[0], 1.0);
        assert_eq!(d[1], 0.0);
        assert_eq!(d[2 + 2 * 3], 1.0);
    }

    #[test]
    fn prune_drops_small_entries() {
        let mut a = CscMatrix::from_triplets(2, 2, &[(0, 0, 1e-20), (1, 1, 2.0)]).unwrap();
        assert_eq!(a.prune(1e-12), 1);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(1, 1), 2.0);
    }

    #[test]
    fn from_pattern_values_validates_length() {
        let p = SparsityPattern::identity(2);
        assert!(CscMatrix::from_pattern_values(p.clone(), vec![1.0]).is_err());
        let m = CscMatrix::from_pattern_values(p.clone(), vec![1.0, 2.0]).unwrap();
        assert_eq!(m.get(1, 1), 2.0);
        let z = CscMatrix::zeros_from_pattern(p);
        assert_eq!(z.get(0, 0), 0.0);
        assert_eq!(z.nnz(), 2);
    }

    #[test]
    fn triplet_constructor_rejects_out_of_bounds() {
        assert!(CscMatrix::from_triplets(1, 1, &[(0, 1, 1.0)]).is_err());
    }
}
