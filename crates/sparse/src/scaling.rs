//! Row/column equilibration.
//!
//! Scaling `A → R·A·C` with diagonal `R`, `C` chosen so every row and
//! column has unit infinity norm improves pivot quality on badly scaled
//! systems. This is the standard pre-processing the S*/SuperLU family
//! applies before factorization.

use crate::CscMatrix;

/// Result of [`equilibrate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibration {
    /// Row scale factors `R` (multiply row `i` by `row_scale[i]`).
    pub row_scale: Vec<f64>,
    /// Column scale factors `C`.
    pub col_scale: Vec<f64>,
    /// The scaled matrix `R·A·C`.
    pub scaled: CscMatrix,
}

impl Equilibration {
    /// Transforms a right-hand side of `A x = b` into the scaled system's
    /// right-hand side `R b`.
    pub fn scale_rhs(&self, b: &[f64]) -> Vec<f64> {
        b.iter()
            .zip(&self.row_scale)
            .map(|(&v, &s)| v * s)
            .collect()
    }

    /// Recovers the original solution from the scaled system's solution:
    /// `x = C y`.
    pub fn unscale_solution(&self, y: &[f64]) -> Vec<f64> {
        y.iter()
            .zip(&self.col_scale)
            .map(|(&v, &s)| v * s)
            .collect()
    }
}

/// Equilibrates a matrix: first scale each row to unit infinity norm, then
/// each column of the row-scaled matrix.
///
/// Structurally empty rows/columns get scale `1.0` (the factorization will
/// reject such matrices as singular anyway).
pub fn equilibrate(a: &CscMatrix) -> Equilibration {
    let (m, n) = (a.nrows(), a.ncols());
    let mut row_max = vec![0.0_f64; m];
    for (i, _, v) in a.triplets() {
        row_max[i] = row_max[i].max(v.abs());
    }
    let row_scale: Vec<f64> = row_max
        .iter()
        .map(|&x| if x > 0.0 { 1.0 / x } else { 1.0 })
        .collect();
    let mut col_max = vec![0.0_f64; n];
    for (i, j, v) in a.triplets() {
        col_max[j] = col_max[j].max((v * row_scale[i]).abs());
    }
    let col_scale: Vec<f64> = col_max
        .iter()
        .map(|&x| if x > 0.0 { 1.0 / x } else { 1.0 })
        .collect();
    let scaled = CscMatrix::from_triplets_iter(
        m,
        n,
        a.triplets()
            .map(|(i, j, v)| (i, j, v * row_scale[i] * col_scale[j])),
    )
    .expect("scaling preserves the pattern");
    Equilibration {
        row_scale,
        col_scale,
        scaled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_matrix_has_unit_norms() {
        let a = CscMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1e6),
                (0, 1, 2e6),
                (1, 1, 1e-4),
                (2, 0, 5.0),
                (2, 2, -80.0),
            ],
        )
        .unwrap();
        let eq = equilibrate(&a);
        // Every row max of |R A C| is ≤ 1, every column max is exactly 1.
        let mut row_max = [0.0_f64; 3];
        let mut col_max = [0.0_f64; 3];
        for (i, j, v) in eq.scaled.triplets() {
            row_max[i] = row_max[i].max(v.abs());
            col_max[j] = col_max[j].max(v.abs());
        }
        for j in 0..3 {
            assert!((col_max[j] - 1.0).abs() < 1e-12, "col {j}: {}", col_max[j]);
        }
        for i in 0..3 {
            assert!(row_max[i] <= 1.0 + 1e-12);
            assert!(row_max[i] > 0.0);
        }
    }

    #[test]
    fn rhs_and_solution_transforms_are_consistent() {
        // If (RAC) y = Rb then x = Cy solves Ax = b.
        let a = CscMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 4e3), (0, 1, 1.0), (1, 0, -2.0), (1, 1, 3e-3)],
        )
        .unwrap();
        let eq = equilibrate(&a);
        let x_true = [2.0, -1.5];
        let b = a.mat_vec(&x_true);
        let sb = eq.scale_rhs(&b);
        // Solve the scaled 2x2 directly.
        let s = &eq.scaled;
        let (a11, a12, a21, a22) = (s.get(0, 0), s.get(0, 1), s.get(1, 0), s.get(1, 1));
        let det = a11 * a22 - a12 * a21;
        let y = [
            (sb[0] * a22 - a12 * sb[1]) / det,
            (a11 * sb[1] - sb[0] * a21) / det,
        ];
        let x = eq.unscale_solution(&y);
        assert!((x[0] - x_true[0]).abs() < 1e-9);
        assert!((x[1] - x_true[1]).abs() < 1e-9);
    }

    #[test]
    fn zero_rows_get_unit_scale() {
        let a = CscMatrix::from_triplets(2, 2, &[(0, 0, 2.0)]).unwrap();
        let eq = equilibrate(&a);
        assert_eq!(eq.row_scale[1], 1.0);
        assert_eq!(eq.col_scale[1], 1.0);
    }
}
