//! Sparse-matrix substrate for `parsplu`.
//!
//! This crate provides the data structures every other stage of the pipeline
//! is built on:
//!
//! * [`SparsityPattern`] — a compressed column-major index structure without
//!   values, used by the symbolic algorithms (static symbolic factorization,
//!   elimination forests, supernode detection).
//! * [`CooMatrix`], [`CscMatrix`], [`CsrMatrix`] — numeric sparse storage in
//!   triplet, compressed-column and compressed-row form.
//! * [`Permutation`] — row/column permutations with cached inverses, the
//!   currency of the ordering and postordering steps.
//! * [`io`] — Matrix Market and Harwell–Boeing readers/writers so real
//!   collection files can be substituted for the synthetic generators.
//!
//! Everything is written from scratch: no external sparse or BLAS crates.

// Index-based loops are the natural idiom for the numerical kernels and
// symbolic algorithms in this crate; iterator rewrites obscure the maths.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csc;
mod csr;
mod error;
pub mod io;
mod pattern;
mod perm;
pub mod scaling;
pub mod stats;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use pattern::SparsityPattern;
pub use perm::Permutation;

/// Infinity norm (maximum absolute entry) of a dense vector.
pub fn vec_inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Computes the backward-error numerator `‖b − A x‖∞`.
pub fn residual_inf_norm(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
    let mut r = b.to_vec();
    a.mat_vec_sub(x, &mut r);
    vec_inf_norm(&r)
}

/// Scaled residual `‖b − A x‖∞ / (‖A‖∞ ‖x‖∞ + ‖b‖∞)`.
///
/// This is the standard normalized backward error for a linear solve; values
/// around machine epsilon indicate a backward-stable solve.
pub fn relative_residual(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
    let num = residual_inf_norm(a, x, b);
    let den = a.inf_norm() * vec_inf_norm(x) + vec_inf_norm(b);
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_of_exact_solution_is_zero() {
        // A = [[2, 0], [0, 4]], x = [1, 2], b = [2, 8].
        let a = CscMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 4.0)]).unwrap();
        assert_eq!(residual_inf_norm(&a, &[1.0, 2.0], &[2.0, 8.0]), 0.0);
        assert_eq!(relative_residual(&a, &[1.0, 2.0], &[2.0, 8.0]), 0.0);
    }

    #[test]
    fn relative_residual_scales() {
        let a = CscMatrix::from_triplets(1, 1, &[(0, 0, 1.0)]).unwrap();
        // x = 0 but b = 1: residual 1, denominator ‖b‖∞ = 1.
        assert_eq!(relative_residual(&a, &[0.0], &[1.0]), 1.0);
    }

    #[test]
    fn vec_inf_norm_handles_negatives_and_empty() {
        assert_eq!(vec_inf_norm(&[]), 0.0);
        assert_eq!(vec_inf_norm(&[-3.0, 2.0]), 3.0);
    }
}
