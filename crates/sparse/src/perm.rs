//! Permutation vectors with cached inverses.

use crate::SparseError;

/// A permutation of `0..n`.
///
/// The convention follows classical sparse direct-solver codes: the forward
/// vector lists **old indices in new order**, i.e. `perm[new] = old`. For a
/// fill-reducing ordering, `perm[k]` is the original index of the `k`-th
/// pivot. The inverse satisfies `inv[old] = new`.
///
/// Applying a permutation pair `(p, q)` to a matrix yields
/// `B[i][j] = A[p[i]][q[j]]`, i.e. `B = Pᵀ A Q` in the usual algebraic
/// notation where `P e_new = e_old`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl Permutation {
    /// Identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<usize> = (0..n).collect();
        Permutation {
            inv: perm.clone(),
            perm,
        }
    }

    /// Builds a permutation from a forward vector (`perm[new] = old`).
    ///
    /// Returns an error unless `perm` is a bijection on `0..perm.len()`.
    pub fn from_vec(perm: Vec<usize>) -> Result<Self, SparseError> {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            if old >= n {
                return Err(SparseError::InvalidPermutation(format!(
                    "index {old} out of range for length {n}"
                )));
            }
            if inv[old] != usize::MAX {
                return Err(SparseError::InvalidPermutation(format!(
                    "index {old} appears twice"
                )));
            }
            inv[old] = new;
        }
        Ok(Permutation { perm, inv })
    }

    /// Number of elements permuted.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// `true` when the permutation acts on an empty index set.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// `true` when this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// Old index occupying new position `new`.
    #[inline]
    pub fn old_of(&self, new: usize) -> usize {
        self.perm[new]
    }

    /// New position of old index `old`.
    #[inline]
    pub fn new_of(&self, old: usize) -> usize {
        self.inv[old]
    }

    /// The forward vector (`perm[new] = old`).
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// The inverse vector (`inv[old] = new`).
    pub fn inverse_slice(&self) -> &[usize] {
        &self.inv
    }

    /// Returns the inverse permutation as an owned [`Permutation`].
    pub fn inverse(&self) -> Permutation {
        Permutation {
            perm: self.inv.clone(),
            inv: self.perm.clone(),
        }
    }

    /// Composition `self ∘ other`: applying the result is equivalent to
    /// applying `other` first, then `self`.
    ///
    /// In vector form: `result[new] = other.old_of(self.old_of(new))`.
    /// This matches permuting a matrix first by `other`, then by `self`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "length mismatch in compose");
        let perm: Vec<usize> = (0..self.len())
            .map(|new| other.old_of(self.old_of(new)))
            .collect();
        Permutation::from_vec(perm).expect("composition of bijections is a bijection")
    }

    /// Parity of the permutation: `true` when it decomposes into an even
    /// number of transpositions (i.e. `sign = +1`).
    pub fn is_even(&self) -> bool {
        // Count cycles: parity = (n - #cycles) mod 2.
        let n = self.len();
        let mut seen = vec![false; n];
        let mut transpositions = 0usize;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut x = start;
            while !seen[x] {
                seen[x] = true;
                x = self.perm[x];
                len += 1;
            }
            transpositions += len - 1;
        }
        transpositions.is_multiple_of(2)
    }

    /// Gathers `x` into new order: `out[new] = x[perm[new]]`.
    pub fn apply_vec<T: Copy>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len());
        self.perm.iter().map(|&old| x[old]).collect()
    }

    /// Scatters `x` back to old order: `out[perm[new]] = x[new]`.
    pub fn apply_inverse_vec<T: Copy + Default>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len());
        let mut out = vec![T::default(); x.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            out[old] = x[new];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.apply_vec(&[10, 11, 12, 13]), vec![10, 11, 12, 13]);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn from_vec_rejects_non_bijections() {
        assert!(Permutation::from_vec(vec![0, 0]).is_err());
        assert!(Permutation::from_vec(vec![0, 5]).is_err());
        assert!(Permutation::from_vec(vec![2, 0, 1]).is_ok());
    }

    #[test]
    fn forward_and_inverse_agree() {
        let p = Permutation::from_vec(vec![2, 0, 3, 1]).unwrap();
        for new in 0..4 {
            assert_eq!(p.new_of(p.old_of(new)), new);
        }
        assert_eq!(p.inverse().compose(&p).as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn apply_and_unapply_are_inverse() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]).unwrap();
        let x = [5.0, 6.0, 7.0, 8.0];
        let y = p.apply_vec(&x);
        assert_eq!(y, vec![8.0, 6.0, 5.0, 7.0]);
        assert_eq!(p.apply_inverse_vec(&y), x.to_vec());
    }

    #[test]
    fn parity_matches_transposition_count() {
        assert!(Permutation::identity(5).is_even());
        // A single swap is odd.
        assert!(!Permutation::from_vec(vec![1, 0, 2]).unwrap().is_even());
        // A 3-cycle is even.
        assert!(Permutation::from_vec(vec![1, 2, 0]).unwrap().is_even());
        // Two disjoint swaps are even.
        assert!(Permutation::from_vec(vec![1, 0, 3, 2]).unwrap().is_even());
        // Parity of a composition is the product of parities.
        let p = Permutation::from_vec(vec![2, 0, 1, 3]).unwrap(); // even
        let q = Permutation::from_vec(vec![0, 1, 3, 2]).unwrap(); // odd
        assert!(!p.compose(&q).is_even());
    }

    #[test]
    fn compose_applies_right_then_left() {
        // q: rotate left, p: swap first two.
        let q = Permutation::from_vec(vec![1, 2, 0]).unwrap();
        let p = Permutation::from_vec(vec![1, 0, 2]).unwrap();
        let pq = p.compose(&q);
        let x = [10, 20, 30];
        assert_eq!(pq.apply_vec(&x), p.apply_vec(&q.apply_vec(&x)));
    }
}
