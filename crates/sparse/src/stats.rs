//! Structural statistics of sparse matrices: bandwidth, profile, symmetry.

use crate::{CscMatrix, SparsityPattern};

/// Summary statistics of a matrix's structure and values.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Stored entries.
    pub nnz: usize,
    /// Average entries per column.
    pub mean_col_nnz: f64,
    /// Maximum entries in any column.
    pub max_col_nnz: usize,
    /// Maximum `|i − j|` over stored entries.
    pub bandwidth: usize,
    /// Sum over columns of the distance from the first entry to the
    /// diagonal (the Jennings profile, lower part).
    pub profile: usize,
    /// Fraction of off-diagonal entries whose transpose position is also
    /// present (1.0 = structurally symmetric).
    pub structural_symmetry: f64,
    /// Fraction of structurally matched pairs with equal values
    /// (1.0 on a numerically symmetric matrix).
    pub numerical_symmetry: f64,
    /// `true` when every diagonal position is present.
    pub zero_free_diagonal: bool,
}

/// Computes structural statistics of a pattern (value-based fields are set
/// to the structural ones).
pub fn pattern_stats(p: &SparsityPattern) -> MatrixStats {
    let nnz = p.nnz();
    let ncols = p.ncols();
    let mut bandwidth = 0usize;
    let mut profile = 0usize;
    let mut max_col = 0usize;
    for j in 0..ncols {
        let col = p.col(j);
        max_col = max_col.max(col.len());
        for &i in col {
            bandwidth = bandwidth.max(i.abs_diff(j));
        }
        if let Some(&last) = col.last() {
            if last > j {
                profile += last - j;
            }
        }
    }
    let mut matched = 0usize;
    let mut offdiag = 0usize;
    for (i, j) in p.entries() {
        if i != j {
            offdiag += 1;
            if p.contains(j, i) {
                matched += 1;
            }
        }
    }
    let sym = if offdiag == 0 {
        1.0
    } else {
        matched as f64 / offdiag as f64
    };
    MatrixStats {
        nrows: p.nrows(),
        ncols,
        nnz,
        mean_col_nnz: if ncols == 0 {
            0.0
        } else {
            nnz as f64 / ncols as f64
        },
        max_col_nnz: max_col,
        bandwidth,
        profile,
        structural_symmetry: sym,
        numerical_symmetry: sym,
        zero_free_diagonal: p.has_zero_free_diagonal(),
    }
}

/// Computes full statistics of a numeric matrix.
pub fn matrix_stats(a: &CscMatrix) -> MatrixStats {
    let mut s = pattern_stats(a.pattern());
    let mut matched = 0usize;
    let mut equal = 0usize;
    for (i, j, v) in a.triplets() {
        if i != j && a.pattern().contains(j, i) {
            matched += 1;
            if (a.get(j, i) - v).abs() <= 1e-14 * v.abs().max(1.0) {
                equal += 1;
            }
        }
    }
    s.numerical_symmetry = if matched == 0 {
        1.0
    } else {
        equal as f64 / matched as f64
    };
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_a_tridiagonal_matrix() {
        let n = 5;
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, i, 2.0));
            if i + 1 < n {
                trips.push((i + 1, i, -1.0));
                trips.push((i, i + 1, -1.0));
            }
        }
        let a = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let s = matrix_stats(&a);
        assert_eq!(s.bandwidth, 1);
        assert_eq!(s.profile, 4);
        assert_eq!(s.max_col_nnz, 3);
        assert!((s.structural_symmetry - 1.0).abs() < 1e-15);
        assert!((s.numerical_symmetry - 1.0).abs() < 1e-15);
        assert!(s.zero_free_diagonal);
    }

    #[test]
    fn unsymmetric_values_are_detected() {
        let a =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0), (0, 1, 3.0), (1, 0, -3.0)])
                .unwrap();
        let s = matrix_stats(&a);
        assert!((s.structural_symmetry - 1.0).abs() < 1e-15);
        assert_eq!(s.numerical_symmetry, 0.0);
    }

    #[test]
    fn structurally_unsymmetric() {
        let a =
            CscMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (0, 2, 5.0)])
                .unwrap();
        let s = matrix_stats(&a);
        assert_eq!(s.structural_symmetry, 0.0);
        assert_eq!(s.bandwidth, 2);
    }

    #[test]
    fn empty_matrix() {
        let s = pattern_stats(&SparsityPattern::empty(0, 0));
        assert_eq!(s.nnz, 0);
        assert_eq!(s.bandwidth, 0);
        assert_eq!(s.structural_symmetry, 1.0);
    }
}
