//! Compressed sparse row matrices — used where row-wise traversal dominates
//! (static symbolic factorization walks rows, not columns).

use crate::{CscMatrix, SparseError};

/// A numeric sparse matrix in compressed-row form.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a matrix from `(row, col, value)` triplets, summing duplicates.
    pub fn from_triplets_iter<I>(
        nrows: usize,
        ncols: usize,
        triplets: I,
    ) -> Result<Self, SparseError>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        // Reuse the CSC constructor on the transposed coordinates, then
        // reinterpret: a CSC of Aᵀ has exactly the arrays of a CSR of A.
        let t = CscMatrix::from_triplets_iter(
            ncols,
            nrows,
            triplets.into_iter().map(|(r, c, v)| (c, r, v)),
        )?;
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr: t.pattern().col_ptr().to_vec(),
            col_idx: t.pattern().row_indices().to_vec(),
            values: t.values().to_vec(),
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i` (columns strictly increasing).
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Value at `(i, j)`, zero when not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Row pointer array (length `nrows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Conversion to compressed-column form.
    pub fn to_csc(&self) -> CscMatrix {
        CscMatrix::from_triplets_iter(
            self.nrows,
            self.ncols,
            (0..self.nrows).flat_map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
            }),
        )
        .expect("valid matrix converts")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_csc_roundtrip() {
        let a = CscMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        let r = a.to_csr();
        assert_eq!(r.nnz(), 3);
        assert_eq!(r.get(0, 2), 2.0);
        assert_eq!(r.get(1, 0), 0.0);
        let (cols, vals) = r.row(0);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[1.0, 2.0]);
        assert_eq!(r.to_csc(), a);
    }

    #[test]
    fn duplicates_are_summed() {
        let r = CsrMatrix::from_triplets_iter(1, 1, vec![(0, 0, 1.0), (0, 0, 4.0)]).unwrap();
        assert_eq!(r.get(0, 0), 5.0);
        assert_eq!(r.nnz(), 1);
        assert_eq!(r.row_ptr(), &[0, 1]);
    }

    #[test]
    fn dims_reported() {
        let r = CsrMatrix::from_triplets_iter(2, 5, std::iter::empty()).unwrap();
        assert_eq!((r.nrows(), r.ncols(), r.nnz()), (2, 5, 0));
    }
}
