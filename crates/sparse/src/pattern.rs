//! Compressed column-major sparsity patterns (structure without values).

use crate::{Permutation, SparseError};

/// A column-compressed sparsity pattern.
///
/// Rows within each column are stored strictly increasing. This is the
/// structure type consumed by every symbolic algorithm in the workspace
/// (orderings, static symbolic factorization, elimination forests,
/// supernode detection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl SparsityPattern {
    /// Builds a pattern from raw compressed-column arrays, validating the
    /// invariants (monotone pointers, strictly increasing in-column rows,
    /// rows in range).
    pub fn new(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
    ) -> Result<Self, SparseError> {
        if col_ptr.len() != ncols + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "col_ptr length {} != ncols + 1 = {}",
                col_ptr.len(),
                ncols + 1
            )));
        }
        if col_ptr[0] != 0 || *col_ptr.last().unwrap() != row_idx.len() {
            return Err(SparseError::InvalidStructure(
                "col_ptr endpoints do not bracket row_idx".into(),
            ));
        }
        for j in 0..ncols {
            if col_ptr[j] > col_ptr[j + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "col_ptr not monotone at column {j}"
                )));
            }
            let col = &row_idx[col_ptr[j]..col_ptr[j + 1]];
            for w in col.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "rows not strictly increasing in column {j}"
                    )));
                }
            }
            if let Some(&last) = col.last() {
                if last >= nrows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: last,
                        col: j,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(SparsityPattern {
            nrows,
            ncols,
            col_ptr,
            row_idx,
        })
    }

    /// Builds a pattern from compressed-column arrays **known** to satisfy
    /// the invariants (monotone pointers bracketing `row_idx`, strictly
    /// increasing in-range rows per column).
    ///
    /// The hot symbolic assembly paths construct multi-million-entry
    /// patterns whose sortedness holds by construction (counting scatters,
    /// branch walks); this constructor skips the release-mode re-validation
    /// scan that [`Self::new`] performs. Debug builds still validate fully,
    /// so the test-suite keeps the invariants honest.
    ///
    /// # Panics
    /// Debug builds panic when the invariants do not hold. Release builds
    /// accept the arrays as-is — callers must guarantee them.
    pub fn from_sorted_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
    ) -> Self {
        if cfg!(debug_assertions) {
            return SparsityPattern::new(nrows, ncols, col_ptr, row_idx)
                .expect("from_sorted_parts invariants violated");
        }
        SparsityPattern {
            nrows,
            ncols,
            col_ptr,
            row_idx,
        }
    }

    /// Pattern with no entries.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        SparsityPattern {
            nrows,
            ncols,
            col_ptr: vec![0; ncols + 1],
            row_idx: Vec::new(),
        }
    }

    /// The `n × n` identity pattern.
    pub fn identity(n: usize) -> Self {
        SparsityPattern {
            nrows: n,
            ncols: n,
            col_ptr: (0..=n).collect(),
            row_idx: (0..n).collect(),
        }
    }

    /// Builds a pattern from unsorted `(row, col)` entries; duplicates are
    /// merged.
    pub fn from_entries<I>(nrows: usize, ncols: usize, entries: I) -> Result<Self, SparseError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut per_col: Vec<Vec<usize>> = vec![Vec::new(); ncols];
        for (r, c) in entries {
            if r >= nrows || c >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows,
                    ncols,
                });
            }
            per_col[c].push(r);
        }
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::new();
        col_ptr.push(0);
        for col in &mut per_col {
            col.sort_unstable();
            col.dedup();
            row_idx.extend_from_slice(col);
            col_ptr.push(row_idx.len());
        }
        Ok(SparsityPattern {
            nrows,
            ncols,
            col_ptr,
            row_idx,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// `true` for square patterns.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Row indices of column `j`, strictly increasing.
    #[inline]
    pub fn col(&self, j: usize) -> &[usize] {
        &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]]
    }

    /// Column pointer array (length `ncols + 1`).
    #[inline]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Concatenated row indices.
    #[inline]
    pub fn row_indices(&self) -> &[usize] {
        &self.row_idx
    }

    /// `true` if entry `(i, j)` is structurally present (binary search).
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.col(j).binary_search(&i).is_ok()
    }

    /// Iterator over all `(row, col)` entries in column-major order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.ncols).flat_map(move |j| self.col(j).iter().map(move |&i| (i, j)))
    }

    /// `true` when every diagonal entry `(i, i)` is present.
    pub fn has_zero_free_diagonal(&self) -> bool {
        self.is_square() && (0..self.ncols).all(|j| self.contains(j, j))
    }

    /// Transposed pattern (a column-compressed view of the rows).
    pub fn transpose(&self) -> SparsityPattern {
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.row_idx {
            counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let col_ptr = counts.clone();
        let mut next = counts;
        let mut row_idx = vec![0usize; self.nnz()];
        for j in 0..self.ncols {
            for &r in self.col(j) {
                row_idx[next[r]] = j;
                next[r] += 1;
            }
        }
        // Columns of the transpose are filled in increasing j, so they are
        // already sorted.
        SparsityPattern {
            nrows: self.ncols,
            ncols: self.nrows,
            col_ptr,
            row_idx,
        }
    }

    /// Pattern of `AᵀA` (square, `ncols × ncols`), including the diagonal.
    ///
    /// Entry `(i, j)` is present iff columns `i` and `j` of `A` share a row.
    /// This is the graph the column minimum-degree ordering runs on, exactly
    /// as SuperLU orders the column elimination tree's matrix.
    pub fn ata(&self) -> SparsityPattern {
        let at = self.transpose();
        let n = self.ncols;
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        col_ptr.push(0);
        let mut mark = vec![usize::MAX; n];
        let mut scratch: Vec<usize> = Vec::new();
        for j in 0..n {
            scratch.clear();
            // Union of all rows of Aᵀ (i.e. columns of A) that intersect
            // column j of A.
            mark[j] = j;
            scratch.push(j);
            for &r in self.col(j) {
                for &c in at.col(r) {
                    if mark[c] != j {
                        mark[c] = j;
                        scratch.push(c);
                    }
                }
            }
            scratch.sort_unstable();
            row_idx.extend_from_slice(&scratch);
            col_ptr.push(row_idx.len());
        }
        SparsityPattern {
            nrows: n,
            ncols: n,
            col_ptr,
            row_idx,
        }
    }

    /// Entry-wise union of two patterns with identical dimensions.
    pub fn union(&self, other: &SparsityPattern) -> SparsityPattern {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut col_ptr = Vec::with_capacity(self.ncols + 1);
        let mut row_idx = Vec::new();
        col_ptr.push(0);
        for j in 0..self.ncols {
            let (a, b) = (self.col(j), other.col(j));
            let (mut ia, mut ib) = (0, 0);
            while ia < a.len() || ib < b.len() {
                let next = match (a.get(ia), b.get(ib)) {
                    (Some(&x), Some(&y)) if x == y => {
                        ia += 1;
                        ib += 1;
                        x
                    }
                    (Some(&x), Some(&y)) if x < y => {
                        ia += 1;
                        x
                    }
                    (Some(_), Some(&y)) => {
                        ib += 1;
                        y
                    }
                    (Some(&x), None) => {
                        ia += 1;
                        x
                    }
                    (None, Some(&y)) => {
                        ib += 1;
                        y
                    }
                    (None, None) => unreachable!(),
                };
                row_idx.push(next);
            }
            col_ptr.push(row_idx.len());
        }
        SparsityPattern {
            nrows: self.nrows,
            ncols: self.ncols,
            col_ptr,
            row_idx,
        }
    }

    /// Permuted pattern `B[i][j] = A[rp[i]][cp[j]]` (see [`Permutation`] for
    /// the vector convention).
    pub fn permuted(&self, row_perm: &Permutation, col_perm: &Permutation) -> SparsityPattern {
        assert_eq!(row_perm.len(), self.nrows, "row permutation length");
        assert_eq!(col_perm.len(), self.ncols, "column permutation length");
        let mut col_ptr = Vec::with_capacity(self.ncols + 1);
        let mut row_idx = Vec::with_capacity(self.nnz());
        col_ptr.push(0);
        let mut scratch: Vec<usize> = Vec::new();
        for new_j in 0..self.ncols {
            let old_j = col_perm.old_of(new_j);
            scratch.clear();
            scratch.extend(self.col(old_j).iter().map(|&old_i| row_perm.new_of(old_i)));
            scratch.sort_unstable();
            row_idx.extend_from_slice(&scratch);
            col_ptr.push(row_idx.len());
        }
        SparsityPattern {
            nrows: self.nrows,
            ncols: self.ncols,
            col_ptr,
            row_idx,
        }
    }

    /// The lower-triangular part (diagonal included).
    pub fn lower(&self) -> SparsityPattern {
        SparsityPattern::from_entries(
            self.nrows,
            self.ncols,
            self.entries().filter(|&(i, j)| i >= j),
        )
        .expect("subset of a valid pattern")
    }

    /// The upper-triangular part (diagonal included).
    pub fn upper(&self) -> SparsityPattern {
        SparsityPattern::from_entries(
            self.nrows,
            self.ncols,
            self.entries().filter(|&(i, j)| i <= j),
        )
        .expect("subset of a valid pattern")
    }

    /// `true` when no entry lies strictly above the diagonal.
    pub fn is_lower_triangular(&self) -> bool {
        self.entries().all(|(i, j)| i >= j)
    }

    /// `true` when no entry lies strictly below the diagonal.
    pub fn is_upper_triangular(&self) -> bool {
        self.entries().all(|(i, j)| i <= j)
    }

    /// Dense boolean dump (row-major), for tests and tiny examples.
    pub fn to_dense(&self) -> Vec<Vec<bool>> {
        let mut d = vec![vec![false; self.ncols]; self.nrows];
        for (i, j) in self.entries() {
            d[i][j] = true;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparsityPattern {
        // 3x4:
        // x . x .
        // . x x .
        // x . . x
        SparsityPattern::from_entries(3, 4, vec![(0, 0), (2, 0), (1, 1), (0, 2), (1, 2), (2, 3)])
            .unwrap()
    }

    #[test]
    fn from_entries_sorts_and_dedups() {
        let p = SparsityPattern::from_entries(3, 2, vec![(2, 0), (0, 0), (2, 0), (1, 1)]).unwrap();
        assert_eq!(p.col(0), &[0, 2]);
        assert_eq!(p.col(1), &[1]);
        assert_eq!(p.nnz(), 3);
    }

    #[test]
    fn new_validates_invariants() {
        assert!(SparsityPattern::new(2, 2, vec![0, 1, 2], vec![0, 1]).is_ok());
        // unsorted rows in column
        assert!(SparsityPattern::new(2, 1, vec![0, 2], vec![1, 0]).is_err());
        // row out of range
        assert!(SparsityPattern::new(2, 1, vec![0, 1], vec![5]).is_err());
        // wrong col_ptr length
        assert!(SparsityPattern::new(2, 2, vec![0, 1], vec![0]).is_err());
        // non-monotone col_ptr
        assert!(SparsityPattern::new(2, 2, vec![0, 2, 1], vec![0, 1]).is_err());
    }

    #[test]
    fn contains_and_entries() {
        let p = small();
        assert!(p.contains(0, 0));
        assert!(!p.contains(1, 0));
        assert_eq!(p.entries().count(), p.nnz());
    }

    #[test]
    fn transpose_is_involutive() {
        let p = small();
        let t = p.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert!(t.contains(0, 0) && t.contains(3, 2));
        assert_eq!(t.transpose(), p);
    }

    #[test]
    fn ata_matches_bruteforce() {
        let p = small();
        let ata = p.ata();
        for i in 0..4 {
            for j in 0..4 {
                let expect = i == j || (0..3).any(|r| p.contains(r, i) && p.contains(r, j));
                assert_eq!(ata.contains(i, j), expect, "({i},{j})");
            }
        }
        assert!(ata.has_zero_free_diagonal());
    }

    #[test]
    fn union_merges_sorted() {
        let a = SparsityPattern::from_entries(3, 1, vec![(0, 0), (2, 0)]).unwrap();
        let b = SparsityPattern::from_entries(3, 1, vec![(1, 0), (2, 0)]).unwrap();
        assert_eq!(a.union(&b).col(0), &[0, 1, 2]);
    }

    #[test]
    fn permuted_matches_definition() {
        let p = small();
        let rp = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let cp = Permutation::from_vec(vec![1, 3, 0, 2]).unwrap();
        let b = p.permuted(&rp, &cp);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(b.contains(i, j), p.contains(rp.old_of(i), cp.old_of(j)));
            }
        }
    }

    #[test]
    fn triangular_parts_partition_the_pattern() {
        let p = SparsityPattern::from_entries(
            3,
            3,
            vec![(0, 0), (2, 0), (0, 2), (1, 1), (2, 2), (1, 2)],
        )
        .unwrap();
        let lo = p.lower();
        let up = p.upper();
        assert!(lo.is_lower_triangular());
        assert!(up.is_upper_triangular());
        // lower ∪ upper = pattern; intersection = diagonal part.
        assert_eq!(lo.union(&up), p);
        assert_eq!(lo.nnz() + up.nnz() - 3, p.nnz());
        assert!(!p.is_lower_triangular());
        assert!(!p.is_upper_triangular());
        assert!(SparsityPattern::identity(4).is_lower_triangular());
        assert!(SparsityPattern::identity(4).is_upper_triangular());
    }

    #[test]
    fn identity_and_zero_free_diagonal() {
        assert!(SparsityPattern::identity(5).has_zero_free_diagonal());
        assert!(!small().has_zero_free_diagonal()); // not square
        let sq = SparsityPattern::from_entries(2, 2, vec![(0, 0), (0, 1)]).unwrap();
        assert!(!sq.has_zero_free_diagonal());
    }
}
