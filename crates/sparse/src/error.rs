//! Error type shared by the sparse substrate.

use std::fmt;

/// Errors produced while constructing or parsing sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An index was outside the matrix dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows of the matrix.
        nrows: usize,
        /// Number of columns of the matrix.
        ncols: usize,
    },
    /// A compressed structure was internally inconsistent.
    InvalidStructure(String),
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation(String),
    /// A file could not be parsed.
    Parse(String),
    /// A file could not be parsed, with the 1-based source line and the
    /// offending token — the precise form the file readers emit for
    /// malformed entries (bad tokens, non-finite values, out-of-range
    /// indices).
    ParseAt {
        /// 1-based line number in the source text.
        line: usize,
        /// The offending token, verbatim.
        token: String,
        /// What was wrong with it.
        msg: String,
    },
    /// An I/O error occurred (message only, to keep the type `Eq`).
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) outside matrix dimensions {nrows}x{ncols}"
            ),
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
            SparseError::Parse(msg) => write!(f, "parse error: {msg}"),
            SparseError::ParseAt { line, token, msg } => {
                write!(f, "parse error at line {line}: {msg} (`{token}`)")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 1,
            nrows: 3,
            ncols: 3,
        };
        let s = e.to_string();
        assert!(s.contains("(5, 1)") && s.contains("3x3"));
        assert!(SparseError::Parse("bad".into()).to_string().contains("bad"));
        let at = SparseError::ParseAt {
            line: 12,
            token: "nan".into(),
            msg: "non-finite value".into(),
        };
        let s = at.to_string();
        assert!(s.contains("line 12") && s.contains("`nan`") && s.contains("non-finite"));
    }
}
