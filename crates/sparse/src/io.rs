//! Matrix file formats: Matrix Market and Harwell–Boeing.
//!
//! The paper's experiments use matrices from the Harwell–Boeing collection
//! and Tim Davis's (then ftp-hosted) collection. Those files are not shipped
//! with this repository, so the benchmark harness uses the synthetic
//! generators in `splu-matgen`; these readers exist so the real files can be
//! dropped in when available (see DESIGN.md §5).

use std::fs;
use std::path::Path;

use crate::{CooMatrix, CscMatrix, SparseError};

/// Reads a Matrix Market file (`coordinate real/integer/pattern`,
/// `general`/`symmetric`/`skew-symmetric`).
///
/// Pattern entries get value `1.0`; symmetric storage is expanded.
pub fn read_matrix_market(path: &Path) -> Result<CscMatrix, SparseError> {
    let text = fs::read_to_string(path)?;
    parse_matrix_market(&text)
}

/// A [`SparseError::ParseAt`] pinned to a 1-based source line and token.
fn tok_err(line: usize, token: &str, msg: &str) -> SparseError {
    SparseError::ParseAt {
        line,
        token: token.to_string(),
        msg: msg.to_string(),
    }
}

/// Parses Matrix Market text. See [`read_matrix_market`].
///
/// Malformed entry lines are rejected with [`SparseError::ParseAt`] naming
/// the 1-based line and offending token; non-finite values (`nan`, `inf` —
/// which `f64` parsing would otherwise accept) and out-of-range indices are
/// rejected the same way.
pub fn parse_matrix_market(text: &str) -> Result<CscMatrix, SparseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, header) = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))?;
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket") {
        return Err(SparseError::Parse("missing MatrixMarket banner".into()));
    }
    let toks: Vec<&str> = header_lc.split_whitespace().collect();
    if toks.len() < 5 || toks[1] != "matrix" || toks[2] != "coordinate" {
        return Err(SparseError::Parse(
            "only `matrix coordinate` files are supported".into(),
        ));
    }
    let field = toks[3];
    let symmetry = toks[4];
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(SparseError::Parse(format!("unsupported field `{field}`")));
    }
    if !matches!(symmetry, "general" | "symmetric" | "skew-symmetric") {
        return Err(SparseError::Parse(format!(
            "unsupported symmetry `{symmetry}`"
        )));
    }

    let mut data = lines.filter(|(_, l)| !l.trim_start().starts_with('%') && !l.trim().is_empty());
    let (size_ln, size_line) = data
        .next()
        .ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| tok_err(size_ln, t, "bad size token"))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(tok_err(
            size_ln,
            size_line.trim(),
            "size line must have 3 fields",
        ));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for (ln, line) in data {
        let mut it = line.split_whitespace();
        let r_tok = it
            .next()
            .ok_or_else(|| tok_err(ln, line.trim(), "missing row index"))?;
        let r: usize = r_tok
            .parse()
            .map_err(|_| tok_err(ln, r_tok, "bad row index"))?;
        let c_tok = it
            .next()
            .ok_or_else(|| tok_err(ln, line.trim(), "missing column index"))?;
        let c: usize = c_tok
            .parse()
            .map_err(|_| tok_err(ln, c_tok, "bad column index"))?;
        let v: f64 = if field == "pattern" {
            1.0
        } else {
            let v_tok = it
                .next()
                .ok_or_else(|| tok_err(ln, line.trim(), "missing value"))?;
            let v: f64 = v_tok.parse().map_err(|_| tok_err(ln, v_tok, "bad value"))?;
            if !v.is_finite() {
                return Err(tok_err(ln, v_tok, "non-finite value (NaN/Inf rejected)"));
            }
            v
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(tok_err(
                ln,
                line.trim(),
                &format!("1-based entry indices outside the declared {nrows}x{ncols} shape"),
            ));
        }
        let (r, c) = (r - 1, c - 1);
        coo.push(r, c, v);
        match symmetry {
            "symmetric" if r != c => coo.push(c, r, v),
            "skew-symmetric" if r != c => coo.push(c, r, -v),
            _ => {}
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok(coo.to_csc())
}

/// Writes a matrix in Matrix Market `coordinate real general` format.
pub fn write_matrix_market(m: &CscMatrix, path: &Path) -> Result<(), SparseError> {
    Ok(fs::write(path, format_matrix_market(m))?)
}

/// Formats a matrix as Matrix Market text. See [`write_matrix_market`].
pub fn format_matrix_market(m: &CscMatrix) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("%%MatrixMarket matrix coordinate real general\n");
    let _ = writeln!(out, "{} {} {}", m.nrows(), m.ncols(), m.nnz());
    for (i, j, v) in m.triplets() {
        let _ = writeln!(out, "{} {} {:.17e}", i + 1, j + 1, v);
    }
    out
}

/// A parsed Fortran edit descriptor like `(16I5)` or `(4E20.12)`.
struct FortranFormat {
    /// Field width in characters.
    width: usize,
}

fn parse_fortran_format(spec: &str) -> Result<FortranFormat, SparseError> {
    // Accept shapes like (16I5), (4E20.12), (1P5D16.8), (10I8), (3(1P,E25.16)).
    let s: String = spec
        .trim()
        .trim_start_matches('(')
        .trim_end_matches(')')
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    // Find the conversion character (I, E, D, F, G) scanning left to right,
    // skipping scale factors like `1P`.
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i].to_ascii_uppercase();
        if matches!(c, b'I' | b'E' | b'D' | b'F' | b'G') {
            // Width is the integer right after the conversion char.
            let rest = &s[i + 1..];
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            let width: usize = digits
                .parse()
                .map_err(|_| SparseError::Parse(format!("bad format `{spec}`")))?;
            if width == 0 {
                return Err(SparseError::Parse(format!("zero width in `{spec}`")));
            }
            return Ok(FortranFormat { width });
        }
        i += 1;
    }
    Err(SparseError::Parse(format!(
        "no conversion character in format `{spec}`"
    )))
}

/// Extracts `count` fixed-width fields from consecutive `lines`.
fn read_fixed_fields<'a, I>(
    lines: &mut I,
    fmt: &FortranFormat,
    count: usize,
) -> Result<Vec<String>, SparseError>
where
    I: Iterator<Item = &'a str>,
{
    let mut fields = Vec::with_capacity(count);
    while fields.len() < count {
        let line = lines
            .next()
            .ok_or_else(|| SparseError::Parse("unexpected end of file".into()))?;
        let chars: Vec<char> = line.chars().collect();
        let mut pos = 0;
        while pos < chars.len() && fields.len() < count {
            let end = (pos + fmt.width).min(chars.len());
            let field: String = chars[pos..end].iter().collect();
            if !field.trim().is_empty() {
                fields.push(field.trim().to_string());
            }
            pos = end;
        }
    }
    Ok(fields)
}

/// Reads a Harwell–Boeing (`*.rua` / `*.rsa`) matrix file.
///
/// Supports real assembled matrices (`RUA`, `RSA`, `RUS`-style type codes
/// beginning `R?A`); symmetric storage is expanded. Right-hand sides, if
/// present, are ignored.
pub fn read_harwell_boeing(path: &Path) -> Result<CscMatrix, SparseError> {
    let text = fs::read_to_string(path)?;
    parse_harwell_boeing(&text)
}

/// Parses Harwell–Boeing text. See [`read_harwell_boeing`].
pub fn parse_harwell_boeing(text: &str) -> Result<CscMatrix, SparseError> {
    let mut lines = text.lines();
    let _title = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))?;
    let card_line = lines
        .next()
        .ok_or_else(|| SparseError::Parse("missing card-count line".into()))?;
    let cards: Vec<usize> = card_line
        .split_whitespace()
        .take(5)
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| SparseError::Parse(format!("bad card count `{t}`")))
        })
        .collect::<Result<_, _>>()?;
    if cards.len() < 4 {
        return Err(SparseError::Parse("short card-count line".into()));
    }
    let valcrd = cards[3];

    let type_line = lines
        .next()
        .ok_or_else(|| SparseError::Parse("missing type line".into()))?;
    let mut tl = type_line.split_whitespace();
    let mxtype = tl
        .next()
        .ok_or_else(|| SparseError::Parse("missing matrix type".into()))?
        .to_ascii_uppercase();
    let dims: Vec<usize> = tl
        .take(3)
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| SparseError::Parse(format!("bad dimension `{t}`")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() < 3 {
        return Err(SparseError::Parse("short type line".into()));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    let mut ty = mxtype.chars();
    let value_type = ty.next().unwrap_or('R');
    let symmetry = ty.next().unwrap_or('U');
    let assembled = ty.next().unwrap_or('A');
    if assembled != 'A' {
        return Err(SparseError::Parse("elemental matrices unsupported".into()));
    }
    if !matches!(value_type, 'R' | 'P') {
        return Err(SparseError::Parse(format!(
            "unsupported value type `{value_type}`"
        )));
    }

    let fmt_line = lines
        .next()
        .ok_or_else(|| SparseError::Parse("missing format line".into()))?;
    // The format line contains 3-4 parenthesized descriptors; split on ')'.
    let specs: Vec<String> = fmt_line
        .split(')')
        .filter(|s| s.contains('('))
        .map(|s| format!("{s})"))
        .collect();
    if specs.len() < 2 {
        return Err(SparseError::Parse("format line too short".into()));
    }
    let ptr_fmt = parse_fortran_format(&specs[0])?;
    let ind_fmt = parse_fortran_format(&specs[1])?;
    let val_fmt = if specs.len() > 2 && valcrd > 0 {
        Some(parse_fortran_format(&specs[2])?)
    } else {
        None
    };
    // Skip optional RHS descriptor line (present when rhscrd > 0).
    if cards.len() >= 5 && cards[4] > 0 {
        lines
            .next()
            .ok_or_else(|| SparseError::Parse("missing RHS format line".into()))?;
    }

    let ptr_fields = read_fixed_fields(&mut lines, &ptr_fmt, ncols + 1)?;
    let ind_fields = read_fixed_fields(&mut lines, &ind_fmt, nnz)?;
    let col_ptr: Vec<usize> = ptr_fields
        .iter()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| SparseError::Parse(format!("bad pointer `{t}`")))
        })
        .collect::<Result<_, _>>()?;
    let row_idx: Vec<usize> = ind_fields
        .iter()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| SparseError::Parse(format!("bad index `{t}`")))
        })
        .collect::<Result<_, _>>()?;
    let values: Vec<f64> = if let Some(vf) = &val_fmt {
        read_fixed_fields(&mut lines, vf, nnz)?
            .iter()
            .map(|t| {
                let v = t
                    .replace(['D', 'd'], "E")
                    .parse::<f64>()
                    .map_err(|_| SparseError::Parse(format!("bad value `{t}`")))?;
                if !v.is_finite() {
                    return Err(SparseError::Parse(format!(
                        "non-finite value `{t}` (NaN/Inf rejected)"
                    )));
                }
                Ok(v)
            })
            .collect::<Result<_, _>>()?
    } else {
        vec![1.0; nnz]
    };

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz * 2);
    for j in 0..ncols {
        let lo = col_ptr[j]
            .checked_sub(1)
            .ok_or_else(|| SparseError::Parse("zero column pointer".into()))?;
        let hi = col_ptr[j + 1] - 1;
        if hi > nnz || lo > hi {
            return Err(SparseError::Parse("inconsistent column pointers".into()));
        }
        for k in lo..hi {
            let i = row_idx[k]
                .checked_sub(1)
                .ok_or_else(|| SparseError::Parse("zero row index".into()))?;
            coo.push(i, j, values[k]);
            if symmetry == 'S' && i != j {
                coo.push(j, i, values[k]);
            }
            if symmetry == 'Z' && i != j {
                coo.push(j, i, -values[k]);
            }
        }
    }
    Ok(coo.to_csc())
}

/// Writes a matrix as a Harwell–Boeing `RUA` (real, unsymmetric,
/// assembled) file.
pub fn write_harwell_boeing(m: &CscMatrix, title: &str, path: &Path) -> Result<(), SparseError> {
    Ok(fs::write(path, format_harwell_boeing(m, title))?)
}

/// Formats a matrix as Harwell–Boeing `RUA` text. See
/// [`write_harwell_boeing`].
pub fn format_harwell_boeing(m: &CscMatrix, title: &str) -> String {
    use std::fmt::Write;
    let ncols = m.ncols();
    let nnz = m.nnz();
    // Fixed formats: pointers/indices as I10 (8 per line), values as
    // E24.16 (3 per line) — wide enough for any index and full precision.
    let per_line_int = 8usize;
    let per_line_val = 3usize;
    let ptrcrd = (ncols + 1).div_ceil(per_line_int);
    let indcrd = nnz.div_ceil(per_line_int);
    let valcrd = nnz.div_ceil(per_line_val);
    let totcrd = ptrcrd + indcrd + valcrd;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<72}{:<8}",
        title.chars().take(72).collect::<String>(),
        "parsplu"
    );
    let _ = writeln!(
        out,
        "{totcrd:>14}{ptrcrd:>14}{indcrd:>14}{valcrd:>14}{:>14}",
        0
    );
    let _ = writeln!(
        out,
        "{:<14}{:>14}{:>14}{:>14}{:>14}",
        "RUA",
        m.nrows(),
        ncols,
        nnz,
        0
    );
    let _ = writeln!(out, "{:<16}{:<16}{:<20}", "(8I10)", "(8I10)", "(3E24.16)");

    let write_ints = |out: &mut String, vals: &mut dyn Iterator<Item = usize>| {
        let mut count = 0;
        for v in vals {
            let _ = write!(out, "{v:>10}");
            count += 1;
            if count % per_line_int == 0 {
                out.push('\n');
            }
        }
        if count % per_line_int != 0 {
            out.push('\n');
        }
    };
    // 1-based column pointers.
    let mut ptrs = m.pattern().col_ptr().iter().map(|&p| p + 1);
    write_ints(&mut out, &mut ptrs);
    let mut rows = m.pattern().row_indices().iter().map(|&r| r + 1);
    write_ints(&mut out, &mut rows);
    let mut count = 0;
    for &v in m.values() {
        let _ = write!(out, "{v:>24.16E}");
        count += 1;
        if count % per_line_val == 0 {
            out.push('\n');
        }
    }
    if count % per_line_val != 0 {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_market_roundtrip() {
        let a = CscMatrix::from_triplets(3, 2, &[(0, 0, 1.5), (2, 0, -2.0), (1, 1, 3.25)]).unwrap();
        let text = format_matrix_market(&a);
        let b = parse_matrix_market(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_market_symmetric_expansion() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    2 2 2\n\
                    1 1 4.0\n\
                    2 1 1.0\n";
        let a = parse_matrix_market(text).unwrap();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn matrix_market_pattern_and_errors() {
        let ok = "%%MatrixMarket matrix coordinate pattern general\n1 1 1\n1 1\n";
        assert_eq!(parse_matrix_market(ok).unwrap().get(0, 0), 1.0);
        assert!(parse_matrix_market("nonsense").is_err());
        let wrong_count = "%%MatrixMarket matrix coordinate real general\n1 1 2\n1 1 1.0\n";
        assert!(parse_matrix_market(wrong_count).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n1 1 1\n2 1 1.0\n";
        assert!(parse_matrix_market(oob).is_err());
    }

    /// Satellite regression: malformed Matrix Market files are rejected
    /// with [`SparseError::ParseAt`] carrying the 1-based line number and
    /// the offending token — NaN/Inf values (which `f64` parsing would
    /// accept) and out-of-range indices included.
    #[test]
    fn matrix_market_rejects_malformed_entries_with_line_and_token() {
        let cases: &[(&str, usize, &str)] = &[
            // (file text, expected line, expected token substring)
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 2.0\n2 2 nan\n",
                4,
                "nan",
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 inf\n",
                3,
                "inf",
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n% pad\n2 2 1\n1 1 -Infinity\n",
                4,
                "-Infinity",
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
                3,
                "3 1 1.0",
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n",
                3,
                "0 1 1.0",
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1.0\n",
                3,
                "x",
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
                3,
                "1 1",
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 two 1\n1 1 1.0\n",
                2,
                "two",
            ),
        ];
        for (text, want_line, want_token) in cases {
            match parse_matrix_market(text) {
                Err(SparseError::ParseAt { line, token, .. }) => {
                    assert_eq!(line, *want_line, "line for {text:?}");
                    assert!(
                        token.contains(want_token),
                        "token `{token}` misses `{want_token}` for {text:?}"
                    );
                }
                other => panic!("expected ParseAt for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn harwell_boeing_rejects_non_finite_values() {
        let text = "\
bad example                                                             bad
             4             1             1             2             0
RUA                        2             2             2             0
(6I3)           (8I3)           (4E16.8)
  1  2  3
  1  2
             NaN  1.00000000E+00
";
        let err = parse_harwell_boeing(text).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn fortran_format_parsing() {
        assert_eq!(parse_fortran_format("(16I5)").unwrap().width, 5);
        assert_eq!(parse_fortran_format("(4E20.12)").unwrap().width, 20);
        assert_eq!(parse_fortran_format("(1P5D16.8)").unwrap().width, 16);
        assert!(parse_fortran_format("(XYZ)").is_err());
    }

    #[test]
    fn harwell_boeing_tiny_rua() {
        // 3x3 matrix, columns: {(1,1)=1, (3,1)=4}, {(2,2)=3}, {(1,3)=2, (3,3)=5}
        let text = "\
tiny example                                                            tiny
             5             1             2             2             0
RUA                        3             3             5             0
(6I3)           (8I3)           (4E16.8)
  1  3  4  6
  1  3  2  1  3
  1.00000000E+00  4.00000000E+00  3.00000000E+00  2.00000000E+00  5.00000000E+00
";
        let a = parse_harwell_boeing(text).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn harwell_boeing_symmetric_expansion() {
        let text = "\
sym example                                                             sym
             4             1             1             1             0
RSA                        2             2             2             0
(6I3)           (8I3)           (4E16.8)
  1  3  3
  1  2
  2.00000000E+00 -1.00000000E+00
";
        let a = parse_harwell_boeing(text).unwrap();
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(0, 1), -1.0);
    }

    #[test]
    fn harwell_boeing_writer_roundtrips() {
        let a = CscMatrix::from_triplets(
            4,
            3,
            &[
                (0, 0, 1.5),
                (3, 0, -2.25e-7),
                (1, 1, 3.0),
                (0, 2, 4.125e9),
                (2, 2, -5.5),
            ],
        )
        .unwrap();
        let text = format_harwell_boeing(&a, "roundtrip test");
        let b = parse_harwell_boeing(&text).unwrap();
        assert_eq!(a.pattern(), b.pattern());
        for ((_, _, va), (_, _, vb)) in a.triplets().zip(b.triplets()) {
            assert!((va - vb).abs() <= 1e-15 * va.abs().max(1.0), "{va} vs {vb}");
        }
    }

    #[test]
    fn harwell_boeing_writer_handles_empty_columns() {
        let a = CscMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 2.0)]).unwrap();
        let text = format_harwell_boeing(&a, "empties");
        let b = parse_harwell_boeing(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn read_write_files() {
        let dir = std::env::temp_dir();
        let path = dir.join("parsplu_io_test.mtx");
        let a = CscMatrix::identity(4);
        write_matrix_market(&a, &path).unwrap();
        let b = read_matrix_market(&path).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_file(&path);
    }
}
