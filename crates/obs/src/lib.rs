//! Pipeline-wide observability primitives for parsplu.
//!
//! Three independent pieces, all opt-in and all free when off:
//!
//! * [`metrics`] — a lock-free registry of named monotone counters
//!   (fill entries, kernel flops, steals, perturbed columns, budget
//!   checkpoints). Counting is a relaxed atomic add; an absent registry
//!   is a `None` check.
//! * [`span`] — an epoch-aligned span recorder for the *phases* of a run
//!   (ordering, symbolic skeleton/chunks, postorder, partition, numeric,
//!   solve). Spans from every phase land on one shared epoch so a single
//!   Chrome trace shows the whole pipeline; the disabled recorder never
//!   reads the clock, preserving the scheduler's bitwise-invariance
//!   guarantee.
//! * [`alloc`] — an opt-in counting global allocator measuring live and
//!   high-water heap bytes, for per-phase peak-memory accounting.
//!
//! This crate sits below every other workspace crate and depends only on
//! std, so `splu-symbolic`, `splu-sched`, `splu-dense`, and `splu-core`
//! can all emit into the same registry and trace.

#![deny(unsafe_code)]

#[allow(unsafe_code)] // GlobalAlloc impl: thin counting shim over System.
pub mod alloc;
pub mod metrics;
pub mod span;

pub use alloc::{heap_stats, reset_heap_peak, CountingAlloc, HeapStats};
pub use metrics::{Counter, MetricsRegistry, MetricsSnapshot};
pub use span::{PipelineTrace, SpanEvent, SpanGuard, Track};
