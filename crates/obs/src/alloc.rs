//! Opt-in counting global allocator for peak-heap accounting.
//!
//! Install [`CountingAlloc`] as the binary's `#[global_allocator]` (the
//! `parsplu` CLI does this behind the `alloc-track` feature) and
//! [`heap_stats`] reports live and high-water heap bytes; the driver
//! resets the high-water mark at each phase boundary to attribute peaks
//! per phase. When no counting allocator is installed, [`heap_stats`]
//! returns `None` and the whole module costs nothing.
//!
//! The counters are relaxed atomics on the allocation path — two adds and
//! a `fetch_max` per allocation — which is measurable but small next to
//! the allocation itself; that is why installation is opt-in rather than
//! default.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Live and high-water heap byte counts from the counting allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapStats {
    /// Bytes currently allocated.
    pub current_bytes: u64,
    /// High-water mark since process start or the last
    /// [`reset_heap_peak`].
    pub peak_bytes: u64,
}

/// Heap counters, or `None` when no [`CountingAlloc`] is installed as the
/// global allocator.
pub fn heap_stats() -> Option<HeapStats> {
    if !INSTALLED.load(Ordering::Relaxed) {
        return None;
    }
    Some(HeapStats {
        current_bytes: CURRENT.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
    })
}

/// Resets the high-water mark to the current live size, so the next
/// [`heap_stats`] reports the peak *since this call* — the per-phase
/// attribution primitive. No-op without a counting allocator.
pub fn reset_heap_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// A counting wrapper over the system allocator. Install with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: splu_obs::alloc::CountingAlloc = splu_obs::alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn on_alloc(size: usize) {
        INSTALLED.store(true, Ordering::Relaxed);
        let now = CURRENT.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK.fetch_max(now, Ordering::Relaxed);
    }

    #[inline]
    fn on_dealloc(size: usize) {
        CURRENT.fetch_sub(size as u64, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Grow or shrink: account the delta against the old size.
            if new_size >= layout.size() {
                Self::on_alloc(new_size - layout.size());
            } else {
                Self::on_dealloc(layout.size() - new_size);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so stats stay None
    // and the reset is a harmless no-op — exactly the uninstrumented
    // production behavior.
    #[test]
    fn uninstalled_reports_none() {
        assert_eq!(heap_stats(), None);
        reset_heap_peak();
        assert_eq!(heap_stats(), None);
    }
}
