//! Lock-free monotone counters for the factorization pipeline.
//!
//! The registry is a fixed array of `AtomicU64`s indexed by [`Counter`];
//! recording is a single relaxed `fetch_add`, so hot loops (kernel
//! dispatch, fill chunks) can count unconditionally once they hold a
//! registry reference. Counters are *facts about the run* — entry counts,
//! flop counts, event counts — not timings; timings live in
//! [`crate::span`] and in the scheduler's own per-worker clocks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Every counter the pipeline records. The discriminant indexes the
/// registry array; `ALL` and [`Counter::name`] keep the set iterable and
/// self-describing for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Entries of the filled `L̄` pattern (diagonal included), counted at
    /// assembly. Ground truth: `Σ_j l_len(j)` from the skeleton pass.
    FillL,
    /// Entries of the filled `Ū` pattern (diagonal included), counted as
    /// fill chunks complete. Ground truth: `Σ_i u_len(i)`.
    FillU,
    /// Factor-task kernel invocations (panel factorizations).
    FactorCalls,
    /// Floating-point operations performed by factor kernels, per the
    /// cost model in `splu-core::costs`.
    FactorFlops,
    /// Triangular-solve kernel invocations (`trsm_lower_unit`).
    TrsmCalls,
    /// Flops performed by trsm kernels: `w_k·(w_k−1)·w_j` per call.
    TrsmFlops,
    /// Rank-`w_k` update kernel invocations (`gemm_sub`).
    GemmCalls,
    /// Flops performed by gemm kernels: `2·rows·w_k·w_j` per call.
    GemmFlops,
    /// Columns whose pivot was perturbed by graceful-degradation
    /// pivoting (matches `FactorHealth::perturbed.len()`).
    PerturbedColumns,
    /// Budget polls observed by the front half (ordering rounds, fill
    /// chunk boundaries) — how often a cancellation could have landed.
    BudgetCheckpoints,
    /// Serve-daemon sessions evicted under the session memory budget
    /// (LRU order; pinned in-flight sessions are never chosen).
    SessionsEvicted,
    /// Serve-daemon jobs refused with a structured `overloaded` response
    /// because their lane's bounded queue was full.
    JobsRejectedOverload,
    /// Serve-daemon client connections that ended without a clean `quit`
    /// or `shutdown` (EOF mid-stream, write failure, idle timeout).
    ConnectionsDropped,
    /// High-water mark of any serve-daemon lane's queue depth (recorded
    /// with [`MetricsRegistry::record_max`], not summed).
    QueueDepthPeak,
    /// High-water mark of the serve-daemon session pool's resident bytes
    /// (symbolic structures + panel storage + retained values), recorded
    /// after budget enforcement — staying at or below the configured
    /// budget is the eviction invariant.
    ResidentSessionBytesPeak,
    /// Sessions revived bitwise-identically from the durable journal on
    /// daemon startup (replayed `analyze` lines that produced a live
    /// session).
    SessionsReplayed,
    /// Jobs answered from the idempotency replay cache instead of being
    /// re-executed, because their `job_id` was already applied.
    JobsDedupedReplay,
    /// Records appended to the durable session journal (acknowledged
    /// mutating jobs plus compaction markers).
    JournalAppends,
    /// Journal compactions that completed (atomic snapshot + rename).
    JournalCompactions,
}

impl Counter {
    /// All counters, in registry order.
    pub const ALL: [Counter; 19] = [
        Counter::FillL,
        Counter::FillU,
        Counter::FactorCalls,
        Counter::FactorFlops,
        Counter::TrsmCalls,
        Counter::TrsmFlops,
        Counter::GemmCalls,
        Counter::GemmFlops,
        Counter::PerturbedColumns,
        Counter::BudgetCheckpoints,
        Counter::SessionsEvicted,
        Counter::JobsRejectedOverload,
        Counter::ConnectionsDropped,
        Counter::QueueDepthPeak,
        Counter::ResidentSessionBytesPeak,
        Counter::SessionsReplayed,
        Counter::JobsDedupedReplay,
        Counter::JournalAppends,
        Counter::JournalCompactions,
    ];

    /// Stable snake_case name, used as the JSON key in run reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::FillL => "fill_l_entries",
            Counter::FillU => "fill_u_entries",
            Counter::FactorCalls => "factor_calls",
            Counter::FactorFlops => "factor_flops",
            Counter::TrsmCalls => "trsm_calls",
            Counter::TrsmFlops => "trsm_flops",
            Counter::GemmCalls => "gemm_calls",
            Counter::GemmFlops => "gemm_flops",
            Counter::PerturbedColumns => "perturbed_columns",
            Counter::BudgetCheckpoints => "budget_checkpoints",
            Counter::SessionsEvicted => "sessions_evicted",
            Counter::JobsRejectedOverload => "jobs_rejected_overload",
            Counter::ConnectionsDropped => "connections_dropped",
            Counter::QueueDepthPeak => "queue_depth_peak",
            Counter::ResidentSessionBytesPeak => "resident_session_bytes_peak",
            Counter::SessionsReplayed => "sessions_replayed",
            Counter::JobsDedupedReplay => "jobs_deduped_replay",
            Counter::JournalAppends => "journal_appends",
            Counter::JournalCompactions => "journal_compactions",
        }
    }
}

/// A snapshot of every counter at one instant, detached from the atomics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    values: [u64; Counter::ALL.len()],
}

impl MetricsSnapshot {
    /// The snapshotted value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// `(name, value)` pairs in registry order — the report serializer's
    /// iteration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c.name(), self.get(c)))
    }
}

/// The lock-free counter registry. Shared by `Arc` across phases and
/// worker threads; all operations are wait-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::ALL.len()],
}

impl MetricsRegistry {
    /// A fresh registry with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter. Relaxed: counters are commutative sums
    /// with no ordering relationship to any other memory.
    #[inline]
    pub fn add(&self, c: Counter, delta: u64) {
        self.counters[c as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Raises a high-water-mark counter to `value` if it is below it.
    /// For gauges observed at instants (peak queue depth, peak resident
    /// bytes) where summing increments would be meaningless.
    #[inline]
    pub fn record_max(&self, c: Counter, value: u64) {
        self.counters[c as usize].fetch_max(value, Ordering::Relaxed);
    }

    /// The current value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Snapshots every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut values = [0u64; Counter::ALL.len()];
        for (i, slot) in self.counters.iter().enumerate() {
            values[i] = slot.load(Ordering::Relaxed);
        }
        MetricsSnapshot { values }
    }

    /// Resets every counter to zero (between factorizations reusing one
    /// registry).
    pub fn reset(&self) {
        for slot in &self.counters {
            slot.store(0, Ordering::Relaxed);
        }
    }
}

/// Convenience for optional registries: counts only when one is present.
#[inline]
pub fn add_opt(reg: Option<&MetricsRegistry>, c: Counter, delta: u64) {
    if let Some(r) = reg {
        r.add(c, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = MetricsRegistry::new();
        reg.add(Counter::GemmFlops, 100);
        reg.add(Counter::GemmFlops, 23);
        reg.incr(Counter::GemmCalls);
        assert_eq!(reg.get(Counter::GemmFlops), 123);
        let snap = reg.snapshot();
        assert_eq!(snap.get(Counter::GemmFlops), 123);
        assert_eq!(snap.get(Counter::GemmCalls), 1);
        assert_eq!(snap.get(Counter::FillL), 0);
        reg.reset();
        assert_eq!(reg.get(Counter::GemmFlops), 0);
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate counter name");
        // Registry order round-trips through the snapshot iterator.
        let snap = MetricsRegistry::new().snapshot();
        let iter_names: Vec<_> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(iter_names, names);
    }

    #[test]
    fn concurrent_adds_are_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.incr(Counter::TrsmCalls);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.get(Counter::TrsmCalls), 8000);
    }

    #[test]
    fn record_max_keeps_the_high_water_mark() {
        let reg = MetricsRegistry::new();
        reg.record_max(Counter::QueueDepthPeak, 3);
        reg.record_max(Counter::QueueDepthPeak, 9);
        reg.record_max(Counter::QueueDepthPeak, 5);
        assert_eq!(reg.get(Counter::QueueDepthPeak), 9);
        let snap = reg.snapshot();
        assert_eq!(snap.get(Counter::QueueDepthPeak), 9);
    }
}
