//! Epoch-aligned phase spans for the whole pipeline.
//!
//! [`PipelineTrace`] records named intervals (ordering passes, symbolic
//! skeleton, fill chunks, postorder segments, partition, numeric, solve)
//! against one epoch fixed when the trace is created, so every phase of a
//! run lands on the same timeline and a single Chrome trace shows the
//! pipeline end to end. The numeric executor keeps its own lock-free
//! per-worker recorder (`splu_sched::trace`); its events are merged onto
//! this epoch at export time by sharing the epoch through `TraceConfig`.
//!
//! The disabled trace is `None` inside and **never reads the clock** — the
//! same discipline as `TraceMode::Off` — so tracing cannot perturb the
//! bitwise-invariance guarantees of the front half. Recording takes a
//! plain mutex: phase spans are coarse (dozens to a few thousand per run,
//! not per-kernel-call), so contention is nil; the per-event hot paths
//! (fill chunks) time themselves locally and push one event at completion.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which timeline row a span belongs to in the exported trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The driver thread: sequential phases (parse, transversal, ordering,
    /// skeleton, partition, graph build, solve) and whole-phase envelopes.
    Driver,
    /// One front-half worker (symbolic fill chunks, postorder segments);
    /// the index is the executor's worker id.
    Front(usize),
}

impl Track {
    /// The stable Chrome-trace `tid` for this track. Driver is 0; front
    /// workers are 1-based so they never collide with it.
    pub fn tid(self) -> usize {
        match self {
            Track::Driver => 0,
            Track::Front(w) => 1 + w,
        }
    }

    /// Human-readable track name for trace metadata.
    pub fn label(self) -> String {
        match self {
            Track::Driver => "driver".to_string(),
            Track::Front(w) => format!("front-{w}"),
        }
    }
}

/// One recorded interval, epoch-relative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Timeline row.
    pub track: Track,
    /// Span name as shown in the trace viewer (e.g. `"ordering"`,
    /// `"fill_chunk 128..160"`).
    pub name: String,
    /// Start, microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    events: Mutex<Vec<SpanEvent>>,
}

/// The pipeline span recorder. Cheap to clone (an `Arc` handle); the
/// disabled recorder is `None` inside and every operation on it is a
/// no-op that never reads the clock.
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    inner: Option<Arc<Inner>>,
}

impl PartialEq for PipelineTrace {
    /// Handle identity: two traces are equal when they are the same
    /// recorder (or both disabled). Lets containing request structs keep
    /// their `PartialEq` derives.
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl PipelineTrace {
    /// The disabled recorder: no allocation, no clock reads, no-ops.
    pub fn off() -> Self {
        PipelineTrace { inner: None }
    }

    /// An enabled recorder whose epoch is "now".
    pub fn enabled() -> Self {
        PipelineTrace {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared epoch, for aligning external recorders (the numeric
    /// executor) onto this timeline. `None` when disabled.
    pub fn epoch(&self) -> Option<Instant> {
        self.inner.as_ref().map(|i| i.epoch)
    }

    /// Opens a span that records itself when dropped. On the disabled
    /// trace this returns an inert guard without touching the clock.
    pub fn span(&self, track: Track, name: impl Into<String>) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { state: None },
            Some(inner) => SpanGuard {
                state: Some(SpanState {
                    inner: Arc::clone(inner),
                    track,
                    name: name.into(),
                    start: Instant::now(),
                }),
            },
        }
    }

    /// Records a span from externally captured instants (events replayed
    /// from another recorder that shared this epoch). Starts before the
    /// epoch clamp to it.
    pub fn record_between(
        &self,
        track: Track,
        name: impl Into<String>,
        start: Instant,
        end: Instant,
    ) {
        if let Some(inner) = &self.inner {
            let start_us = start
                .checked_duration_since(inner.epoch)
                .map_or(0, |d| d.as_micros() as u64);
            let end_us = end
                .checked_duration_since(inner.epoch)
                .map_or(0, |d| d.as_micros() as u64);
            inner.events.lock().unwrap().push(SpanEvent {
                track,
                name: name.into(),
                start_us,
                dur_us: end_us.saturating_sub(start_us),
            });
        }
    }

    /// Records a span from epoch-relative microsecond timestamps (events
    /// imported from a recorder that already measured against this
    /// trace's epoch).
    pub fn record_rel(&self, track: Track, name: impl Into<String>, start_us: u64, dur_us: u64) {
        if let Some(inner) = &self.inner {
            inner.events.lock().unwrap().push(SpanEvent {
                track,
                name: name.into(),
                start_us,
                dur_us,
            });
        }
    }

    /// A snapshot of every recorded span, sorted by `(track, start)` so
    /// export order is deterministic regardless of recording interleaving.
    pub fn events(&self) -> Vec<SpanEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let mut ev = inner.events.lock().unwrap().clone();
                ev.sort_by_key(|e| (e.track.tid(), e.start_us, e.name.clone()));
                ev
            }
        }
    }
}

#[derive(Debug)]
struct SpanState {
    inner: Arc<Inner>,
    track: Track,
    name: String,
    start: Instant,
}

/// RAII guard from [`PipelineTrace::span`]; records the interval on drop.
#[derive(Debug)]
pub struct SpanGuard {
    state: Option<SpanState>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.state.take() {
            let start_us = s
                .start
                .checked_duration_since(s.inner.epoch)
                .map_or(0, |d| d.as_micros() as u64);
            let dur_us = s.start.elapsed().as_micros() as u64;
            s.inner.events.lock().unwrap().push(SpanEvent {
                track: s.track,
                name: s.name,
                start_us,
                dur_us,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let t = PipelineTrace::off();
        assert!(!t.is_enabled());
        assert!(t.epoch().is_none());
        {
            let _g = t.span(Track::Driver, "ordering");
        }
        t.record_rel(Track::Front(0), "chunk", 0, 10);
        assert!(t.events().is_empty());
    }

    #[test]
    fn spans_record_on_drop_in_track_order() {
        let t = PipelineTrace::enabled();
        {
            let _g = t.span(Track::Front(1), "fill_chunk 0..8");
        }
        {
            let _g = t.span(Track::Driver, "ordering");
        }
        t.record_rel(Track::Driver, "imported", 5, 7);
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        // Driver (tid 0) sorts before Front(1) (tid 2).
        assert_eq!(ev[0].track, Track::Driver);
        assert_eq!(ev[2].track, Track::Front(1));
        assert_eq!(ev[2].name, "fill_chunk 0..8");
        let imported = ev.iter().find(|e| e.name == "imported").unwrap();
        assert_eq!((imported.start_us, imported.dur_us), (5, 7));
    }

    #[test]
    fn clones_share_the_recorder_and_compare_by_identity() {
        let a = PipelineTrace::enabled();
        let b = a.clone();
        {
            let _g = b.span(Track::Driver, "solve");
        }
        assert_eq!(a.events().len(), 1);
        assert_eq!(a, b);
        assert_ne!(a, PipelineTrace::enabled());
        assert_eq!(PipelineTrace::off(), PipelineTrace::off());
    }

    #[test]
    fn tids_are_disjoint() {
        assert_eq!(Track::Driver.tid(), 0);
        assert_eq!(Track::Front(0).tid(), 1);
        assert_eq!(Track::Front(3).tid(), 4);
    }
}
