//! Column-major dense matrices.

use std::fmt;

/// An owned column-major dense matrix: element `(i, j)` lives at
/// `data[i + j * nrows]`.
///
/// Column-major layout matches the supernodal storage of the sparse
/// factorization (panels are column slabs) and lets the kernels stream down
/// columns with unit stride.
#[derive(Clone, PartialEq)]
pub struct DenseMat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMat {
    /// A zero-filled `nrows × ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMat {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Builds a matrix from a generator function.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DenseMat::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds from a column-major data vector.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "data length mismatch");
        DenseMat { nrows, ncols, data }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Raw column-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Two distinct columns mutably at once (for row swaps across columns).
    pub fn two_cols_mut(&mut self, j1: usize, j2: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(j1, j2, "columns must differ");
        let n = self.nrows;
        if j1 < j2 {
            let (a, b) = self.data.split_at_mut(j2 * n);
            (&mut a[j1 * n..(j1 + 1) * n], &mut b[..n])
        } else {
            let (a, b) = self.data.split_at_mut(j1 * n);
            let (x, y) = (&mut b[..n], &mut a[j2 * n..(j2 + 1) * n]);
            (x, y)
        }
    }

    /// Swaps rows `r1` and `r2` across all columns.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for j in 0..self.ncols {
            self.data.swap(r1 + j * self.nrows, r2 + j * self.nrows);
        }
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Matrix–matrix product into a fresh matrix (naive; used by tests and
    /// small utility paths — the performance kernel is [`crate::gemm_sub`]).
    pub fn matmul(&self, rhs: &DenseMat) -> DenseMat {
        assert_eq!(self.ncols, rhs.nrows, "inner dimension mismatch");
        let mut out = DenseMat::zeros(self.nrows, rhs.ncols);
        for j in 0..rhs.ncols {
            for k in 0..self.ncols {
                let s = rhs[(k, j)];
                if s != 0.0 {
                    let a_col = self.col(k);
                    let o_col = out.col_mut(j);
                    for i in 0..a_col.len() {
                        o_col[i] += a_col[i] * s;
                    }
                }
            }
        }
        out
    }

    /// `y = A x` for a dense vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for j in 0..self.ncols {
            let s = x[j];
            if s != 0.0 {
                for (yi, &a) in y.iter_mut().zip(self.col(j)) {
                    *yi += a * s;
                }
            }
        }
        y
    }
}

impl std::ops::Index<(usize, usize)> for DenseMat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

impl fmt::Debug for DenseMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMat {}x{}", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(12) {
            for j in 0..self.ncols.min(12) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let m = DenseMat::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn from_fn_and_identity() {
        let m = DenseMat::from_fn(3, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
        let id = DenseMat::identity(3);
        assert_eq!(id.matmul(&m), m);
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn swap_rows_touches_all_columns() {
        let mut m = DenseMat::from_fn(3, 2, |i, j| (i + j * 3) as f64);
        m.swap_rows(0, 2);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(2, 0)], 0.0);
        assert_eq!(m[(0, 1)], 5.0);
        assert_eq!(m[(2, 1)], 3.0);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m[(1, 0)], 1.0);
    }

    #[test]
    fn two_cols_mut_both_orders() {
        let mut m = DenseMat::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
        {
            let (a, b) = m.two_cols_mut(0, 2);
            std::mem::swap(&mut a[0], &mut b[0]);
        }
        assert_eq!(m[(0, 0)], 20.0);
        assert_eq!(m[(0, 2)], 0.0);
        {
            let (a, b) = m.two_cols_mut(2, 0);
            std::mem::swap(&mut a[1], &mut b[1]);
        }
        assert_eq!(m[(1, 2)], 1.0);
        assert_eq!(m[(1, 0)], 21.0);
    }

    #[test]
    fn matvec_and_norms() {
        let m = DenseMat::from_col_major(2, 2, vec![1.0, 0.0, 0.0, -2.0]);
        assert_eq!(m.matvec(&[3.0, 4.0]), vec![3.0, -8.0]);
        assert_eq!(m.max_abs(), 2.0);
        assert!((m.frobenius_norm() - (5.0_f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_col_major_validates() {
        DenseMat::from_col_major(2, 2, vec![0.0; 3]);
    }
}
