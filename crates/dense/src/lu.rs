//! Panel and full dense LU with partial pivoting.

use crate::DenseMat;

/// A partial-pivoting interchange sequence, LAPACK `ipiv`-style: at step
/// `c`, rows `c` and `swap[c]` were exchanged (`swap[c] ≥ c`).
///
/// Indices are **local to the panel** that produced them; the sparse driver
/// translates them to candidate-row positions of the block column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pivots {
    swaps: Vec<usize>,
}

impl Pivots {
    /// The identity sequence of length `w` (no interchanges).
    pub fn identity(w: usize) -> Self {
        Pivots {
            swaps: (0..w).collect(),
        }
    }

    /// Drops the recorded steps but keeps the backing allocation, so a
    /// refactorization of the same panel records into the same storage.
    pub fn clear(&mut self) {
        self.swaps.clear();
    }

    /// The raw swap targets (`swaps[c] ≥ c`).
    pub fn swaps(&self) -> &[usize] {
        &self.swaps
    }

    /// Number of elimination steps recorded.
    pub fn len(&self) -> usize {
        self.swaps.len()
    }

    /// `true` when no steps are recorded.
    pub fn is_empty(&self) -> bool {
        self.swaps.is_empty()
    }

    /// `true` when no actual interchange happens.
    pub fn is_identity(&self) -> bool {
        self.swaps.iter().enumerate().all(|(c, &r)| c == r)
    }

    /// Applies the interchanges to a vector (in factorization order).
    pub fn apply_vec(&self, v: &mut [f64]) {
        for (c, &r) in self.swaps.iter().enumerate() {
            v.swap(c, r);
        }
    }

    /// The permutation vector `perm[new_local_row] = old_local_row` realised
    /// by the swap sequence over `m` rows.
    pub fn as_row_permutation(&self, m: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..m).collect();
        for (c, &r) in self.swaps.iter().enumerate() {
            p.swap(c, r);
        }
        p
    }
}

/// Applies a pivot sequence to the rows of a matrix (in factorization
/// order) — LAPACK's `laswp`.
pub fn apply_row_swaps(m: &mut DenseMat, pivots: &Pivots) {
    for (c, &r) in pivots.swaps().iter().enumerate() {
        m.swap_rows(c, r);
    }
}

/// Errors from panel factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelError {
    /// No usable pivot in this panel column (all candidates ~ 0): the matrix
    /// is numerically singular.
    Singular {
        /// Panel-local column index where elimination broke down.
        column: usize,
    },
    /// A NaN or infinity reached the pivot region of this column — either
    /// present in the input or produced by overflow during elimination.
    NonFinite {
        /// Panel-local column index where the non-finite value was found.
        column: usize,
    },
}

impl std::fmt::Display for PanelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PanelError::Singular { column } => {
                write!(f, "no nonzero pivot available in panel column {column}")
            }
            PanelError::NonFinite { column } => {
                write!(f, "non-finite value in panel column {column}")
            }
        }
    }
}

impl std::error::Error for PanelError {}

/// What the panel factorization does when a column offers no pivot above
/// the rejection threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PanelBreakdown {
    /// Fail with [`PanelError::Singular`] (the classic behaviour).
    Error,
    /// GESP-style static pivoting: replace the diagonal entry with
    /// `sign(d) · value` (a zero diagonal counts as positive), take it as
    /// the pivot without interchange, record the column, and continue.
    /// `value` is the perturbation magnitude — typically `ε · ‖A‖₁`,
    /// precomputed once by the caller; it must be finite and positive.
    Perturb {
        /// Replacement magnitude for the broken-down diagonal.
        value: f64,
    },
}

/// Result of a policy-aware panel factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct PanelOutcome {
    /// The recorded interchange sequence.
    pub pivots: Pivots,
    /// `(panel-local column, perturbation magnitude)` for every column whose
    /// diagonal was replaced under [`PanelBreakdown::Perturb`]. Empty on a
    /// breakdown-free factorization.
    pub perturbed: Vec<(usize, f64)>,
}

/// Pivot-selection policy for the panel factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PivotRule {
    /// Classic partial pivoting: the maximum-magnitude candidate wins.
    Partial,
    /// Threshold pivoting: keep the diagonal candidate whenever
    /// `|a_cc| ≥ τ · max |a_rc|` (0 < τ ≤ 1). Reduces interchanges — and
    /// therefore the pivot traffic every `Update` must replay — at a
    /// bounded cost in element growth (`≤ (1 + 1/τ)` per step).
    Threshold(f64),
    /// No interchanges at all ("static pivoting"): fail on a zero diagonal.
    Diagonal,
}

/// Factorizes an `m × w` panel (`m ≥ w`) in place with partial pivoting.
///
/// On return the strict lower trapezoid holds the multipliers `L` (unit
/// diagonal implicit) and the upper `w × w` triangle holds `U`. The pivot
/// rows are chosen over **all** panel rows `c..m` — in the sparse driver
/// those are exactly the candidate pivot rows of the static symbolic
/// factorization, so any choice stays inside the static structure.
pub fn lu_panel(panel: &mut DenseMat, pivot_threshold: f64) -> Result<Pivots, PanelError> {
    lu_panel_with_rule(panel, PivotRule::Partial, pivot_threshold)
}

/// [`lu_panel`] with an explicit pivot-selection rule.
pub fn lu_panel_with_rule(
    panel: &mut DenseMat,
    rule: PivotRule,
    pivot_threshold: f64,
) -> Result<Pivots, PanelError> {
    lu_panel_with_policy(panel, rule, pivot_threshold, PanelBreakdown::Error, None)
        .map(|out| out.pivots)
}

/// [`lu_panel_with_rule`] with an explicit breakdown policy.
///
/// Under [`PanelBreakdown::Error`] this is exactly [`lu_panel_with_rule`].
/// Under [`PanelBreakdown::Perturb`] a column whose best candidate falls at
/// or below `pivot_threshold` has its diagonal replaced by
/// `sign(d) · value` and elimination continues; the perturbed columns are
/// reported in [`PanelOutcome::perturbed`]. Any NaN/∞ in a column's pivot
/// region fails with [`PanelError::NonFinite`] under either policy.
///
/// `force_breakdown_at` is a deterministic fault-injection hook for the
/// robustness test-suite: the named panel-local column is treated as if its
/// best candidate fell below the threshold, regardless of the actual
/// values. Production callers pass `None`.
pub fn lu_panel_with_policy(
    panel: &mut DenseMat,
    rule: PivotRule,
    pivot_threshold: f64,
    breakdown: PanelBreakdown,
    force_breakdown_at: Option<usize>,
) -> Result<PanelOutcome, PanelError> {
    let mut out = PanelOutcome {
        pivots: Pivots::default(),
        perturbed: Vec::new(),
    };
    lu_panel_with_policy_into(
        panel,
        rule,
        pivot_threshold,
        breakdown,
        force_breakdown_at,
        &mut out,
    )?;
    Ok(out)
}

/// [`lu_panel_with_policy`] recording into caller-provided storage.
///
/// `out` is cleared and refilled; its vectors keep their allocations, so a
/// refactorization of a panel whose outcome is recycled performs no heap
/// allocation here (the swap sequence has the same length every time). On
/// error `out`'s contents are unspecified.
pub fn lu_panel_with_policy_into(
    panel: &mut DenseMat,
    rule: PivotRule,
    pivot_threshold: f64,
    breakdown: PanelBreakdown,
    force_breakdown_at: Option<usize>,
    out: &mut PanelOutcome,
) -> Result<(), PanelError> {
    let m = panel.nrows();
    let w = panel.ncols();
    assert!(m >= w, "panel must be at least as tall as wide");
    if let PanelBreakdown::Perturb { value } = breakdown {
        assert!(
            value.is_finite() && value > 0.0,
            "perturbation magnitude must be finite and positive"
        );
    }
    out.pivots.swaps.clear();
    out.pivots.swaps.reserve(w);
    out.perturbed.clear();
    let swaps = &mut out.pivots.swaps;
    let perturbed = &mut out.perturbed;
    for c in 0..w {
        // Pivot search down column c. A NaN anywhere in the candidate range
        // would silently poison the comparisons below (every `>` on NaN is
        // false), so non-finite candidates are rejected explicitly first.
        let col = panel.col(c);
        for r in c..m {
            if !col[r].is_finite() {
                return Err(PanelError::NonFinite { column: c });
            }
        }
        let mut best = c;
        let mut best_abs = col[c].abs();
        for r in c + 1..m {
            let a = col[r].abs();
            if a > best_abs {
                best_abs = a;
                best = r;
            }
        }
        match rule {
            PivotRule::Partial => {}
            PivotRule::Threshold(tau) => {
                debug_assert!((0.0..=1.0).contains(&tau), "threshold in (0, 1]");
                if col[c].abs() >= tau * best_abs {
                    best = c;
                    best_abs = col[c].abs();
                }
            }
            PivotRule::Diagonal => {
                best = c;
                best_abs = col[c].abs();
            }
        }
        if best_abs <= pivot_threshold || force_breakdown_at == Some(c) {
            match breakdown {
                PanelBreakdown::Error => return Err(PanelError::Singular { column: c }),
                PanelBreakdown::Perturb { value } => {
                    // Static pivoting: keep the diagonal position, replace
                    // its value by sign(d)·value (zero counts as positive).
                    let d = panel[(c, c)];
                    let sign = if d < 0.0 { -1.0 } else { 1.0 };
                    panel[(c, c)] = sign * value;
                    best = c;
                    perturbed.push((c, value));
                }
            }
        }
        swaps.push(best);
        panel.swap_rows(c, best);
        // Scale multipliers.
        let diag = panel[(c, c)];
        let col_c = panel.col_mut(c);
        for r in c + 1..m {
            col_c[r] /= diag;
        }
        // Rank-1 update of the trailing columns.
        for j in c + 1..w {
            let s = panel[(c, j)];
            if s == 0.0 {
                continue;
            }
            let (col_c, col_j) = panel.two_cols_mut(c, j);
            for r in c + 1..m {
                col_j[r] -= col_c[r] * s;
            }
        }
    }
    Ok(())
}

/// Full dense LU with partial pivoting, in place (`getrf`).
pub fn lu_full(a: &mut DenseMat) -> Result<Pivots, PanelError> {
    assert_eq!(a.nrows(), a.ncols(), "lu_full requires a square matrix");
    lu_panel(a, 0.0)
}

/// Solves `A x = b` given the in-place factorization from [`lu_full`]
/// (`getrs`): applies the interchanges, then unit-lower forward and upper
/// backward substitution. `b` is overwritten with the solution.
pub fn lu_solve(lu: &DenseMat, pivots: &Pivots, b: &mut [f64]) {
    let n = lu.nrows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    pivots.apply_vec(b);
    // Forward: L y = Pb (unit diagonal).
    for k in 0..n {
        let s = b[k];
        if s != 0.0 {
            let col = lu.col(k);
            for i in k + 1..n {
                b[i] -= col[i] * s;
            }
        }
    }
    // Backward: U x = y.
    for k in (0..n).rev() {
        b[k] /= lu[(k, k)];
        let s = b[k];
        if s != 0.0 {
            let col = lu.col(k);
            for i in 0..k {
                b[i] -= col[i] * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(r: usize, c: usize, rng: &mut SmallRng) -> DenseMat {
        DenseMat::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    /// Reconstructs `P·A` from the in-place panel factorization and checks
    /// it equals `L·U`.
    fn check_panel(orig: &DenseMat, lu: &DenseMat, piv: &Pivots) {
        let m = orig.nrows();
        let w = orig.ncols();
        // P*orig
        let mut pa = orig.clone();
        apply_row_swaps(&mut pa, piv);
        // L (m×w trapezoid, unit diagonal) * U (w×w upper)
        let mut l = DenseMat::zeros(m, w);
        for j in 0..w {
            l[(j, j)] = 1.0;
            for i in j + 1..m {
                l[(i, j)] = lu[(i, j)];
            }
        }
        let mut u = DenseMat::zeros(w, w);
        for j in 0..w {
            for i in 0..=j {
                u[(i, j)] = lu[(i, j)];
            }
        }
        let prod = l.matmul(&u);
        for j in 0..w {
            for i in 0..m {
                assert!(
                    (prod[(i, j)] - pa[(i, j)]).abs() < 1e-10,
                    "PA != LU at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn panel_factorization_reconstructs() {
        let mut rng = SmallRng::seed_from_u64(10);
        for (m, w) in [(1, 1), (4, 4), (8, 3), (20, 20), (33, 7), (64, 16)] {
            let orig = random_mat(m, w, &mut rng);
            let mut lu = orig.clone();
            let piv = lu_panel(&mut lu, 0.0).expect("random panels are nonsingular");
            check_panel(&orig, &lu, &piv);
        }
    }

    #[test]
    fn pivoting_picks_largest_magnitude() {
        // First column is [1e-8, 5.0]: row 1 must be chosen.
        let mut a = DenseMat::from_col_major(2, 2, vec![1e-8, 5.0, 1.0, 2.0]);
        let piv = lu_panel(&mut a, 0.0).unwrap();
        assert_eq!(piv.swaps()[0], 1);
        assert!(!piv.is_identity());
    }

    #[test]
    fn singular_panel_reports_column() {
        let mut a = DenseMat::from_col_major(3, 2, vec![0.0, 0.0, 0.0, 1.0, 2.0, 3.0]);
        assert_eq!(
            lu_panel(&mut a, 0.0),
            Err(PanelError::Singular { column: 0 })
        );
        let e = PanelError::Singular { column: 0 };
        assert!(e.to_string().contains("column 0"));
    }

    #[test]
    fn full_lu_solve_residual_small() {
        let mut rng = SmallRng::seed_from_u64(20);
        for n in [1usize, 2, 5, 17, 50] {
            let a = random_mat(n, n, &mut rng);
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b = a.matvec(&x_true);
            let mut lu = a.clone();
            let piv = lu_full(&mut lu).unwrap();
            let mut x = b.clone();
            lu_solve(&lu, &piv, &mut x);
            let err: f64 = x
                .iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-8, "n={n}, err={err}");
        }
    }

    #[test]
    fn pivots_vector_application_and_permutation() {
        // swap sequence: step 0 ↔ row 2, step 1 ↔ row 1 (no-op).
        let piv = Pivots { swaps: vec![2, 1] };
        let mut v = vec![10.0, 20.0, 30.0];
        piv.apply_vec(&mut v);
        assert_eq!(v, vec![30.0, 20.0, 10.0]);
        assert_eq!(piv.as_row_permutation(3), vec![2, 1, 0]);
        assert_eq!(Pivots::identity(3).as_row_permutation(3), vec![0, 1, 2]);
        assert!(Pivots::identity(2).is_identity());
        assert_eq!(piv.len(), 2);
        assert!(!piv.is_empty());
    }

    #[test]
    fn threshold_rule_keeps_acceptable_diagonals() {
        // Column [2.0, -3.0]: partial pivoting swaps; τ = 0.5 keeps the
        // diagonal (2 ≥ 0.5·3); τ = 0.9 swaps (2 < 0.9·3).
        let base = DenseMat::from_col_major(2, 2, vec![2.0, -3.0, 1.0, 1.0]);
        let mut a = base.clone();
        let p = lu_panel_with_rule(&mut a, PivotRule::Threshold(0.5), 0.0).unwrap();
        assert!(p.is_identity(), "τ=0.5 must keep the diagonal");
        let mut b = base.clone();
        let p = lu_panel_with_rule(&mut b, PivotRule::Threshold(0.9), 0.0).unwrap();
        assert_eq!(p.swaps()[0], 1, "τ=0.9 must swap");
        // Either way the factorization is exact.
        check_panel(&base, &a, &Pivots::identity(2));
    }

    #[test]
    fn diagonal_rule_never_swaps_and_fails_on_zero_diagonal() {
        let mut ok = DenseMat::from_col_major(2, 2, vec![1.0, 5.0, 2.0, 3.0]);
        let p = lu_panel_with_rule(&mut ok, PivotRule::Diagonal, 0.0).unwrap();
        assert!(p.is_identity());
        let mut bad = DenseMat::from_col_major(2, 2, vec![0.0, 5.0, 2.0, 3.0]);
        assert_eq!(
            lu_panel_with_rule(&mut bad, PivotRule::Diagonal, 0.0),
            Err(PanelError::Singular { column: 0 })
        );
    }

    #[test]
    fn threshold_one_equals_partial_pivoting() {
        let mut rng = SmallRng::seed_from_u64(9);
        let orig = random_mat(12, 6, &mut rng);
        let mut a = orig.clone();
        let pa = lu_panel(&mut a, 0.0).unwrap();
        let mut b = orig.clone();
        // τ = 1.0 only keeps the diagonal on exact ties; random data has
        // none, so the factorizations coincide.
        let pb = lu_panel_with_rule(&mut b, PivotRule::Threshold(1.0), 0.0).unwrap();
        assert_eq!(pa, pb);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn threshold_rejects_tiny_pivots() {
        let mut a = DenseMat::from_col_major(2, 2, vec![1e-30, 1e-31, 1.0, 1.0]);
        assert!(matches!(
            lu_panel(&mut a, 1e-20),
            Err(PanelError::Singular { column: 0 })
        ));
    }

    #[test]
    fn perturb_policy_completes_and_reports_columns() {
        // Column 0 has no candidate above the threshold; Perturb replaces
        // the diagonal by sign(d)·value and finishes.
        let mut a = DenseMat::from_col_major(2, 2, vec![-1e-30, 1e-31, 1.0, 2.0]);
        let out = lu_panel_with_policy(
            &mut a,
            PivotRule::Partial,
            1e-20,
            PanelBreakdown::Perturb { value: 0.5 },
            None,
        )
        .unwrap();
        assert_eq!(out.perturbed, vec![(0, 0.5)]);
        assert!(out.pivots.is_identity(), "perturbation never interchanges");
        assert_eq!(a[(0, 0)], -0.5, "sign of the tiny diagonal is kept");
        // The factorization continued: multiplier and trailing update exist.
        assert_eq!(a[(1, 0)], 1e-31 / -0.5);
        assert!((a[(1, 1)] - (2.0 - a[(1, 0)] * 1.0)).abs() < 1e-15);
    }

    #[test]
    fn perturb_policy_matches_error_policy_on_clean_panels() {
        let mut rng = SmallRng::seed_from_u64(42);
        let orig = random_mat(10, 5, &mut rng);
        let mut a = orig.clone();
        let pa = lu_panel(&mut a, 0.0).unwrap();
        let mut b = orig.clone();
        let out = lu_panel_with_policy(
            &mut b,
            PivotRule::Partial,
            0.0,
            PanelBreakdown::Perturb { value: 1e-8 },
            None,
        )
        .unwrap();
        assert!(out.perturbed.is_empty());
        assert_eq!(pa, out.pivots);
        assert_eq!(a.data(), b.data(), "clean panels must be untouched");
    }

    #[test]
    fn forced_breakdown_is_deterministic() {
        // A perfectly healthy column breaks down when forced — the
        // fault-injection hook used by the `failpoints` suite.
        let mut rng = SmallRng::seed_from_u64(77);
        let orig = random_mat(6, 3, &mut rng);
        let mut a = orig.clone();
        assert_eq!(
            lu_panel_with_policy(
                &mut a,
                PivotRule::Partial,
                0.0,
                PanelBreakdown::Error,
                Some(1)
            ),
            Err(PanelError::Singular { column: 1 })
        );
        let mut b = orig.clone();
        let out = lu_panel_with_policy(
            &mut b,
            PivotRule::Partial,
            0.0,
            PanelBreakdown::Perturb { value: 1e-6 },
            Some(1),
        )
        .unwrap();
        assert_eq!(out.perturbed, vec![(1, 1e-6)]);
    }

    #[test]
    fn non_finite_pivot_region_is_rejected() {
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut a = DenseMat::from_col_major(2, 2, vec![1.0, poison, 1.0, 2.0]);
            let err = lu_panel_with_policy(
                &mut a,
                PivotRule::Partial,
                0.0,
                PanelBreakdown::Perturb { value: 1.0 },
                None,
            )
            .unwrap_err();
            assert_eq!(err, PanelError::NonFinite { column: 0 });
            assert!(err.to_string().contains("non-finite"));
        }
        // A NaN produced mid-elimination surfaces at the column it reaches.
        let mut a = DenseMat::from_col_major(2, 2, vec![1.0, 1.0, 1.0, f64::NAN]);
        assert_eq!(
            lu_panel(&mut a, 0.0),
            Err(PanelError::NonFinite { column: 1 })
        );
    }
}
