//! Explicit-width `f64x4` kernel variants (cargo feature `simd`).
//!
//! Two implementations share one loop skeleton per kernel:
//!
//! * [`avx2`] — AVX2 intrinsics (x86_64 only, runtime-detected); the
//!   micro-kernels are `#[target_feature(enable = "avx2")]` functions
//!   reached only through [`best_dispatch`], which probes
//!   `is_x86_feature_detected!("avx2")` first.
//! * [`chunked`] — a portable explicit-width fallback: the same skeletons
//!   over fixed `[f64; 4]` blocks in safe Rust (autovectorizer-friendly),
//!   used on non-x86_64 hosts or when AVX2 is absent.
//!
//! **Bitwise-equivalence contract** (see
//! [`gemm_sub_view`](crate::gemm_sub_view)): both variants perform, per
//! element, exactly the scalar kernels' IEEE-754 operation sequence —
//! `round(mul)` then `round(sub)`, never an FMA, ascending `k` within the
//! same `KB` blocking, with the same zero-quad/zero-scalar skips.
//! Vectorizing over rows `i` and register-blocking over right-hand-side
//! columns only regroups independent per-element streams, so the results
//! are bit-for-bit identical to the portable path — which is what lets the
//! factorization change kernels without changing factors.

use super::KB;
use crate::view::{MatMut, MatRef};

/// The best SIMD dispatch table this build + CPU supports: AVX2 when
/// detected at runtime, the portable-chunked variant otherwise.
pub fn best_dispatch() -> super::Dispatch {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return super::Dispatch::from_parts(
                "simd-avx2",
                avx2::gemm_sub_view,
                avx2::trsm_lower_unit_view,
                avx2::trsm_upper_view,
            );
        }
    }
    chunked_dispatch()
}

/// The portable-chunked dispatch table (exposed so the test-suite can
/// exercise it even on hosts where [`best_dispatch`] picks AVX2).
pub fn chunked_dispatch() -> super::Dispatch {
    super::Dispatch::from_parts(
        "simd-chunked",
        chunked::gemm_sub_view,
        chunked::trsm_lower_unit_view,
        chunked::trsm_upper_view,
    )
}

/// `C ← C − A·B` skeleton shared by the SIMD variants: identical control
/// flow to the portable [`crate::gemm_sub_view`] (same `KB` blocking, same
/// 4-column quads, same zero skips), with the row loop delegated to the
/// variant's `axpy4`/`axpy1` micro-kernels.
#[inline(always)]
fn gemm_skeleton<F4, F1>(mut c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>, axpy4: F4, axpy1: F1)
where
    F4: Fn(&mut [f64], &mut [f64], &mut [f64], &mut [f64], &[f64], f64, f64, f64, f64),
    F1: Fn(&mut [f64], &[f64], f64),
{
    assert_eq!(a.nrows(), c.nrows(), "gemm_sub: row mismatch");
    assert_eq!(b.ncols(), c.ncols(), "gemm_sub: column mismatch");
    assert_eq!(a.ncols(), b.nrows(), "gemm_sub: inner dimension mismatch");
    let m = c.nrows();
    let n = c.ncols();
    let inner = a.ncols();
    if m == 0 || n == 0 || inner == 0 {
        return;
    }
    let quads = n / 4 * 4;
    for k0 in (0..inner).step_by(KB) {
        let k1 = (k0 + KB).min(inner);
        let mut j = 0usize;
        while j < quads {
            let (c0, c1, c2, c3) = c.four_cols_mut(j);
            for k in k0..k1 {
                let (s0, s1, s2, s3) = (b[(k, j)], b[(k, j + 1)], b[(k, j + 2)], b[(k, j + 3)]);
                if s0 == 0.0 && s1 == 0.0 && s2 == 0.0 && s3 == 0.0 {
                    continue;
                }
                axpy4(c0, c1, c2, c3, a.col(k), s0, s1, s2, s3);
            }
            j += 4;
        }
        for j in quads..n {
            let c_col = c.col_mut(j);
            for k in k0..k1 {
                let s = b[(k, j)];
                if s == 0.0 {
                    continue;
                }
                axpy1(c_col, a.col(k), s);
            }
        }
    }
}

/// `X ← L⁻¹·X` skeleton: forward substitution per the portable
/// [`crate::trsm_lower_unit_view`], register-blocked over **pairs** of
/// right-hand-side columns so each loaded `L` column is reused twice. The
/// zero-skip stays per column (skipping vs. not skipping differs in signed
/// zeros, so lane-masking across columns would break bitwise equality).
#[inline(always)]
fn trsm_lower_skeleton<F2, F1>(l: MatRef<'_>, mut x: MatMut<'_>, axpy2: F2, axpy1: F1)
where
    F2: Fn(&mut [f64], &mut [f64], &[f64], f64, f64),
    F1: Fn(&mut [f64], &[f64], f64),
{
    assert_eq!(l.nrows(), l.ncols(), "trsm: L must be square");
    assert_eq!(l.nrows(), x.nrows(), "trsm: dimension mismatch");
    let n = l.nrows();
    let ncols = x.ncols();
    let pairs = ncols / 2 * 2;
    let mut j = 0usize;
    while j < pairs {
        let (xa, xb) = x.two_cols_mut(j, j + 1);
        for k in 0..n {
            let (sa, sb) = (xa[k], xb[k]);
            let l_tail = &l.col(k)[k + 1..];
            match (sa != 0.0, sb != 0.0) {
                (true, true) => axpy2(&mut xa[k + 1..], &mut xb[k + 1..], l_tail, sa, sb),
                (true, false) => axpy1(&mut xa[k + 1..], l_tail, sa),
                (false, true) => axpy1(&mut xb[k + 1..], l_tail, sb),
                (false, false) => {}
            }
        }
        j += 2;
    }
    for j in pairs..ncols {
        let x_col = x.col_mut(j);
        for k in 0..n {
            let s = x_col[k];
            if s == 0.0 {
                continue;
            }
            axpy1(&mut x_col[k + 1..], &l.col(k)[k + 1..], s);
        }
    }
}

/// `X ← U⁻¹·X` skeleton: backward substitution per the portable
/// [`crate::trsm_upper_view`], register-blocked over pairs of columns.
#[inline(always)]
fn trsm_upper_skeleton<F2, F1>(u: MatRef<'_>, mut x: MatMut<'_>, axpy2: F2, axpy1: F1)
where
    F2: Fn(&mut [f64], &mut [f64], &[f64], f64, f64),
    F1: Fn(&mut [f64], &[f64], f64),
{
    assert_eq!(u.nrows(), u.ncols(), "trsm: U must be square");
    assert_eq!(u.nrows(), x.nrows(), "trsm: dimension mismatch");
    let n = u.nrows();
    let ncols = x.ncols();
    let pairs = ncols / 2 * 2;
    let mut j = 0usize;
    while j < pairs {
        let (xa, xb) = x.two_cols_mut(j, j + 1);
        for k in (0..n).rev() {
            let diag = u[(k, k)];
            debug_assert!(diag != 0.0, "trsm_upper: zero diagonal at {k}");
            xa[k] /= diag;
            xb[k] /= diag;
            let (sa, sb) = (xa[k], xb[k]);
            let u_head = &u.col(k)[..k];
            match (sa != 0.0, sb != 0.0) {
                (true, true) => axpy2(&mut xa[..k], &mut xb[..k], u_head, sa, sb),
                (true, false) => axpy1(&mut xa[..k], u_head, sa),
                (false, true) => axpy1(&mut xb[..k], u_head, sb),
                (false, false) => {}
            }
        }
        j += 2;
    }
    for j in pairs..ncols {
        let x_col = x.col_mut(j);
        for k in (0..n).rev() {
            let diag = u[(k, k)];
            debug_assert!(diag != 0.0, "trsm_upper: zero diagonal at {k}");
            x_col[k] /= diag;
            let s = x_col[k];
            if s == 0.0 {
                continue;
            }
            axpy1(&mut x_col[..k], &u.col(k)[..k], s);
        }
    }
}

/// Portable explicit-width fallback: the skeletons over `[f64; 4]` blocks
/// in safe Rust. Same per-element operation sequence as the scalar kernels.
pub mod chunked {
    use crate::view::{MatMut, MatRef};

    /// Four interleaved `c ← c − a·s` streams over one loaded `a` column,
    /// in aligned 4-row blocks with a scalar tail.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn axpy4(
        c0: &mut [f64],
        c1: &mut [f64],
        c2: &mut [f64],
        c3: &mut [f64],
        a: &[f64],
        s0: f64,
        s1: f64,
        s2: f64,
        s3: f64,
    ) {
        let m = a.len();
        let m4 = m - m % 4;
        let mut i = 0usize;
        while i < m4 {
            // Fixed-width block: one `a` load feeds four column updates,
            // each still round(mul) → round(sub) per element.
            for l in 0..4 {
                let av = a[i + l];
                c0[i + l] -= av * s0;
                c1[i + l] -= av * s1;
                c2[i + l] -= av * s2;
                c3[i + l] -= av * s3;
            }
            i += 4;
        }
        for i in m4..m {
            let av = a[i];
            c0[i] -= av * s0;
            c1[i] -= av * s1;
            c2[i] -= av * s2;
            c3[i] -= av * s3;
        }
    }

    /// Two interleaved `c ← c − a·s` streams (trsm register blocking).
    #[inline(always)]
    fn axpy2(c0: &mut [f64], c1: &mut [f64], a: &[f64], s0: f64, s1: f64) {
        let m = a.len();
        let m4 = m - m % 4;
        let mut i = 0usize;
        while i < m4 {
            for l in 0..4 {
                let av = a[i + l];
                c0[i + l] -= av * s0;
                c1[i + l] -= av * s1;
            }
            i += 4;
        }
        for i in m4..m {
            let av = a[i];
            c0[i] -= av * s0;
            c1[i] -= av * s1;
        }
    }

    /// One `c ← c − a·s` stream in 4-row blocks.
    #[inline(always)]
    fn axpy1(c: &mut [f64], a: &[f64], s: f64) {
        let m = a.len();
        let m4 = m - m % 4;
        let mut i = 0usize;
        while i < m4 {
            for l in 0..4 {
                c[i + l] -= a[i + l] * s;
            }
            i += 4;
        }
        for i in m4..m {
            c[i] -= a[i] * s;
        }
    }

    /// Chunked `C ← C − A·B`; see [`crate::gemm_sub_view`] for the
    /// contract.
    pub fn gemm_sub_view(c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>) {
        super::gemm_skeleton(c, a, b, axpy4, axpy1);
    }

    /// Chunked `X ← L⁻¹·X` (unit lower); see
    /// [`crate::trsm_lower_unit_view`].
    pub fn trsm_lower_unit_view(l: MatRef<'_>, x: MatMut<'_>) {
        super::trsm_lower_skeleton(l, x, axpy2, axpy1);
    }

    /// Chunked `X ← U⁻¹·X` (upper); see [`crate::trsm_upper_view`].
    pub fn trsm_upper_view(u: MatRef<'_>, x: MatMut<'_>) {
        super::trsm_upper_skeleton(u, x, axpy2, axpy1);
    }
}

/// AVX2 micro-kernels (x86_64). Only [`best_dispatch`] hands these out, and
/// only after `is_x86_feature_detected!("avx2")` succeeded; the public
/// wrappers re-assert detection so a direct call on a non-AVX2 host panics
/// instead of executing illegal instructions.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    #![allow(unsafe_code)]

    use crate::view::{MatMut, MatRef};
    use std::arch::x86_64::{
        _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd, _mm256_sub_pd,
    };

    /// One guard per kernel entry: the intrinsics below are only sound on a
    /// CPU with AVX2 (the detection macro caches, so this is one relaxed
    /// atomic load per kernel call).
    #[inline]
    fn require_avx2() {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "avx2 kernels selected on a CPU without AVX2"
        );
    }

    /// Four `c ← c − a·s` streams; `_mm256_mul_pd` + `_mm256_sub_pd` per
    /// lane is exactly the scalar `round(mul)`/`round(sub)` pair (no FMA),
    /// so lanes match the portable kernel bit for bit.
    ///
    /// # Safety
    /// Requires AVX2; all five slices must hold at least `a.len()`
    /// elements.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn axpy4(
        c0: &mut [f64],
        c1: &mut [f64],
        c2: &mut [f64],
        c3: &mut [f64],
        a: &[f64],
        s0: f64,
        s1: f64,
        s2: f64,
        s3: f64,
    ) {
        let m = a.len();
        let m4 = m - m % 4;
        let (vs0, vs1, vs2, vs3) = (
            _mm256_set1_pd(s0),
            _mm256_set1_pd(s1),
            _mm256_set1_pd(s2),
            _mm256_set1_pd(s3),
        );
        let ap = a.as_ptr();
        let (p0, p1, p2, p3) = (
            c0.as_mut_ptr(),
            c1.as_mut_ptr(),
            c2.as_mut_ptr(),
            c3.as_mut_ptr(),
        );
        let mut i = 0usize;
        while i < m4 {
            // SAFETY: i + 4 <= m <= len of every slice.
            unsafe {
                let av = _mm256_loadu_pd(ap.add(i));
                _mm256_storeu_pd(
                    p0.add(i),
                    _mm256_sub_pd(_mm256_loadu_pd(p0.add(i)), _mm256_mul_pd(av, vs0)),
                );
                _mm256_storeu_pd(
                    p1.add(i),
                    _mm256_sub_pd(_mm256_loadu_pd(p1.add(i)), _mm256_mul_pd(av, vs1)),
                );
                _mm256_storeu_pd(
                    p2.add(i),
                    _mm256_sub_pd(_mm256_loadu_pd(p2.add(i)), _mm256_mul_pd(av, vs2)),
                );
                _mm256_storeu_pd(
                    p3.add(i),
                    _mm256_sub_pd(_mm256_loadu_pd(p3.add(i)), _mm256_mul_pd(av, vs3)),
                );
            }
            i += 4;
        }
        for i in m4..m {
            let av = a[i];
            c0[i] -= av * s0;
            c1[i] -= av * s1;
            c2[i] -= av * s2;
            c3[i] -= av * s3;
        }
    }

    /// Two `c ← c − a·s` streams (trsm register blocking).
    ///
    /// # Safety
    /// Requires AVX2; `c0`/`c1` must hold at least `a.len()` elements.
    #[target_feature(enable = "avx2")]
    unsafe fn axpy2(c0: &mut [f64], c1: &mut [f64], a: &[f64], s0: f64, s1: f64) {
        let m = a.len();
        let m4 = m - m % 4;
        let (vs0, vs1) = (_mm256_set1_pd(s0), _mm256_set1_pd(s1));
        let ap = a.as_ptr();
        let (p0, p1) = (c0.as_mut_ptr(), c1.as_mut_ptr());
        let mut i = 0usize;
        while i < m4 {
            // SAFETY: i + 4 <= m <= len of every slice.
            unsafe {
                let av = _mm256_loadu_pd(ap.add(i));
                _mm256_storeu_pd(
                    p0.add(i),
                    _mm256_sub_pd(_mm256_loadu_pd(p0.add(i)), _mm256_mul_pd(av, vs0)),
                );
                _mm256_storeu_pd(
                    p1.add(i),
                    _mm256_sub_pd(_mm256_loadu_pd(p1.add(i)), _mm256_mul_pd(av, vs1)),
                );
            }
            i += 4;
        }
        for i in m4..m {
            let av = a[i];
            c0[i] -= av * s0;
            c1[i] -= av * s1;
        }
    }

    /// One `c ← c − a·s` stream.
    ///
    /// # Safety
    /// Requires AVX2; `c` must hold at least `a.len()` elements.
    #[target_feature(enable = "avx2")]
    unsafe fn axpy1(c: &mut [f64], a: &[f64], s: f64) {
        let m = a.len();
        let m4 = m - m % 4;
        let vs = _mm256_set1_pd(s);
        let ap = a.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i = 0usize;
        while i < m4 {
            // SAFETY: i + 4 <= m <= len of both slices.
            unsafe {
                let av = _mm256_loadu_pd(ap.add(i));
                _mm256_storeu_pd(
                    cp.add(i),
                    _mm256_sub_pd(_mm256_loadu_pd(cp.add(i)), _mm256_mul_pd(av, vs)),
                );
            }
            i += 4;
        }
        for i in m4..m {
            c[i] -= a[i] * s;
        }
    }

    /// AVX2 `C ← C − A·B`; see [`crate::gemm_sub_view`] for the contract.
    pub fn gemm_sub_view(c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>) {
        require_avx2();
        super::gemm_skeleton(
            c,
            a,
            b,
            // SAFETY: AVX2 presence asserted above; the skeleton passes
            // equal-length column slices.
            |c0, c1, c2, c3, a, s0, s1, s2, s3| unsafe { axpy4(c0, c1, c2, c3, a, s0, s1, s2, s3) },
            |c, a, s| unsafe { axpy1(c, a, s) },
        );
    }

    /// AVX2 `X ← L⁻¹·X` (unit lower); see [`crate::trsm_lower_unit_view`].
    pub fn trsm_lower_unit_view(l: MatRef<'_>, x: MatMut<'_>) {
        require_avx2();
        // SAFETY: AVX2 presence asserted above.
        super::trsm_lower_skeleton(
            l,
            x,
            |c0, c1, a, s0, s1| unsafe { axpy2(c0, c1, a, s0, s1) },
            |c, a, s| unsafe { axpy1(c, a, s) },
        );
    }

    /// AVX2 `X ← U⁻¹·X` (upper); see [`crate::trsm_upper_view`].
    pub fn trsm_upper_view(u: MatRef<'_>, x: MatMut<'_>) {
        require_avx2();
        // SAFETY: AVX2 presence asserted above.
        super::trsm_upper_skeleton(
            u,
            x,
            |c0, c1, a, s0, s1| unsafe { axpy2(c0, c1, a, s0, s1) },
            |c, a, s| unsafe { axpy1(c, a, s) },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseMat;

    fn pseudo_mat(r: usize, c: usize, seed: u64) -> DenseMat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        DenseMat::from_fn(r, c, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    /// Every compiled SIMD variant matches the portable kernels bit for bit
    /// on ragged shapes (the proptest suite widens this; this is the quick
    /// deterministic check).
    #[test]
    fn variants_match_portable_bitwise() {
        let mut tables = vec![chunked_dispatch()];
        let best = best_dispatch();
        if best.name() != "simd-chunked" {
            tables.push(best);
        }
        for d in tables {
            for (m, k, n) in [(1, 1, 1), (5, 3, 2), (7, 7, 7), (66, 65, 33), (130, 5, 6)] {
                let a = pseudo_mat(m, k, 7);
                let b = pseudo_mat(k, n, 8);
                let c0 = pseudo_mat(m, n, 9);
                let mut c_ref = c0.clone();
                crate::gemm_sub_view(c_ref.as_view_mut(), a.as_view(), b.as_view());
                let mut c_simd = c0.clone();
                d.gemm_sub(c_simd.as_view_mut(), a.as_view(), b.as_view());
                assert_eq!(
                    c_ref.data(),
                    c_simd.data(),
                    "{}: gemm {m}x{k}x{n}",
                    d.name()
                );
            }
            for (n, rhs) in [(1, 1), (4, 3), (17, 5), (48, 16)] {
                let l = pseudo_mat(n, n, 10);
                let x0 = pseudo_mat(n, rhs, 11);
                let mut x_ref = x0.clone();
                crate::trsm_lower_unit_view(l.as_view(), x_ref.as_view_mut());
                let mut x_simd = x0.clone();
                d.trsm_lower_unit(l.as_view(), x_simd.as_view_mut());
                assert_eq!(
                    x_ref.data(),
                    x_simd.data(),
                    "{}: trsm_l {n}x{rhs}",
                    d.name()
                );

                let mut u = pseudo_mat(n, n, 12);
                for i in 0..n {
                    u[(i, i)] = 2.0 + u[(i, i)].abs();
                }
                let mut y_ref = x0.clone();
                crate::trsm_upper_view(u.as_view(), y_ref.as_view_mut());
                let mut y_simd = x0.clone();
                d.trsm_upper(u.as_view(), y_simd.as_view_mut());
                assert_eq!(
                    y_ref.data(),
                    y_simd.data(),
                    "{}: trsm_u {n}x{rhs}",
                    d.name()
                );
            }
        }
    }
}
