//! Kernel selection: a [`KernelChoice`] names an implementation family, a
//! [`Dispatch`] is the resolved function table the numeric phase calls
//! through.
//!
//! Selection is a *parameter*, not a separate entry point: the sparse
//! driver resolves its `KernelChoice` into one `Dispatch` per factorization
//! and threads that table through every `Factor`/`Update` task body, so
//! adding a kernel variant never multiplies driver functions. All variants
//! obey the bitwise-equivalence contract documented on
//! [`gemm_sub_view`](crate::gemm_sub_view): the factors are bit-for-bit
//! independent of the choice.

use crate::view::{MatMut, MatRef};

/// Which dense kernel implementation the numeric phase uses.
///
/// The scalar portable kernels are the default; the explicit-width SIMD
/// kernels exist behind the `simd` cargo feature. Resolution happens once
/// per factorization via [`Dispatch::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// The portable scalar kernels (the default).
    #[default]
    Portable,
    /// The explicit-width `f64x4` kernels: AVX2 intrinsics when the host
    /// CPU supports them, the portable-chunked fallback otherwise. Without
    /// the `simd` cargo feature this resolves to `Portable` (documented
    /// fallback — results are bitwise identical either way).
    Simd,
    /// `Simd` when compiled in (`simd` feature) and usable on this CPU,
    /// otherwise `Portable`.
    Auto,
}

/// `C ← C − A·B` kernel signature (see [`crate::gemm_sub_view`]).
pub type GemmSubFn = fn(MatMut<'_>, MatRef<'_>, MatRef<'_>);
/// `X ← L⁻¹·X` / `X ← U⁻¹·X` kernel signature (see
/// [`crate::trsm_lower_unit_view`] / [`crate::trsm_upper_view`]).
pub type TrsmFn = fn(MatRef<'_>, MatMut<'_>);

/// The resolved kernel function table. Copy it around freely — it is three
/// function pointers and a name.
#[derive(Clone, Copy)]
pub struct Dispatch {
    name: &'static str,
    gemm_sub: GemmSubFn,
    trsm_lower_unit: TrsmFn,
    trsm_upper: TrsmFn,
}

impl Dispatch {
    /// The portable scalar kernel table.
    pub const fn portable() -> Self {
        Dispatch {
            name: "portable",
            gemm_sub: super::gemm_sub_view,
            trsm_lower_unit: super::trsm_lower_unit_view,
            trsm_upper: super::trsm_upper_view,
        }
    }

    /// Resolves a [`KernelChoice`] into a concrete table, probing CPU
    /// features (`is_x86_feature_detected!("avx2")` on x86_64) exactly once
    /// per call — do this once per factorization, not per task.
    pub fn resolve(choice: KernelChoice) -> Self {
        match choice {
            KernelChoice::Portable => Self::portable(),
            KernelChoice::Simd | KernelChoice::Auto => {
                #[cfg(feature = "simd")]
                {
                    super::simd::best_dispatch()
                }
                #[cfg(not(feature = "simd"))]
                {
                    Self::portable()
                }
            }
        }
    }

    /// `true` when the `simd` cargo feature was compiled in, i.e. when
    /// [`KernelChoice::Simd`] resolves to something other than the portable
    /// table.
    pub const fn simd_compiled() -> bool {
        cfg!(feature = "simd")
    }

    /// Implementation name: `"portable"`, `"simd-avx2"` or
    /// `"simd-chunked"` — recorded in benchmark artifacts.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Builds a table from raw parts (used by the kernel variants).
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    pub(crate) const fn from_parts(
        name: &'static str,
        gemm_sub: GemmSubFn,
        trsm_lower_unit: TrsmFn,
        trsm_upper: TrsmFn,
    ) -> Self {
        Dispatch {
            name,
            gemm_sub,
            trsm_lower_unit,
            trsm_upper,
        }
    }

    /// `C ← C − A · B` through the selected kernel.
    #[inline]
    pub fn gemm_sub(&self, c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>) {
        (self.gemm_sub)(c, a, b)
    }

    /// `X ← L⁻¹ · X` (`L` unit lower triangular) through the selected
    /// kernel.
    #[inline]
    pub fn trsm_lower_unit(&self, l: MatRef<'_>, x: MatMut<'_>) {
        (self.trsm_lower_unit)(l, x)
    }

    /// `X ← U⁻¹ · X` (`U` upper triangular) through the selected kernel.
    #[inline]
    pub fn trsm_upper(&self, u: MatRef<'_>, x: MatMut<'_>) {
        (self.trsm_upper)(u, x)
    }
}

impl Default for Dispatch {
    fn default() -> Self {
        Self::portable()
    }
}

impl std::fmt::Debug for Dispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatch")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_resolves_to_portable() {
        assert_eq!(Dispatch::resolve(KernelChoice::Portable).name(), "portable");
        assert_eq!(Dispatch::default().name(), "portable");
    }

    #[test]
    fn simd_resolution_matches_feature_gate() {
        let d = Dispatch::resolve(KernelChoice::Simd);
        if Dispatch::simd_compiled() {
            assert!(d.name().starts_with("simd-"), "got {}", d.name());
        } else {
            assert_eq!(d.name(), "portable");
        }
        // Auto resolves to the same table as Simd under either gate.
        assert_eq!(d.name(), Dispatch::resolve(KernelChoice::Auto).name());
    }

    #[test]
    fn table_calls_reach_the_kernels() {
        use crate::DenseMat;
        let d = Dispatch::portable();
        let a = DenseMat::from_fn(3, 2, |i, j| (i + j) as f64);
        let b = DenseMat::from_fn(2, 2, |i, j| (i * 2 + j) as f64 - 1.0);
        let mut c = DenseMat::from_fn(3, 2, |i, j| (i * j) as f64);
        let mut expect = c.clone();
        crate::gemm_sub(&mut expect, &a, &b);
        d.gemm_sub(c.as_view_mut(), a.as_view(), b.as_view());
        assert_eq!(c.data(), expect.data());
    }
}
