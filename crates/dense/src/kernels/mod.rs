//! BLAS-3 style kernels: `gemm` and `trsm` on column-major matrices.
//!
//! The core implementations operate on strided views ([`MatRef`] /
//! [`MatMut`]) so sub-blocks of a stacked supernode panel feed the kernels
//! **in place** — no gather into temporaries. The [`DenseMat`] entry points
//! are thin wrappers over whole-matrix views.
//!
//! The free functions in this module are the **portable** (scalar Rust)
//! implementations and remain the default. The [`simd`] submodule (cargo
//! feature `simd`) provides explicit-width `f64x4` variants of the same
//! kernels, and [`Dispatch`] is the function table through which a
//! factorization selects an implementation **once** (from a
//! [`KernelChoice`]) instead of branching per call. Every variant obeys the
//! bitwise-equivalence contract spelled out on [`gemm_sub_view`].

pub mod dispatch;
#[cfg(feature = "simd")]
pub mod simd;

pub use dispatch::{Dispatch, KernelChoice};

use crate::view::{MatMut, MatRef};
use crate::DenseMat;

/// Cache-block size (in rows/inner dimension) for the update kernel. Chosen
/// so three `KB × KB` double blocks stay well inside a 256 KiB L2. The SIMD
/// variants reuse the same constant so their `k` traversal per element is
/// identical to the portable kernel's.
pub(crate) const KB: usize = 64;

/// `C ← C − A · B` on strided views — the portable reference kernel.
///
/// The supernodal update kernel: `B̄(i, j) ← B̄(i, j) − L(i, k) · Ū(k, j)`,
/// where `L(i, k)` is typically a row range of column `k`'s stacked panel.
/// The inner micro-kernel processes **four columns of `C` at once**, so
/// each loaded column of `A` is reused fourfold (quartering `A` traffic);
/// `k` is additionally blocked to keep the active `A` panel cache-resident.
///
/// # Kernel dispatch and the bitwise-equivalence contract
///
/// This function is the `Portable` entry of the [`Dispatch`] table; the
/// `simd` cargo feature adds explicit-width variants ([`simd`]) selected
/// through [`KernelChoice`] on the factorization options. Every variant
/// must produce **bitwise identical** results to this kernel: for each
/// element `C(i, j)` the sequence of IEEE-754 operations — one
/// `c ← c − a·s` (round(mul) then round(sub), never fused) per inner index
/// `k`, in ascending `k` within each `KB` block, skipping exactly the `k`
/// whose 4-column scalar quad (or single remainder column scalar) is zero —
/// is the same in every implementation; vectorizing over `i` (and blocking
/// registers over columns) only regroups *independent* element streams.
/// That contract is what keeps factors independent of the selected kernel,
/// lets the determinism property tests double as cross-kernel equivalence
/// tests, and is asserted by `proptest_kernel_equiv` on ragged shapes.
pub fn gemm_sub_view(mut c: MatMut<'_>, a: MatRef<'_>, b: MatRef<'_>) {
    assert_eq!(a.nrows(), c.nrows(), "gemm_sub: row mismatch");
    assert_eq!(b.ncols(), c.ncols(), "gemm_sub: column mismatch");
    assert_eq!(a.ncols(), b.nrows(), "gemm_sub: inner dimension mismatch");
    let m = c.nrows();
    let n = c.ncols();
    let inner = a.ncols();
    if m == 0 || n == 0 || inner == 0 {
        return;
    }
    let quads = n / 4 * 4;
    for k0 in (0..inner).step_by(KB) {
        let k1 = (k0 + KB).min(inner);
        let mut j = 0usize;
        while j < quads {
            // Four C columns at once, split out of the storage.
            let (c0, c1, c2, c3) = c.four_cols_mut(j);
            for k in k0..k1 {
                let (s0, s1, s2, s3) = (b[(k, j)], b[(k, j + 1)], b[(k, j + 2)], b[(k, j + 3)]);
                if s0 == 0.0 && s1 == 0.0 && s2 == 0.0 && s3 == 0.0 {
                    continue;
                }
                let a_col = a.col(k);
                for i in 0..m {
                    let av = a_col[i];
                    c0[i] -= av * s0;
                    c1[i] -= av * s1;
                    c2[i] -= av * s2;
                    c3[i] -= av * s3;
                }
            }
            j += 4;
        }
        for j in quads..n {
            let c_col = c.col_mut(j);
            for k in k0..k1 {
                let s = b[(k, j)];
                if s == 0.0 {
                    continue;
                }
                let a_col = a.col(k);
                for i in 0..m {
                    c_col[i] -= a_col[i] * s;
                }
            }
        }
    }
}

/// `C ← C − A · B` on owned matrices; see [`gemm_sub_view`].
pub fn gemm_sub(c: &mut DenseMat, a: &DenseMat, b: &DenseMat) {
    gemm_sub_view(c.as_view_mut(), a.as_view(), b.as_view());
}

/// `X ← L⁻¹ · X` where `L` is **unit** lower triangular (strict lower part
/// of `l` is read; the diagonal is taken as 1, the upper part ignored), on
/// strided views.
///
/// Used to turn a factored diagonal block into the `Ū` row blocks:
/// `Ū(k, j) = L(k, k)⁻¹ B̄(k, j)` — with `L(k, k)` read straight from the
/// top of column `k`'s stacked panel.
pub fn trsm_lower_unit_view(l: MatRef<'_>, mut x: MatMut<'_>) {
    assert_eq!(l.nrows(), l.ncols(), "trsm: L must be square");
    assert_eq!(l.nrows(), x.nrows(), "trsm: dimension mismatch");
    let n = l.nrows();
    for j in 0..x.ncols() {
        // Forward substitution down column j, expressed column-wise over L
        // so both accesses stream with unit stride.
        let x_col = x.col_mut(j);
        for k in 0..n {
            let s = x_col[k];
            if s == 0.0 {
                continue;
            }
            let l_col = l.col(k);
            for i in k + 1..n {
                x_col[i] -= l_col[i] * s;
            }
        }
    }
}

/// `X ← L⁻¹ · X` on owned matrices; see [`trsm_lower_unit_view`].
pub fn trsm_lower_unit(l: &DenseMat, x: &mut DenseMat) {
    trsm_lower_unit_view(l.as_view(), x.as_view_mut());
}

/// `X ← U⁻¹ · X` where `U` is upper triangular with a nonzero diagonal
/// (strict lower part of `u` is ignored), on strided views.
pub fn trsm_upper_view(u: MatRef<'_>, mut x: MatMut<'_>) {
    assert_eq!(u.nrows(), u.ncols(), "trsm: U must be square");
    assert_eq!(u.nrows(), x.nrows(), "trsm: dimension mismatch");
    let n = u.nrows();
    for j in 0..x.ncols() {
        let x_col = x.col_mut(j);
        for k in (0..n).rev() {
            let diag = u[(k, k)];
            debug_assert!(diag != 0.0, "trsm_upper: zero diagonal at {k}");
            x_col[k] /= diag;
            let s = x_col[k];
            if s == 0.0 {
                continue;
            }
            let u_col = u.col(k);
            for i in 0..k {
                x_col[i] -= u_col[i] * s;
            }
        }
    }
}

/// `X ← U⁻¹ · X` on owned matrices; see [`trsm_upper_view`].
pub fn trsm_upper(u: &DenseMat, x: &mut DenseMat) {
    trsm_upper_view(u.as_view(), x.as_view_mut());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(r: usize, c: usize, rng: &mut SmallRng) -> DenseMat {
        DenseMat::from_fn(r, c, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn gemm_sub_matches_naive() {
        let mut rng = SmallRng::seed_from_u64(1);
        for (m, k, n) in [(1, 1, 1), (3, 2, 4), (7, 7, 7), (65, 70, 33), (130, 5, 2)] {
            let a = random_mat(m, k, &mut rng);
            let b = random_mat(k, n, &mut rng);
            let mut c = random_mat(m, n, &mut rng);
            let mut expect = c.clone();
            let prod = a.matmul(&b);
            for j in 0..n {
                for i in 0..m {
                    expect[(i, j)] -= prod[(i, j)];
                }
            }
            gemm_sub(&mut c, &a, &b);
            for j in 0..n {
                for i in 0..m {
                    assert!(
                        (c[(i, j)] - expect[(i, j)]).abs() < 1e-12,
                        "mismatch at ({i},{j}) for {m}x{k}x{n}"
                    );
                }
            }
        }
    }

    /// Strided row-range views must produce bitwise the same results as
    /// gathering the sub-blocks into compact matrices first.
    #[test]
    fn strided_gemm_is_bitwise_identical_to_compact() {
        let mut rng = SmallRng::seed_from_u64(8);
        // A tall "panel" whose row ranges play L(i, k) and C.
        let panel = random_mat(40, 6, &mut rng);
        let b = random_mat(6, 6, &mut rng);
        let mut c_panel = random_mat(40, 6, &mut rng);
        let c_orig = c_panel.clone();
        for (ar, cr) in [((3, 13), (20, 30)), ((0, 6), (34, 40)), ((7, 8), (0, 1))] {
            // Compact reference.
            let a_cmp = panel.row_range(ar.0..ar.1).to_dense();
            let mut c_cmp = c_orig.row_range(cr.0..cr.1).to_dense();
            gemm_sub(&mut c_cmp, &a_cmp, &b);
            // Strided in place.
            c_panel = c_orig.clone();
            gemm_sub_view(
                c_panel.row_range_mut(cr.0..cr.1),
                panel.row_range(ar.0..ar.1),
                b.as_view(),
            );
            let got = c_panel.row_range(cr.0..cr.1).to_dense();
            assert_eq!(got.data(), c_cmp.data(), "rows {ar:?} -> {cr:?}");
        }
    }

    #[test]
    fn strided_trsm_matches_compact() {
        let mut rng = SmallRng::seed_from_u64(9);
        let panel = random_mat(20, 5, &mut rng);
        let l = panel.row_range(0..5); // top square as unit-lower L
        let mut x_panel = random_mat(20, 5, &mut rng);
        let x_orig = x_panel.clone();
        let mut x_cmp = x_orig.row_range(10..15).to_dense();
        trsm_lower_unit(&l.to_dense(), &mut x_cmp);
        trsm_lower_unit_view(l, x_panel.row_range_mut(10..15));
        assert_eq!(x_panel.row_range(10..15).to_dense().data(), x_cmp.data());
    }

    #[test]
    fn trsm_lower_unit_solves() {
        let mut rng = SmallRng::seed_from_u64(2);
        for n in [1usize, 2, 5, 20, 64] {
            // Build a unit lower triangular L (junk above the diagonal must
            // be ignored).
            let mut l = random_mat(n, n, &mut rng);
            for i in 0..n {
                l[(i, i)] = 123.0; // must be treated as 1
            }
            let x_true = random_mat(n, 3, &mut rng);
            // b = L_unit * x_true
            let mut l_unit = DenseMat::identity(n);
            for j in 0..n {
                for i in j + 1..n {
                    l_unit[(i, j)] = l[(i, j)];
                }
            }
            let mut b = l_unit.matmul(&x_true);
            trsm_lower_unit(&l, &mut b);
            for j in 0..3 {
                for i in 0..n {
                    assert!((b[(i, j)] - x_true[(i, j)]).abs() < 1e-9, "n={n}");
                }
            }
        }
    }

    #[test]
    fn trsm_upper_solves() {
        let mut rng = SmallRng::seed_from_u64(3);
        for n in [1usize, 2, 6, 31] {
            let mut u = random_mat(n, n, &mut rng);
            for i in 0..n {
                u[(i, i)] = 2.0 + rng.gen_range(0.0..1.0); // well conditioned
            }
            let mut u_clean = DenseMat::zeros(n, n);
            for j in 0..n {
                for i in 0..=j {
                    u_clean[(i, j)] = u[(i, j)];
                }
            }
            let x_true = random_mat(n, 2, &mut rng);
            let mut b = u_clean.matmul(&x_true);
            trsm_upper(&u, &mut b);
            for j in 0..2 {
                for i in 0..n {
                    assert!((b[(i, j)] - x_true[(i, j)]).abs() < 1e-9, "n={n}");
                }
            }
        }
    }

    #[test]
    fn gemm_handles_empty_dimensions() {
        let a = DenseMat::zeros(3, 0);
        let b = DenseMat::zeros(0, 2);
        let mut c = DenseMat::from_fn(3, 2, |i, j| (i + j) as f64);
        let before = c.clone();
        gemm_sub(&mut c, &a, &b);
        assert_eq!(c, before);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_validates_dims() {
        let a = DenseMat::zeros(2, 3);
        let b = DenseMat::zeros(4, 2);
        let mut c = DenseMat::zeros(2, 2);
        gemm_sub(&mut c, &a, &b);
    }
}
