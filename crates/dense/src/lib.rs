//! Dense kernels for `parsplu` — the BLAS substitute.
//!
//! The paper's numerical factorization runs on dense supernode panels using
//! the SGI SCSL BLAS (levels 1–3). This workspace has no BLAS bindings, so
//! this crate provides the needed subset, written in plain safe Rust with
//! column-major layout and loop orders chosen for that layout:
//!
//! * [`DenseMat`] — an owned column-major matrix;
//! * [`MatRef`] / [`MatMut`] — borrowed strided views (a leading-dimension
//!   layout), so kernels run in place on row ranges of stacked panels;
//! * [`gemm_sub`] / [`gemm_sub_view`] — `C ← C − A·B` (the supernodal
//!   update kernel);
//! * [`trsm_lower_unit`] / [`trsm_lower_unit_view`] — `X ← L⁻¹·X` with `L`
//!   unit lower triangular (computes `Ū` blocks from a factored panel);
//! * [`lu_panel`] — panel LU with partial pivoting (the `Factor(k)` task);
//! * [`apply_row_swaps`] / [`Pivots`] — the pivot-sequence representation
//!   shared with the sparse driver;
//! * [`lu_full`], [`lu_solve`] — full dense LU, the oracle the test-suites
//!   compare against;
//! * [`KernelChoice`] / [`Dispatch`] — kernel selection: the portable scalar
//!   kernels above are the default, and the `simd` cargo feature adds
//!   explicit-width `f64x4` variants (`kernels::simd`) that produce
//!   bit-for-bit identical factors (see the contract on [`gemm_sub_view`]).

// Index-based loops are the natural idiom for the numerical kernels and
// symbolic algorithms in this crate; iterator rewrites obscure the maths.
#![allow(clippy::needless_range_loop)]
// The only unsafe in this crate is the AVX2 micro-kernel module compiled
// under the `simd` feature; the default build still forbids unsafe outright.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod kernels;
mod lu;
mod mat;
mod view;

pub use kernels::{
    gemm_sub, gemm_sub_view, trsm_lower_unit, trsm_lower_unit_view, trsm_upper, trsm_upper_view,
    Dispatch, KernelChoice,
};
pub use lu::{
    apply_row_swaps, lu_full, lu_panel, lu_panel_with_policy, lu_panel_with_policy_into,
    lu_panel_with_rule, lu_solve, PanelBreakdown, PanelError, PanelOutcome, PivotRule, Pivots,
};
pub use mat::DenseMat;
pub use view::{MatMut, MatRef};
