//! Borrowed column-major matrix views with a leading dimension.
//!
//! The zero-copy panel storage keeps a block column's whole L-region as one
//! tall [`crate::DenseMat`]; the individual sub-blocks the kernels operate
//! on are then **row ranges** of that panel — column-major with a leading
//! dimension (`ld`) larger than their own row count. [`MatRef`]/[`MatMut`]
//! describe exactly that: element `(i, j)` lives at `data[i + j * ld]`, and
//! column `j` is still one contiguous slice of length `nrows`, so the
//! kernels keep their unit-stride inner loops.

use crate::DenseMat;
use std::ops::Range;

/// An immutable column-major view: element `(i, j)` at `data[i + j * ld]`.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f64],
    nrows: usize,
    ncols: usize,
    ld: usize,
}

impl<'a> MatRef<'a> {
    /// Wraps a raw column-major slice. `ld ≥ nrows`, and `data` must cover
    /// the last element `(nrows-1, ncols-1)`.
    pub fn from_slice(data: &'a [f64], nrows: usize, ncols: usize, ld: usize) -> Self {
        assert!(ld >= nrows.max(1), "leading dimension below row count");
        if ncols > 0 && nrows > 0 {
            assert!(
                (ncols - 1) * ld + nrows <= data.len(),
                "view exceeds backing slice"
            );
        }
        MatRef {
            data,
            nrows,
            ncols,
            ld,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Column `j` — contiguous even in a strided view.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [f64] {
        &self.data[j * self.ld..j * self.ld + self.nrows]
    }

    /// Copies the view into an owned matrix (tests/diagnostics only).
    pub fn to_dense(&self) -> DenseMat {
        DenseMat::from_fn(self.nrows, self.ncols, |i, j| self[(i, j)])
    }
}

impl std::ops::Index<(usize, usize)> for MatRef<'_> {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.ld]
    }
}

/// A mutable column-major view with a leading dimension.
pub struct MatMut<'a> {
    data: &'a mut [f64],
    nrows: usize,
    ncols: usize,
    ld: usize,
}

impl<'a> MatMut<'a> {
    /// Wraps a raw column-major slice mutably; see [`MatRef::from_slice`].
    pub fn from_slice(data: &'a mut [f64], nrows: usize, ncols: usize, ld: usize) -> Self {
        assert!(ld >= nrows.max(1), "leading dimension below row count");
        if ncols > 0 && nrows > 0 {
            assert!(
                (ncols - 1) * ld + nrows <= data.len(),
                "view exceeds backing slice"
            );
        }
        MatMut {
            data,
            nrows,
            ncols,
            ld,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Leading dimension of the underlying storage.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Column `j` immutably.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.ld..j * self.ld + self.nrows]
    }

    /// Column `j` mutably — contiguous even in a strided view.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.ld..j * self.ld + self.nrows]
    }

    /// Reborrows as an immutable view.
    #[inline]
    pub fn rb(&self) -> MatRef<'_> {
        MatRef {
            data: self.data,
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.ld,
        }
    }

    /// Swaps rows `r1` and `r2` across all columns.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for j in 0..self.ncols {
            self.data.swap(r1 + j * self.ld, r2 + j * self.ld);
        }
    }

    /// Splits columns `j1 < j2` into two disjoint mutable column slices
    /// (columns never overlap because `ld ≥ nrows`).
    pub fn two_cols_mut(&mut self, j1: usize, j2: usize) -> (&mut [f64], &mut [f64]) {
        assert!(j1 < j2 && j2 < self.ncols, "column pair out of order/range");
        let (m, ld) = (self.nrows, self.ld);
        let (_, rest) = self.data.split_at_mut(j1 * ld);
        let (a, rest) = rest.split_at_mut((j2 - j1) * ld);
        (&mut a[..m], &mut rest[..m])
    }

    /// Splits four consecutive columns `j..j+4` into disjoint mutable
    /// column slices (columns never overlap because `ld ≥ nrows`).
    pub fn four_cols_mut(&mut self, j: usize) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        let (m, ld) = (self.nrows, self.ld);
        let (_, rest) = self.data.split_at_mut(j * ld);
        let (a, rest) = rest.split_at_mut(ld);
        let (b, rest) = rest.split_at_mut(ld);
        let (c, rest) = rest.split_at_mut(ld);
        (&mut a[..m], &mut b[..m], &mut c[..m], &mut rest[..m])
    }
}

impl std::ops::Index<(usize, usize)> for MatMut<'_> {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.ld]
    }
}

impl std::ops::IndexMut<(usize, usize)> for MatMut<'_> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.ld]
    }
}

impl DenseMat {
    /// The whole matrix as an immutable view (`ld = nrows`).
    #[inline]
    pub fn as_view(&self) -> MatRef<'_> {
        MatRef {
            data: self.data(),
            nrows: self.nrows(),
            ncols: self.ncols(),
            ld: self.nrows().max(1),
        }
    }

    /// The whole matrix as a mutable view (`ld = nrows`).
    #[inline]
    pub fn as_view_mut(&mut self) -> MatMut<'_> {
        let (nrows, ncols) = (self.nrows(), self.ncols());
        MatMut {
            data: self.data_mut(),
            nrows,
            ncols,
            ld: nrows.max(1),
        }
    }

    /// Rows `r` of every column, as a strided immutable view — how a
    /// sub-block of a stacked panel is read without copying.
    pub fn row_range(&self, r: Range<usize>) -> MatRef<'_> {
        assert!(r.start <= r.end && r.end <= self.nrows(), "row range");
        let ld = self.nrows();
        MatRef {
            data: &self.data()[r.start..],
            nrows: r.end - r.start,
            ncols: self.ncols(),
            ld: ld.max(1),
        }
    }

    /// Rows `r` of every column, as a strided mutable view.
    pub fn row_range_mut(&mut self, r: Range<usize>) -> MatMut<'_> {
        assert!(r.start <= r.end && r.end <= self.nrows(), "row range");
        let ld = self.nrows();
        let ncols = self.ncols();
        MatMut {
            data: &mut self.data_mut()[r.start..],
            nrows: r.end - r.start,
            ncols,
            ld: ld.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_range_views_share_storage() {
        let m = DenseMat::from_fn(5, 3, |i, j| (i * 10 + j) as f64);
        let v = m.row_range(2..4);
        assert_eq!(v.nrows(), 2);
        assert_eq!(v.ncols(), 3);
        assert_eq!(v[(0, 0)], 20.0);
        assert_eq!(v[(1, 2)], 32.0);
        assert_eq!(v.col(1), &[21.0, 31.0]);
        assert_eq!(v.to_dense()[(0, 1)], 21.0);
    }

    #[test]
    fn mutable_views_write_through() {
        let mut m = DenseMat::zeros(4, 2);
        {
            let mut v = m.row_range_mut(1..3);
            v[(0, 0)] = 5.0;
            v.col_mut(1)[1] = 7.0;
            v.swap_rows(0, 1);
        }
        assert_eq!(m[(2, 0)], 5.0);
        assert_eq!(m[(1, 1)], 7.0);
    }

    #[test]
    fn four_cols_split_is_disjoint_and_aligned() {
        let mut m = DenseMat::from_fn(3, 5, |i, j| (i + 100 * j) as f64);
        let mut v = m.row_range_mut(1..3);
        let (c0, c1, c2, c3) = v.four_cols_mut(1);
        assert_eq!(c0[0], 101.0);
        assert_eq!(c1[1], 202.0);
        assert_eq!(c2[0], 301.0);
        assert_eq!(c3[1], 402.0);
        c3[0] = -1.0;
        assert_eq!(m[(1, 4)], -1.0);
    }

    #[test]
    #[should_panic(expected = "view exceeds backing slice")]
    fn from_slice_validates_extent() {
        let data = [0.0; 5];
        let _ = MatRef::from_slice(&data, 2, 2, 4);
    }
}
