//! Property test: every kernel variant is **bitwise identical** to the
//! portable scalar kernels.
//!
//! The dispatch layer's contract (documented on `gemm_sub_view`) is that a
//! `KernelChoice` changes only throughput, never bits: every variant
//! performs the same per-element IEEE-754 operation sequence, so the
//! output a `Dispatch` produces is independent of the selected table.
//! This suite drives random **ragged** shapes — dimensions deliberately not
//! multiples of the 4-wide vector width, including 0- and 1-extent edge
//! panels — through both full and strided sub-views (leading dimension
//! larger than the row count, exactly how stacked-panel blocks reach the
//! kernels) and compares every output bit for bit, for each table
//! `Dispatch::resolve` can hand out in this build.

use proptest::prelude::*;
use splu_dense::{DenseMat, Dispatch, KernelChoice};

/// Every distinct kernel table reachable in this build: portable always;
/// with the `simd` feature also the chunked fallback and (on hosts with
/// AVX2) the AVX2 table resolved by `KernelChoice::Simd`.
fn all_tables() -> Vec<Dispatch> {
    #[allow(unused_mut)]
    let mut tables = vec![Dispatch::resolve(KernelChoice::Portable)];
    #[cfg(feature = "simd")]
    {
        tables.push(splu_dense::kernels::simd::chunked_dispatch());
        let best = Dispatch::resolve(KernelChoice::Simd);
        if best.name() != "simd-chunked" {
            tables.push(best);
        }
    }
    tables
}

fn bits(m: &DenseMat) -> Vec<u64> {
    m.data().iter().map(|x| x.to_bits()).collect()
}

/// A matrix of "awkward" doubles: mixed magnitudes, signs, exact and signed
/// zeros — values whose rounding and zero-skip behaviour expose any
/// deviation from the scalar operation sequence.
fn arb_mat(rows: usize, cols: usize) -> impl Strategy<Value = DenseMat> {
    collection::vec((0usize..8, -1.0e3f64..1.0e3), rows * cols).prop_map(move |v| {
        DenseMat::from_fn(rows, cols, |i, j| {
            let (class, x) = v[i + j * rows];
            match class {
                0 => 0.0,
                1 => -0.0,
                2 => x * 1.0e-10,
                _ => x,
            }
        })
    })
}

/// One ragged dimension: 0 and 1 (edge panels), a value past one `KB=64`
/// block boundary, or a small non-multiple-of-4 extent.
fn ragged_dim() -> impl Strategy<Value = usize> + Clone {
    (0usize..10, 2usize..23).prop_map(|(sel, r)| match sel {
        0 => 0,
        1 => 1,
        2 => 67,
        _ => r,
    })
}

/// `(A, B, C)` gemm operands with independently ragged `m`, `k`, `n`
/// (dimensions recoverable from the matrices themselves).
fn gemm_case() -> impl Strategy<Value = (DenseMat, DenseMat, DenseMat)> {
    (ragged_dim(), ragged_dim(), ragged_dim())
        .prop_flat_map(|(m, k, n)| (arb_mat(m, k), arb_mat(k, n), arb_mat(m, n)))
}

/// Strided gemm operands: taller backing matrices plus the row offset the
/// kernels should view them at. `k`/`n` stay ≥ 1 — a stacked panel always
/// has at least one column, and `row_range` on a 0-column matrix has no
/// backing storage to offset into.
fn strided_gemm_case() -> impl Strategy<Value = (usize, DenseMat, DenseMat, DenseMat)> {
    (ragged_dim(), ragged_dim(), ragged_dim(), 1usize..5).prop_flat_map(|(m, k, n, pad)| {
        let (k, n) = (k.max(1), n.max(1));
        (
            Just(pad),
            arb_mat(m + pad, k),
            arb_mat(k, n),
            arb_mat(m + pad, n),
        )
    })
}

/// `(L-candidate, U-candidate, X)` trsm operands with ragged right-hand
/// sides (diagonals fixed up in the test body).
fn trsm_case() -> impl Strategy<Value = (DenseMat, DenseMat, DenseMat)> {
    let n = (0usize..10, 2usize..21).prop_map(|(sel, r)| match sel {
        0 | 1 => 1,
        2 => 35,
        _ => r,
    });
    let rhs = (0usize..10, 1usize..18).prop_map(|(sel, r)| match sel {
        0 => 0,
        1 | 2 => 1,
        _ => r,
    });
    (n, rhs).prop_flat_map(|(n, rhs)| (arb_mat(n, n), arb_mat(n, n), arb_mat(n, rhs)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `C ← C − A·B` matches the portable kernel bitwise on ragged shapes.
    #[test]
    fn gemm_sub_bitwise_identical((a, b, c0) in gemm_case()) {
        let mut c_ref = c0.clone();
        splu_dense::gemm_sub_view(c_ref.as_view_mut(), a.as_view(), b.as_view());

        for d in all_tables() {
            let mut c = c0.clone();
            d.gemm_sub(c.as_view_mut(), a.as_view(), b.as_view());
            prop_assert_eq!(
                bits(&c), bits(&c_ref),
                "{}: gemm {}x{}x{}", d.name(), a.nrows(), a.ncols(), b.ncols()
            );
        }
    }

    /// Same check through strided row-range views: the kernels see
    /// `ld > nrows`, as they do on stacked-panel sub-blocks.
    #[test]
    fn gemm_sub_bitwise_identical_strided((pad, a_full, b, c_full) in strided_gemm_case()) {
        let m = a_full.nrows() - pad;
        let mut c_ref = c_full.clone();
        splu_dense::gemm_sub_view(
            c_ref.row_range_mut(pad..pad + m),
            a_full.row_range(pad..pad + m),
            b.as_view(),
        );

        for d in all_tables() {
            let mut c = c_full.clone();
            d.gemm_sub(
                c.row_range_mut(pad..pad + m),
                a_full.row_range(pad..pad + m),
                b.as_view(),
            );
            prop_assert_eq!(
                bits(&c), bits(&c_ref),
                "{}: strided gemm {}x{}x{} pad {}",
                d.name(), m, a_full.ncols(), b.ncols(), pad
            );
        }
    }

    /// Both triangular solves match bitwise on ragged right-hand sides,
    /// including 0- and 1-column edge panels.
    #[test]
    fn trsm_bitwise_identical((mut l, mut u, x0) in trsm_case()) {
        let n = l.nrows();
        for i in 0..n {
            l[(i, i)] = 1.0;
            u[(i, i)] = 3.0 + u[(i, i)].abs();
        }

        let mut xl_ref = x0.clone();
        splu_dense::trsm_lower_unit_view(l.as_view(), xl_ref.as_view_mut());
        let mut xu_ref = x0.clone();
        splu_dense::trsm_upper_view(u.as_view(), xu_ref.as_view_mut());

        for d in all_tables() {
            let mut xl = x0.clone();
            d.trsm_lower_unit(l.as_view(), xl.as_view_mut());
            prop_assert_eq!(
                bits(&xl), bits(&xl_ref),
                "{}: trsm_lower {}x{}", d.name(), n, x0.ncols()
            );

            let mut xu = x0.clone();
            d.trsm_upper(u.as_view(), xu.as_view_mut());
            prop_assert_eq!(
                bits(&xu), bits(&xu_ref),
                "{}: trsm_upper {}x{}", d.name(), n, x0.ncols()
            );
        }
    }
}
