//! The Chrome `trace_event` export is valid JSON with in-order per-worker
//! event streams — checked with the crate's own parser
//! ([`splu_bench::json`]), i.e. the same validation CI applies to the
//! `perf_report` artifacts.

use splu_bench::json;
use splu_core::{
    analyze, factor_numeric_with, BlockMatrix, NumericRequest, Options, TaskGraphKind, TraceConfig,
};
use splu_matgen::{paper_suite, Scale};
use splu_sched::{EventKind, Mapping, Task};

#[test]
fn chrome_trace_json_is_valid_and_per_worker_monotone() {
    let m = paper_suite(Scale::Reduced)
        .into_iter()
        .next()
        .expect("suite is non-empty");
    let sym = analyze(m.a.pattern(), &Options::default()).expect("analysis succeeds");
    let permuted = sym.permute_matrix(&m.a);
    let graph = sym.build_graph(TaskGraphKind::EForest);
    let bm = BlockMatrix::assemble(&permuted, &sym.block_structure);

    let threads = 4;
    let config = TraceConfig::full(graph.len(), threads);
    let report = factor_numeric_with(
        &bm,
        &NumericRequest::coarse(&graph, Mapping::Dynamic)
            .threads(threads)
            .trace(config),
    )
    .expect("factorization succeeds");
    report.stats.assert_consistent();
    let trace = report.trace.expect("full mode keeps the event stream");

    // Raw event stream: per-worker timestamps are monotone non-decreasing
    // and every interval is well-formed.
    let mut last_start = vec![0u64; threads];
    let mut task_events = 0usize;
    for e in &trace.events {
        assert!(e.worker < threads, "worker id in range");
        assert!(e.end_ns >= e.start_ns, "non-negative duration");
        assert!(
            e.start_ns >= last_start[e.worker],
            "worker {} timestamps regress: {} < {}",
            e.worker,
            e.start_ns,
            last_start[e.worker]
        );
        last_start[e.worker] = e.start_ns;
        if matches!(e.kind, EventKind::Task { .. }) {
            task_events += 1;
        }
    }
    assert_eq!(task_events, graph.len(), "one Task event per task");

    // Rendered JSON: parses, matches the Chrome trace schema, and carries
    // exactly the recorded events as "X" records.
    let rendered = trace.chrome_json(&|tid| match graph.task(tid) {
        Task::Factor(k) => format!("F({k})"),
        Task::Update { src, dst } => format!("U({src},{dst})"),
    });
    let doc = json::parse(&rendered).expect("chrome trace is valid JSON");
    let complete = json::validate_chrome_trace(&doc).expect("chrome trace matches schema");
    assert_eq!(complete, trace.events.len(), "one X record per event");
    assert!(
        doc.get("traceEvents")
            .and_then(json::Json::as_arr)
            .map(|evs| evs.len() >= complete + threads)
            .unwrap_or(false),
        "thread_name metadata records present"
    );
}
