//! Ablation: the effect of the fill-reducing ordering (DESIGN.md §6) on the
//! static structure, supernode counts and estimated factorization flops.
//!
//! The paper fixes minimum degree on `AᵀA`; this binary quantifies why —
//! natural and RCM orderings inflate the static structure dramatically on
//! the same matrices.
//!
//! ```text
//! cargo run --release -p splu-bench --bin orderings
//! ```

use splu_bench::suite;
use splu_core::{analyze, Options, OrderingChoice};

fn main() {
    println!("Ordering ablation: static fill and work by fill-reducing ordering");
    println!(
        "{:<10} {:>14} {:>14} {:>14}   {:>10} {:>10}",
        "Matrix", "MD |Abar|", "natural", "RCM", "MD flops", "RCM flops"
    );
    for m in suite() {
        let run = |ordering: OrderingChoice| {
            analyze(
                m.a.pattern(),
                &Options {
                    ordering,
                    ..Options::default()
                },
            )
            .expect("analysis succeeds")
            .stats
        };
        let md = run(OrderingChoice::MinDegreeAtA);
        let nat = run(OrderingChoice::Natural);
        let rcm = run(OrderingChoice::Rcm);
        println!(
            "{:<10} {:>14} {:>14} {:>14}   {:>10.2e} {:>10.2e}",
            m.name,
            md.nnz_filled,
            nat.nnz_filled,
            rcm.nnz_filled,
            md.flops_estimate,
            rcm.flops_estimate
        );
    }
    println!("\n(MD = minimum degree on AtA, the paper's choice)");
}
