//! Ablation: the amalgamation knobs (DESIGN.md §6) — supernode count,
//! storage padding and measured factor time as the relative-fill tolerance
//! and width cap vary.
//!
//! The paper applies amalgamation because exact supernodes are tiny ("2 or
//! 3 columns"); this binary shows the trade-off it buys into: fewer, wider
//! supernodes → better BLAS-3 shape and fewer tasks, at the price of
//! explicit zeros.
//!
//! ```text
//! cargo run --release -p splu-bench --bin amalgamation
//! ```

use splu_bench::min_time;
use splu_core::{
    analyze, factor_numeric_with, BlockMatrix, NumericRequest, Options, TaskGraphKind,
};
use splu_matgen::{paper_matrix, Scale};
use splu_sched::Mapping;
use splu_symbolic::SupernodeOptions;

fn main() {
    let scale = if std::env::var_os("PARSPLU_REDUCED").is_some() {
        Scale::Reduced
    } else {
        Scale::Full
    };
    let a = paper_matrix("saylr4", scale).expect("known matrix");
    println!("Amalgamation ablation on saylr4 (n = {})", a.ncols());
    println!(
        "{:<22} {:>6} {:>8} {:>10} {:>12} {:>10}",
        "config", "SN", "max w", "pad frac", "tasks", "factor"
    );
    let configs: Vec<(String, Option<SupernodeOptions>)> = vec![
        ("exact (none)".into(), None),
        (
            "rel_fill 0.1, w 32".into(),
            Some(SupernodeOptions {
                max_width: 32,
                rel_fill: 0.1,
            }),
        ),
        (
            "rel_fill 0.3, w 48".into(),
            Some(SupernodeOptions {
                max_width: 48,
                rel_fill: 0.3,
            }),
        ),
        (
            "rel_fill 0.5, w 96".into(),
            Some(SupernodeOptions {
                max_width: 96,
                rel_fill: 0.5,
            }),
        ),
        (
            "rel_fill 0.8, w 192".into(),
            Some(SupernodeOptions {
                max_width: 192,
                rel_fill: 0.8,
            }),
        ),
    ];
    for (label, amalgamation) in configs {
        let opts = Options {
            amalgamation,
            ..Options::default()
        };
        let sym = analyze(a.pattern(), &opts).expect("analysis succeeds");
        let graph = sym.build_graph(TaskGraphKind::EForest);
        let permuted = sym.permute_matrix(&a);
        let mut bm = BlockMatrix::assemble(&permuted, &sym.block_structure);
        let req = NumericRequest::coarse(&graph, Mapping::Static1D);
        let t = min_time(|| {
            bm.reset_from(&permuted, &sym.block_structure);
            factor_numeric_with(&bm, &req).expect("factorization succeeds");
        });
        let words = bm.storage_words();
        let pad = 1.0 - sym.stats.nnz_filled as f64 / words as f64;
        println!(
            "{:<22} {:>6} {:>8} {:>10.3} {:>12} {:>9.1?}",
            label,
            sym.stats.supernodes,
            sym.stats.max_supernode_width,
            pad,
            sym.stats.graph_tasks,
            t
        );
    }
}
