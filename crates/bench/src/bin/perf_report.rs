//! Scheduler telemetry report for the parallel numeric factorization.
//!
//! For every suite matrix (or the one named on the command line) this binary
//! factors under three scheduling disciplines — `static1d` (owner-computes
//! priority pools), `dynamic` (work stealing) and `fifo` (the retained
//! shared-FIFO baseline) — and for each one:
//!
//! 1. measures the **tracing-off** median over [`splu_bench::REPS`] reps,
//!    then the **tracing-on** ([`TraceConfig::full`]) median, reporting the
//!    instrumentation overhead in percent (budget: ≤ 5% on suite matrices);
//! 2. prints the [`SchedStats`] table decomposing each worker's wall clock
//!    into busy / steal-scan / idle time with task and steal counters;
//! 3. diffs the achieved wall clock against the calibrated simulator's
//!    prediction for the same task graph ([`simulate`] for `static1d`,
//!    [`simulate_dynamic`] with `Priority`/`Fifo` ready policies for the
//!    self-scheduled modes).
//!
//! Artifacts, self-validated against the schemas in [`splu_bench::json`]
//! before being written:
//!
//! * `BENCH_sched.json` — one record per (matrix, mode): overhead, wall
//!   clock, per-worker busy/idle/steal arrays, steal counters, zero-copy
//!   panel counter; plus one `kind: "simulated"` record per mode with the
//!   predicted makespan.
//! * `TRACE_<matrix>.json` — Chrome `trace_event` stream of the traced
//!   `dynamic` run (load in Perfetto / `chrome://tracing`).
//! * `TRACE_<matrix>_sim.json` — the simulator's predicted schedule for the
//!   same graph in the same format, for side-by-side Gantt comparison.
//!
//! Usage: `perf_report [matrix] [--threads N]` (default: all suite
//! matrices, 8 threads). `PARSPLU_REDUCED=1` shrinks the suite for CI.

use splu_bench::{calibrated_model, json, prepare_suite, Prepared, REPS};
use splu_core::{
    estimate_task_costs, factor_numeric_with, factor_task, update_task, BlockMatrix, ExecReport,
    KernelChoice, NumericRequest, TraceConfig,
};
use splu_sched::{
    execute_fifo_traced, sim_chrome_json, simulate, simulate_dynamic_traced, Mapping, ReadyPolicy,
    Task, TaskGraph,
};
use std::fmt::Write as _;
use std::time::Instant;

/// The three scheduling disciplines under measurement.
const MODES: [&str; 3] = ["static1d", "dynamic", "fifo"];

/// Median over `REPS` timed runs of `f`, in seconds.
fn median_time<F: FnMut()>(mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    times[times.len() / 2]
}

/// One factorization under `mode`, traced per `config`. The FIFO baseline
/// executor has no pivot-error plumbing of its own, so its task bodies
/// mirror the scaling bench's closure.
fn factor_mode(
    bm: &BlockMatrix,
    graph: &TaskGraph,
    threads: usize,
    mode: &str,
    config: &TraceConfig,
) -> ExecReport {
    let coarse = |mapping: Mapping| {
        factor_numeric_with(
            bm,
            &NumericRequest::coarse(graph, mapping)
                .threads(threads)
                .kernels(KernelChoice::Auto)
                .trace(*config),
        )
        .expect("factorization succeeds")
    };
    match mode {
        "static1d" => coarse(Mapping::Static1D),
        "dynamic" => coarse(Mapping::Dynamic),
        "fifo" => {
            let mut report = execute_fifo_traced(
                graph,
                threads,
                Mapping::Dynamic,
                |task| match task {
                    Task::Factor(k) => {
                        factor_task(bm, k, 0.0).expect("factorization succeeds");
                    }
                    Task::Update { src, dst } => update_task(bm, src, dst),
                },
                config,
            );
            report.stats.panel_copies = bm.panel_copy_count();
            report
        }
        other => unreachable!("unknown mode {other}"),
    }
}

/// Tracing-off median, tracing-on median, and the final traced report
/// (full event stream) for one (matrix, mode, threads) cell.
///
/// Off and traced reps are **interleaved pairwise** rather than timed in
/// two separate blocks: on a shared (and possibly oversubscribed) host,
/// slow drift between blocks otherwise dwarfs the instrumentation cost the
/// overhead number is meant to expose.
fn measure(p: &Prepared, threads: usize, mode: &str) -> (f64, f64, ExecReport) {
    let mut bm = BlockMatrix::assemble(&p.permuted, &p.sym.block_structure);
    let full = TraceConfig::full(p.eforest.len(), threads);
    let mut off_times = Vec::with_capacity(REPS);
    let mut traced_times = Vec::with_capacity(REPS);
    let mut last: Option<ExecReport> = None;
    for _ in 0..REPS {
        bm.reset_from(&p.permuted, &p.sym.block_structure);
        let t = Instant::now();
        factor_mode(&bm, &p.eforest, threads, mode, &TraceConfig::off());
        off_times.push(t.elapsed().as_secs_f64());

        bm.reset_from(&p.permuted, &p.sym.block_structure);
        let t = Instant::now();
        last = Some(factor_mode(&bm, &p.eforest, threads, mode, &full));
        traced_times.push(t.elapsed().as_secs_f64());
    }
    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        v[v.len() / 2]
    };
    (
        median(off_times),
        median(traced_times),
        last.expect("REPS > 0"),
    )
}

/// Writes `text` to `path` after confirming it parses as JSON.
fn write_validated(path: &str, text: &str, check: impl Fn(&json::Json) -> Result<usize, String>) {
    let doc = json::parse(text).unwrap_or_else(|e| panic!("{path}: invalid JSON: {e}"));
    check(&doc).unwrap_or_else(|e| panic!("{path}: schema violation: {e}"));
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

fn task_label(graph: &TaskGraph) -> impl Fn(usize) -> String + '_ {
    move |tid| match graph.task(tid) {
        Task::Factor(k) => format!("F({k})"),
        Task::Update { src, dst } => format!("U({src},{dst})"),
    }
}

fn main() {
    let mut threads = 8usize;
    let mut filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--threads takes a positive integer");
        } else {
            filter = Some(arg);
        }
    }

    let prepared = prepare_suite();
    let selected: Vec<&Prepared> = prepared
        .iter()
        .filter(|p| filter.as_deref().is_none_or(|f| p.name == f))
        .collect();
    if selected.is_empty() {
        eprintln!(
            "no suite matrix named {:?}; available: {}",
            filter.unwrap_or_default(),
            prepared
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    }

    let mut records = String::new();
    let mut n_records = 0usize;
    for p in &selected {
        println!(
            "== {} ({} tasks, {} threads, {} kernels) ==",
            p.name,
            p.eforest.len(),
            threads,
            splu_core::Dispatch::resolve(KernelChoice::Auto).name()
        );

        // Calibrate the simulator on the measured serial time so predicted
        // makespans live in this machine's seconds.
        let mut bm = BlockMatrix::assemble(&p.permuted, &p.sym.block_structure);
        let serial_req =
            NumericRequest::coarse(&p.eforest, Mapping::Static1D).kernels(KernelChoice::Auto);
        let serial = median_time(|| {
            bm.reset_from(&p.permuted, &p.sym.block_structure);
            factor_numeric_with(&bm, &serial_req).expect("factorization succeeds");
        });
        let model = calibrated_model(p, &p.eforest, std::time::Duration::from_secs_f64(serial));
        let costs = estimate_task_costs(&p.sym.block_structure, &p.eforest);

        for mode in MODES {
            let (off, traced, report) = measure(p, threads, mode);
            let overhead_pct = if off > 0.0 {
                100.0 * (traced - off) / off
            } else {
                0.0
            };
            let predicted = match mode {
                "static1d" => {
                    simulate(&p.eforest, threads, Mapping::Static1D, &costs, &model).makespan
                }
                "dynamic" => {
                    let (res, events) = simulate_dynamic_traced(
                        &p.eforest,
                        threads,
                        &costs,
                        &model,
                        ReadyPolicy::Priority,
                    );
                    let sim_json = sim_chrome_json(&events, threads, &task_label(&p.eforest));
                    write_validated(
                        &format!("TRACE_{}_sim.json", p.name),
                        &sim_json,
                        json::validate_chrome_trace,
                    );
                    res.makespan
                }
                _ => {
                    simulate_dynamic_traced(&p.eforest, threads, &costs, &model, ReadyPolicy::Fifo)
                        .0
                        .makespan
                }
            };
            let stats = &report.stats;
            stats.assert_consistent();
            println!(
                "\n-- mode {mode}: off {off:.6}s, traced {traced:.6}s \
                 (overhead {overhead_pct:+.2}%), predicted span {predicted:.6}s \
                 (achieved/predicted {:.2}x)",
                stats.wall_s / predicted.max(1e-12),
            );
            print!("{}", stats.table());

            if mode == "dynamic" {
                let trace = report.trace.as_ref().expect("full tracing keeps events");
                let chrome = trace.chrome_json(&task_label(&p.eforest));
                write_validated(
                    &format!("TRACE_{}.json", p.name),
                    &chrome,
                    json::validate_chrome_trace,
                );
                println!(
                    "wrote TRACE_{}.json ({} events)",
                    p.name,
                    trace.events.len()
                );
            }

            let join = |f: &dyn Fn(&splu_sched::WorkerStats) -> String| {
                stats.workers.iter().map(f).collect::<Vec<_>>().join(", ")
            };
            writeln!(
                records,
                "  {{\"matrix\": \"{}\", \"mode\": \"{mode}\", \"kind\": \"measured\", \
                 \"threads\": {threads}, \"median_off_s\": {off:.9}, \
                 \"median_traced_s\": {traced:.9}, \"overhead_pct\": {overhead_pct:.3}, \
                 \"wall_s\": {:.9}, \"tasks_total\": {}, \"panel_copies\": {}, \
                 \"predicted_span_s\": {predicted:.9}, \
                 \"busy_s\": [{}], \"idle_s\": [{}], \"steal_s\": [{}], \
                 \"tasks\": [{}], \"steals_in\": [{}]}},",
                p.name,
                stats.wall_s,
                stats.n_tasks,
                stats.panel_copies,
                join(&|w| format!("{:.9}", w.busy_s)),
                join(&|w| format!("{:.9}", w.idle_s)),
                join(&|w| format!("{:.9}", w.steal_s)),
                join(&|w| w.tasks_run.to_string()),
                join(&|w| w.steals_in.to_string()),
            )
            .expect("string write");
            writeln!(
                records,
                "  {{\"matrix\": \"{}\", \"mode\": \"{mode}\", \"kind\": \"simulated\", \
                 \"threads\": {threads}, \"makespan_s\": {predicted:.9}}},",
                p.name,
            )
            .expect("string write");
            n_records += 2;
        }
        println!();
    }

    let body = records.trim_end().trim_end_matches(',');
    let doc = format!("[\n{body}\n]\n");
    write_validated("BENCH_sched.json", &doc, json::validate_bench_sched);
    println!("wrote BENCH_sched.json ({n_records} records)");
}
