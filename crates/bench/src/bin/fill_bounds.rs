//! Quantifies the paper's Section 3 motivation: the SuperLU column-etree
//! bound (Cholesky of `AᵀA`) "substantially overestimates" the factor
//! structures, while the George–Ng static structure is much tighter — yet
//! still an overestimate of the entries a dynamic (Gilbert–Peierls)
//! factorization actually produces.
//!
//! Columns: nonzeros of `A`; the actual `|L|+|U|` from Gilbert–Peierls with
//! partial pivoting; the static structure `|Ā|`; the `AᵀA` Cholesky bound;
//! and the two overestimation factors.
//!
//! ```text
//! cargo run --release -p splu-bench --bin fill_bounds
//! ```

use splu_bench::suite;
use splu_core::gp::gp_factor;
use splu_core::{analyze, Options};
use splu_symbolic::ata_cholesky_bound;

fn main() {
    println!("Structure bounds: actual fill vs static structure vs AtA (SuperLU) bound");
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>11} {:>9} {:>9}",
        "Matrix", "|A|", "GP actual", "static", "AtA bound", "sta/act", "ata/act"
    );
    for m in suite() {
        let sym = analyze(m.a.pattern(), &Options::default()).expect("analysis succeeds");
        // Run GP on the same permuted matrix so the orderings match.
        let permuted = sym.permute_matrix(&m.a);
        let gp = gp_factor(&permuted, 0.0).expect("factorization succeeds");
        let actual = gp.l_nnz() + gp.u_nnz();
        let stat = sym.stats.nnz_filled;
        let bound = ata_cholesky_bound(permuted.pattern());
        println!(
            "{:<10} {:>9} {:>10} {:>10} {:>11} {:>9.2} {:>9.2}",
            m.name,
            m.a.nnz(),
            actual,
            stat,
            bound,
            stat as f64 / actual as f64,
            bound as f64 / actual as f64
        );
    }
    println!("\n(static/actual is the price of a pivoting-independent structure;");
    println!(" AtA/actual shows how much looser the column-etree bound is)");
}
