//! Regenerates the paper's **Table 2**: numerical-factorization time for
//! P = 1, 2, 4, 8 processors (eforest task graph, static 1D mapping).
//!
//! Two instruments are reported (DESIGN.md §5.2):
//! * `real` — wall-clock with that many worker threads on this host
//!   (meaningful up to the physical core count);
//! * `sim`  — the list-scheduling simulator with a per-matrix cost model
//!   calibrated so simulated P=1 matches the measured serial time, playing
//!   the role of the paper's 8-processor Origin 2000.
//!
//! ```text
//! cargo run --release -p splu-bench --bin table2
//! ```

use splu_bench::{calibrated_model, prepare_suite, simulated_seconds, time_factor};
use splu_sched::Mapping;

fn main() {
    let procs = [1usize, 2, 4, 8];
    println!("Table 2: numerical factorization time (seconds)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}   {:>9} {:>9} {:>9} {:>9}  {:>8}",
        "Matrix",
        "real P=1",
        "real P=2",
        "real P=4",
        "real P=8",
        "sim P=1",
        "sim P=2",
        "sim P=4",
        "sim P=8",
        "speedup8"
    );
    for p in prepare_suite() {
        let mut real = Vec::new();
        for &np in &procs {
            real.push(time_factor(&p, &p.eforest, np));
        }
        let model = calibrated_model(&p, &p.eforest, real[0]);
        let sim: Vec<f64> = procs
            .iter()
            .map(|&np| simulated_seconds(&p, &p.eforest, np, Mapping::Dynamic, &model))
            .collect();
        println!(
            "{:<10} {:>10.4} {:>10.4} {:>10.4} {:>10.4}   {:>9.4} {:>9.4} {:>9.4} {:>9.4}  {:>8.2}",
            p.name,
            real[0].as_secs_f64(),
            real[1].as_secs_f64(),
            real[2].as_secs_f64(),
            real[3].as_secs_f64(),
            sim[0],
            sim[1],
            sim[2],
            sim[3],
            sim[0] / sim[3]
        );
    }
    println!("\n(speedup8 = simulated P=1 / simulated P=8; the paper reports 1.3-4.x at P=8)");
}
