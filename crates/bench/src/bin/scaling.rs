//! Thread-scaling benchmark of the numerical factorization, comparing the
//! work-stealing critical-path-priority executor against the retained
//! shared-FIFO baseline.
//!
//! For every suite matrix, every thread count in {1, 2, 4, 8} and every
//! scheduling discipline — `static1d` (owner-computes, priority pools),
//! `dynamic` (work stealing, priority pools) and `fifo-dynamic` (the
//! pre-work-stealing shared FIFO queue, kept as [`splu_sched::execute_fifo`])
//! — the median of [`splu_bench::REPS`] factorization times is recorded to
//! `BENCH_factor.json` in the working directory:
//!
//! ```json
//! [{"matrix": "...", "threads": 8, "mapping": "dynamic",
//!   "kind": "measured", "median_seconds": 0.0123}, ...]
//! ```
//!
//! Each record carries a `kind` field — `"measured"` for wall-clock rows,
//! `"simulated"` for the calibrated-simulator rows — so downstream tooling
//! never averages simulator ticks into wall-clock aggregates.
//!
//! The host may have fewer physical cores than the paper's 8-processor
//! Origin 2000 (this container has one), in which case wall-clock numbers
//! only expose scheduler overhead, not scheduling quality. Two additional
//! rows per matrix therefore evaluate the *policy* itself on the calibrated
//! simulator (DESIGN.md §5, substitution 2) at 8 virtual processors:
//! `sim8-priority` (the executor's critical-path inspector) versus
//! `sim8-fifo` (the pre-rework FIFO inspector), identical costs and
//! mapping otherwise.
//!
//! The closing summary prints both 8-way ratios (`dynamic` over
//! `fifo-dynamic` wall clock; priority over FIFO simulated) on the largest
//! matrix — the headline numbers of the executor rework. Set
//! `PARSPLU_REDUCED=1` for a fast CI-sized run.

use splu_bench::{calibrated_model, prepare_suite, Prepared, REPS};
use splu_core::{
    estimate_task_costs, factor_numeric_with, factor_task, update_task_with, BlockMatrix, Dispatch,
    KernelChoice, NumericRequest,
};
use splu_sched::{execute_fifo, simulate_dynamic, Mapping, ReadyPolicy, Task};
use std::fmt::Write as _;
use std::time::Instant;

/// Median wall time of `REPS` runs of `f`, in seconds.
fn median_time<F: FnMut()>(mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    times[times.len() / 2]
}

/// One timed configuration. `kind` distinguishes wall-clock measurements
/// from calibrated-simulator predictions in the JSON output.
struct Record {
    matrix: String,
    threads: usize,
    mapping: &'static str,
    kind: &'static str,
    kernel: &'static str,
    median_seconds: f64,
}

fn time_mapping(p: &Prepared, threads: usize, mapping: Mapping) -> f64 {
    let mut bm = BlockMatrix::assemble(&p.permuted, &p.sym.block_structure);
    let req = NumericRequest::coarse(&p.eforest, mapping)
        .threads(threads)
        .kernels(KernelChoice::Auto);
    median_time(|| {
        bm.reset_from(&p.permuted, &p.sym.block_structure);
        factor_numeric_with(&bm, &req).expect("factorization succeeds");
    })
}

/// The baseline: same task bodies, same graph, but the old shared-FIFO
/// executor under dynamic self-scheduling.
fn time_fifo(p: &Prepared, threads: usize) -> f64 {
    let mut bm = BlockMatrix::assemble(&p.permuted, &p.sym.block_structure);
    let kernels = Dispatch::resolve(KernelChoice::Auto);
    median_time(|| {
        bm.reset_from(&p.permuted, &p.sym.block_structure);
        execute_fifo(&p.eforest, threads, Mapping::Dynamic, |task| match task {
            Task::Factor(k) => {
                factor_task(&bm, k, 0.0).expect("factorization succeeds");
            }
            Task::Update { src, dst } => update_task_with(&bm, src, dst, &kernels),
        });
    })
}

fn main() {
    let prepared = prepare_suite();
    // One resolved name for every measured row: the same Auto choice the
    // timing loops run through.
    let kernel = Dispatch::resolve(KernelChoice::Auto).name();
    let threads_axis = [1usize, 2, 4, 8];
    let mut records: Vec<Record> = Vec::new();

    println!(
        "{:<14} {:>7} {:>13} {:>13} {:>13}",
        "matrix", "threads", "static1d", "dynamic", "fifo-dynamic"
    );
    for p in &prepared {
        for &threads in &threads_axis {
            let t_static = time_mapping(p, threads, Mapping::Static1D);
            let t_dynamic = time_mapping(p, threads, Mapping::Dynamic);
            let t_fifo = time_fifo(p, threads);
            println!(
                "{:<14} {:>7} {:>12.6}s {:>12.6}s {:>12.6}s",
                p.name, threads, t_static, t_dynamic, t_fifo
            );
            for (mapping, secs) in [
                ("static1d", t_static),
                ("dynamic", t_dynamic),
                ("fifo-dynamic", t_fifo),
            ] {
                records.push(Record {
                    matrix: p.name.to_string(),
                    threads,
                    mapping,
                    kind: "measured",
                    kernel,
                    median_seconds: secs,
                });
            }
        }
        // Scheduling-policy comparison at 8 virtual processors on the
        // calibrated simulator (ground truth for hosts with < 8 cores).
        let serial = records
            .iter()
            .find(|r| r.matrix == p.name && r.threads == 1 && r.mapping == "static1d")
            .map(|r| std::time::Duration::from_secs_f64(r.median_seconds))
            .expect("serial measurement recorded first");
        let model = calibrated_model(p, &p.eforest, serial);
        let costs = estimate_task_costs(&p.sym.block_structure, &p.eforest);
        let sim_prio =
            simulate_dynamic(&p.eforest, 8, &costs, &model, ReadyPolicy::Priority).makespan;
        let sim_fifo = simulate_dynamic(&p.eforest, 8, &costs, &model, ReadyPolicy::Fifo).makespan;
        println!(
            "{:<14} {:>7} {:>12.6}s {:>12.6}s   (sim8 priority vs fifo: {:.2}x)",
            p.name,
            "sim8",
            sim_prio,
            sim_fifo,
            sim_fifo / sim_prio
        );
        for (mapping, secs) in [("sim8-priority", sim_prio), ("sim8-fifo", sim_fifo)] {
            records.push(Record {
                matrix: p.name.to_string(),
                threads: 8,
                mapping,
                kind: "simulated",
                kernel: "none",
                median_seconds: secs,
            });
        }
    }

    // Headline: 8-thread dynamic (stealing) vs the FIFO baseline on the
    // largest matrix of the suite.
    if let Some(largest) = prepared.iter().max_by_key(|p| p.a.ncols()) {
        let find = |mapping: &str| {
            records
                .iter()
                .find(|r| r.matrix == largest.name && r.threads == 8 && r.mapping == mapping)
                .map(|r| r.median_seconds)
        };
        if let (Some(dynamic), Some(fifo)) = (find("dynamic"), find("fifo-dynamic")) {
            println!(
                "\n{}@8 threads: work-stealing {:.6}s vs FIFO {:.6}s  ({:.2}x wall clock)",
                largest.name,
                dynamic,
                fifo,
                fifo / dynamic
            );
        }
        if let (Some(prio), Some(fifo)) = (find("sim8-priority"), find("sim8-fifo")) {
            println!(
                "{}@8 virtual procs: priority {:.6}s vs FIFO {:.6}s  ({:.2}x simulated)",
                largest.name,
                prio,
                fifo,
                fifo / prio
            );
        }
    }

    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        writeln!(
            json,
            "  {{\"matrix\": \"{}\", \"threads\": {}, \"mapping\": \"{}\", \"kind\": \"{}\", \"kernel\": \"{}\", \"median_seconds\": {:.9}}}{}",
            r.matrix, r.threads, r.mapping, r.kind, r.kernel, r.median_seconds, sep
        )
        .expect("string write");
    }
    json.push_str("]\n");
    let parsed = splu_bench::json::parse(&json).expect("BENCH_factor.json is valid JSON");
    splu_bench::json::validate_bench_factor(&parsed).expect("BENCH_factor.json matches schema");
    std::fs::write("BENCH_factor.json", json).expect("write BENCH_factor.json");
    println!("\nwrote BENCH_factor.json ({} records)", records.len());
}
