//! Benchmark of the persistent-session API: what does a client save by
//! analyzing once and refactorizing, instead of paying the full pipeline
//! per factorization?
//!
//! For every suite matrix and every thread count in {1, 2, 4, 8}, two
//! minimum-of-[`splu_bench::REPS`] timings are recorded to
//! `BENCH_service.json` in the working directory:
//!
//! * `factor_s` — a one-shot [`SparseLu::factor`]: ordering, symbolic
//!   factorization, postorder, partition, graph build and the numeric
//!   phase, i.e. the cost of a sessionless client;
//! * `refactor_s` — [`SluSession::refactor`] on an already-analyzed
//!   session with fresh values: storage reset, value scatter and the
//!   numeric phase only.
//!
//! ```json
//! [{"matrix": "...", "threads": 2, "kind": "speedup",
//!   "factor_s": 0.04, "refactor_s": 0.02, "speedup": 2.0}, ...]
//! ```
//!
//! A final `kind = "serve"` record measures sustained throughput of the
//! serve-mode job shape — worker threads each owning a session, every job
//! a refactorization plus a solve — as `jobs_per_sec` over the whole
//! suite. Set `PARSPLU_REDUCED=1` for a fast CI-sized run.
//!
//! `kind = "concurrent"` records then measure the *daemon* end to end: a
//! real `serve_daemon` on a loopback TCP socket, driven by 1, 4 and 16
//! clients each owning one session and issuing synchronous `solve`
//! round-trips. These rows capture transport + framing + lane-routing
//! overhead and how throughput holds up under concurrent load; on a
//! single-core host expect roughly flat jobs/sec across client counts
//! (the daemon multiplexes, it cannot parallelize).

use parsplu::persist::Durability;
use parsplu::serve::{serve_daemon, Listener, ServeConfig};
use splu_bench::{min_time, suite};
use splu_client::{AddrBook, RetryPolicy};
use splu_core::{Options, SluSession, SparseLu};
use splu_matgen::manufactured_rhs;
use splu_sparse::CscMatrix;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::Instant;

/// Same pattern, deterministically reshuffled values: the serve-mode
/// workload is "new numbers, old structure".
fn revalue(a: &CscMatrix, salt: u64) -> CscMatrix {
    let mut b = a.clone();
    for (t, v) in b.values_mut().iter_mut().enumerate() {
        let wig = (((t as u64).wrapping_mul(salt * 2 + 1) % 97) as f64) / 97.0;
        *v += 0.2 * (wig - 0.5) * (1.0 + v.abs());
    }
    b
}

enum Record {
    Speedup {
        matrix: &'static str,
        threads: usize,
        factor_s: f64,
        refactor_s: f64,
    },
    Serve {
        workers: usize,
        jobs: usize,
        jobs_per_sec: f64,
    },
    Concurrent {
        clients: usize,
        jobs: usize,
        jobs_per_sec: f64,
    },
    Durability {
        mode: &'static str,
        clients: usize,
        jobs: usize,
        jobs_per_sec: f64,
    },
}

/// One synchronous request/response round-trip on a daemon connection;
/// panics on protocol violations (a bench must not mask them).
fn round_trip(w: &mut TcpStream, r: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(w, "{line}").expect("daemon write");
    w.flush().expect("daemon flush");
    let mut resp = String::new();
    r.read_line(&mut resp).expect("daemon read");
    assert!(!resp.is_empty(), "daemon closed the connection");
    resp
}

fn expect_ok(resp: &str, what: &str) {
    assert!(resp.contains("\"status\":\"ok\""), "{what} failed: {resp}");
}

/// End-to-end daemon throughput: `clients` loopback TCP connections, each
/// owning one prepared session, each issuing `jobs_per_client` synchronous
/// `solve` round-trips. Returns (jobs, jobs/sec) for the timed phase only
/// (session setup excluded).
fn concurrent_throughput(paths: &[String], clients: usize, jobs_per_client: usize) -> (usize, f64) {
    let listener = Listener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr_string();
    let cfg = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let daemon = std::thread::spawn(move || serve_daemon(cfg, listener, None).expect("daemon"));

    let ready = Barrier::new(clients + 1);
    let go = Barrier::new(clients + 1);
    let elapsed = std::thread::scope(|scope| {
        for c in 0..clients {
            let (addr, ready, go) = (&addr, &ready, &go);
            let path = &paths[c % paths.len()];
            scope.spawn(move || {
                let mut w = TcpStream::connect(addr.as_str()).expect("connect");
                w.set_nodelay(true).expect("nodelay");
                let mut r = BufReader::new(w.try_clone().expect("clone"));
                expect_ok(
                    &round_trip(&mut w, &mut r, &format!("analyze c{c} {path}")),
                    "analyze",
                );
                expect_ok(
                    &round_trip(&mut w, &mut r, &format!("factor c{c} {path}")),
                    "factor",
                );
                ready.wait();
                go.wait();
                for _ in 0..jobs_per_client {
                    expect_ok(&round_trip(&mut w, &mut r, &format!("solve c{c}")), "solve");
                }
            });
        }
        ready.wait();
        let t = Instant::now();
        go.wait();
        // The scope joins every client before `elapsed` is read.
        t
    })
    .elapsed()
    .as_secs_f64();

    // Drain the daemon so its counters and threads wind down cleanly.
    let mut w = TcpStream::connect(addr.as_str()).expect("connect");
    let mut r = BufReader::new(w.try_clone().expect("clone"));
    let ack = round_trip(&mut w, &mut r, "shutdown");
    assert!(ack.contains("\"drained\":true"), "bad shutdown ack: {ack}");
    daemon.join().expect("daemon thread");

    let jobs = clients * jobs_per_client;
    (jobs, jobs as f64 / elapsed)
}

/// Journaled-daemon throughput: same shape as [`concurrent_throughput`]
/// but every timed job is a mutating `refactor` (so each one pays a
/// journal append) against a daemon running with `--state-dir` and the
/// given `--durability` mode. The client side is the retry library, so
/// these rows measure the stack a production caller actually sees.
fn durability_throughput(
    paths: &[String],
    mode: Durability,
    clients: usize,
    jobs_per_client: usize,
) -> (usize, f64) {
    let state_dir = std::env::temp_dir().join(format!(
        "parsplu_service_journal_{}_{}",
        mode.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&state_dir);
    let listener = Listener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr_string();
    let cfg = ServeConfig {
        workers: 4,
        state_dir: Some(state_dir.clone()),
        durability: mode,
        ..ServeConfig::default()
    };
    let daemon = std::thread::spawn(move || serve_daemon(cfg, listener, None).expect("daemon"));

    let book = AddrBook::new(addr);
    let ready = Barrier::new(clients + 1);
    let go = Barrier::new(clients + 1);
    let elapsed = std::thread::scope(|scope| {
        for c in 0..clients {
            let (book, ready, go) = (book.clone(), &ready, &go);
            let path = &paths[c % paths.len()];
            scope.spawn(move || {
                let mut cl = splu_client::Client::new(
                    book,
                    format!("svc{c}"),
                    0xd00d ^ c as u64,
                    RetryPolicy::default(),
                );
                cl.call(&format!("analyze d{c} {path}")).expect("analyze");
                cl.call(&format!("factor d{c} {path}")).expect("factor");
                ready.wait();
                go.wait();
                for _ in 0..jobs_per_client {
                    cl.call(&format!("refactor d{c} {path}")).expect("refactor");
                }
            });
        }
        ready.wait();
        let t = Instant::now();
        go.wait();
        t
    })
    .elapsed()
    .as_secs_f64();

    let mut cl = splu_client::Client::new(book, "svc-ctl", 1, RetryPolicy::default());
    let ack = cl.call_once("shutdown").expect("shutdown");
    assert_eq!(
        ack.get("drained").and_then(|d| d.as_bool()),
        Some(true),
        "bad shutdown ack: {ack:?}"
    );
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&state_dir);

    let jobs = clients * jobs_per_client;
    (jobs, jobs as f64 / elapsed)
}

/// Sustained serve-shaped throughput: `workers` threads, each owning one
/// session per assigned matrix, each job a refactor + solve. Returns
/// (jobs, jobs/sec).
fn serve_throughput(matrices: &[(&'static str, CscMatrix)], workers: usize) -> (usize, f64) {
    const ROUNDS: usize = 8;
    let t = Instant::now();
    let jobs: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut done = 0usize;
                    for (i, (_, a)) in matrices.iter().enumerate() {
                        if i % workers != w {
                            continue;
                        }
                        let opts = Options::default();
                        let mut s =
                            SluSession::analyze(a.pattern(), &opts).expect("analysis succeeds");
                        for round in 0..ROUNDS {
                            let vals = revalue(a, (round + 1) as u64);
                            s.refactor(&vals).expect("refactorization succeeds");
                            let (_, b) = manufactured_rhs(&vals, round as u64);
                            let x = s.try_solve(&b).expect("solve succeeds");
                            assert!(x.iter().all(|v| v.is_finite()));
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });
    let secs = t.elapsed().as_secs_f64();
    (jobs, jobs as f64 / secs)
}

fn main() {
    let matrices: Vec<(&'static str, CscMatrix)> =
        suite().into_iter().map(|m| (m.name, m.a)).collect();
    let threads_axis = [1usize, 2, 4, 8];
    let mut records: Vec<Record> = Vec::new();

    println!(
        "{:<14} {:>7} {:>13} {:>13} {:>9}",
        "matrix", "threads", "factor", "refactor", "speedup"
    );
    for (name, a) in &matrices {
        let a2 = revalue(a, 3);
        for &threads in &threads_axis {
            let opts = Options::builder().threads(threads).build().expect("valid");
            let factor_s = min_time(|| {
                let lu = SparseLu::factor(&a2, &opts).expect("factorization succeeds");
                std::hint::black_box(lu.stats());
            })
            .as_secs_f64();
            let mut s = SluSession::analyze(a.pattern(), &opts).expect("analysis succeeds");
            s.factor(a).expect("factorization succeeds");
            let refactor_s = min_time(|| {
                s.refactor(&a2).expect("refactorization succeeds");
            })
            .as_secs_f64();
            println!(
                "{:<14} {:>7} {:>12.6}s {:>12.6}s {:>8.2}x",
                name,
                threads,
                factor_s,
                refactor_s,
                factor_s / refactor_s
            );
            records.push(Record::Speedup {
                matrix: name,
                threads,
                factor_s,
                refactor_s,
            });
        }
    }

    let workers = 4;
    let (jobs, jobs_per_sec) = serve_throughput(&matrices, workers);
    println!(
        "\nserve-shaped throughput: {jobs} jobs on {workers} workers, {jobs_per_sec:.1} jobs/s"
    );
    records.push(Record::Serve {
        workers,
        jobs,
        jobs_per_sec,
    });

    // Daemon throughput over a real loopback socket. The two smallest
    // suite matrices keep 16 resident sessions cheap; every client still
    // pays the full protocol path (framing, lane routing, solve, JSON).
    let reduced = std::env::var_os("PARSPLU_REDUCED").is_some();
    let mut by_size: Vec<&(&'static str, CscMatrix)> = matrices.iter().collect();
    by_size.sort_by_key(|(_, a)| a.ncols());
    let paths: Vec<String> = by_size
        .iter()
        .take(2)
        .map(|(name, a)| {
            let p = std::env::temp_dir()
                .join(format!("parsplu_service_{name}_{}.mtx", std::process::id()));
            splu_sparse::io::write_matrix_market(a, &p).expect("write matrix file");
            p.to_string_lossy().into_owned()
        })
        .collect();
    let jobs_per_client = if reduced { 64 } else { 256 };
    for clients in [1usize, 4, 16] {
        let (jobs, jobs_per_sec) = concurrent_throughput(&paths, clients, jobs_per_client);
        println!(
            "daemon throughput: {clients:>2} client(s), {jobs} jobs, {jobs_per_sec:.1} jobs/s"
        );
        records.push(Record::Concurrent {
            clients,
            jobs,
            jobs_per_sec,
        });
    }
    // Durability cost: the same daemon shape with a journal attached, one
    // row per `--durability` mode. Every timed job is a mutating refactor
    // (each pays an append; strict also pays an fsync before the ack).
    let dur_clients = 4usize;
    let dur_jobs = if reduced { 16 } else { 64 };
    for mode in [Durability::Strict, Durability::Relaxed] {
        let (jobs, jobs_per_sec) = durability_throughput(&paths, mode, dur_clients, dur_jobs);
        println!(
            "journaled throughput ({:>7}): {dur_clients} clients, {jobs} refactors, \
             {jobs_per_sec:.1} jobs/s",
            mode.name()
        );
        records.push(Record::Durability {
            mode: match mode {
                Durability::Strict => "strict",
                Durability::Relaxed => "relaxed",
            },
            clients: dur_clients,
            jobs,
            jobs_per_sec,
        });
    }
    for p in &paths {
        let _ = std::fs::remove_file(p);
    }

    // Headline: the 1-thread speedup on the largest matrix — the cleanest
    // statement of how much symbolic work a session amortizes away.
    if let Some((largest, _)) = matrices.iter().max_by_key(|(_, a)| a.ncols()) {
        for r in &records {
            if let Record::Speedup {
                matrix,
                threads: 1,
                factor_s,
                refactor_s,
            } = r
            {
                if matrix == largest {
                    println!(
                        "{largest}@1 thread: one-shot {factor_s:.6}s vs refactor {refactor_s:.6}s \
                         ({:.2}x)",
                        factor_s / refactor_s
                    );
                }
            }
        }
    }

    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        match r {
            Record::Speedup {
                matrix,
                threads,
                factor_s,
                refactor_s,
            } => writeln!(
                json,
                "  {{\"matrix\": \"{matrix}\", \"threads\": {threads}, \"kind\": \"speedup\", \
                 \"factor_s\": {factor_s:.9}, \"refactor_s\": {refactor_s:.9}, \
                 \"speedup\": {:.6}}}{sep}",
                factor_s / refactor_s
            ),
            Record::Serve {
                workers,
                jobs,
                jobs_per_sec,
            } => writeln!(
                json,
                "  {{\"matrix\": \"suite\", \"threads\": {workers}, \"kind\": \"serve\", \
                 \"jobs\": {jobs}, \"jobs_per_sec\": {jobs_per_sec:.6}}}{sep}"
            ),
            Record::Concurrent {
                clients,
                jobs,
                jobs_per_sec,
            } => writeln!(
                json,
                "  {{\"matrix\": \"suite\", \"threads\": {clients}, \"kind\": \"concurrent\", \
                 \"clients\": {clients}, \"jobs\": {jobs}, \"jobs_per_sec\": {jobs_per_sec:.6}}}{sep}"
            ),
            // The mode rides in `matrix` so the diff key (matrix,
            // threads, kind) keeps strict and relaxed rows distinct.
            Record::Durability {
                mode,
                clients,
                jobs,
                jobs_per_sec,
            } => writeln!(
                json,
                "  {{\"matrix\": \"suite-{mode}\", \"threads\": {clients}, \
                 \"kind\": \"durability\", \"durability\": \"{mode}\", \
                 \"jobs\": {jobs}, \"jobs_per_sec\": {jobs_per_sec:.6}}}{sep}"
            ),
        }
        .expect("string write");
    }
    json.push_str("]\n");
    let parsed = splu_bench::json::parse(&json).expect("BENCH_service.json is valid JSON");
    splu_bench::json::validate_bench_service(&parsed).expect("BENCH_service.json matches schema");
    std::fs::write("BENCH_service.json", json).expect("write BENCH_service.json");
    println!("\nwrote BENCH_service.json ({} records)", records.len());
}
