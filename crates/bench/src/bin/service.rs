//! Benchmark of the persistent-session API: what does a client save by
//! analyzing once and refactorizing, instead of paying the full pipeline
//! per factorization?
//!
//! For every suite matrix and every thread count in {1, 2, 4, 8}, two
//! minimum-of-[`splu_bench::REPS`] timings are recorded to
//! `BENCH_service.json` in the working directory:
//!
//! * `factor_s` — a one-shot [`SparseLu::factor`]: ordering, symbolic
//!   factorization, postorder, partition, graph build and the numeric
//!   phase, i.e. the cost of a sessionless client;
//! * `refactor_s` — [`SluSession::refactor`] on an already-analyzed
//!   session with fresh values: storage reset, value scatter and the
//!   numeric phase only.
//!
//! ```json
//! [{"matrix": "...", "threads": 2, "kind": "speedup",
//!   "factor_s": 0.04, "refactor_s": 0.02, "speedup": 2.0}, ...]
//! ```
//!
//! A final `kind = "serve"` record measures sustained throughput of the
//! serve-mode job shape — worker threads each owning a session, every job
//! a refactorization plus a solve — as `jobs_per_sec` over the whole
//! suite. Set `PARSPLU_REDUCED=1` for a fast CI-sized run.

use splu_bench::{min_time, suite};
use splu_core::{Options, SluSession, SparseLu};
use splu_matgen::manufactured_rhs;
use splu_sparse::CscMatrix;
use std::fmt::Write as _;
use std::time::Instant;

/// Same pattern, deterministically reshuffled values: the serve-mode
/// workload is "new numbers, old structure".
fn revalue(a: &CscMatrix, salt: u64) -> CscMatrix {
    let mut b = a.clone();
    for (t, v) in b.values_mut().iter_mut().enumerate() {
        let wig = (((t as u64).wrapping_mul(salt * 2 + 1) % 97) as f64) / 97.0;
        *v += 0.2 * (wig - 0.5) * (1.0 + v.abs());
    }
    b
}

enum Record {
    Speedup {
        matrix: &'static str,
        threads: usize,
        factor_s: f64,
        refactor_s: f64,
    },
    Serve {
        workers: usize,
        jobs: usize,
        jobs_per_sec: f64,
    },
}

/// Sustained serve-shaped throughput: `workers` threads, each owning one
/// session per assigned matrix, each job a refactor + solve. Returns
/// (jobs, jobs/sec).
fn serve_throughput(matrices: &[(&'static str, CscMatrix)], workers: usize) -> (usize, f64) {
    const ROUNDS: usize = 8;
    let t = Instant::now();
    let jobs: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut done = 0usize;
                    for (i, (_, a)) in matrices.iter().enumerate() {
                        if i % workers != w {
                            continue;
                        }
                        let opts = Options::default();
                        let mut s =
                            SluSession::analyze(a.pattern(), &opts).expect("analysis succeeds");
                        for round in 0..ROUNDS {
                            let vals = revalue(a, (round + 1) as u64);
                            s.refactor(&vals).expect("refactorization succeeds");
                            let (_, b) = manufactured_rhs(&vals, round as u64);
                            let x = s.try_solve(&b).expect("solve succeeds");
                            assert!(x.iter().all(|v| v.is_finite()));
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });
    let secs = t.elapsed().as_secs_f64();
    (jobs, jobs as f64 / secs)
}

fn main() {
    let matrices: Vec<(&'static str, CscMatrix)> =
        suite().into_iter().map(|m| (m.name, m.a)).collect();
    let threads_axis = [1usize, 2, 4, 8];
    let mut records: Vec<Record> = Vec::new();

    println!(
        "{:<14} {:>7} {:>13} {:>13} {:>9}",
        "matrix", "threads", "factor", "refactor", "speedup"
    );
    for (name, a) in &matrices {
        let a2 = revalue(a, 3);
        for &threads in &threads_axis {
            let opts = Options::builder().threads(threads).build().expect("valid");
            let factor_s = min_time(|| {
                let lu = SparseLu::factor(&a2, &opts).expect("factorization succeeds");
                std::hint::black_box(lu.stats());
            })
            .as_secs_f64();
            let mut s = SluSession::analyze(a.pattern(), &opts).expect("analysis succeeds");
            s.factor(a).expect("factorization succeeds");
            let refactor_s = min_time(|| {
                s.refactor(&a2).expect("refactorization succeeds");
            })
            .as_secs_f64();
            println!(
                "{:<14} {:>7} {:>12.6}s {:>12.6}s {:>8.2}x",
                name,
                threads,
                factor_s,
                refactor_s,
                factor_s / refactor_s
            );
            records.push(Record::Speedup {
                matrix: name,
                threads,
                factor_s,
                refactor_s,
            });
        }
    }

    let workers = 4;
    let (jobs, jobs_per_sec) = serve_throughput(&matrices, workers);
    println!(
        "\nserve-shaped throughput: {jobs} jobs on {workers} workers, {jobs_per_sec:.1} jobs/s"
    );
    records.push(Record::Serve {
        workers,
        jobs,
        jobs_per_sec,
    });

    // Headline: the 1-thread speedup on the largest matrix — the cleanest
    // statement of how much symbolic work a session amortizes away.
    if let Some((largest, _)) = matrices.iter().max_by_key(|(_, a)| a.ncols()) {
        for r in &records {
            if let Record::Speedup {
                matrix,
                threads: 1,
                factor_s,
                refactor_s,
            } = r
            {
                if matrix == largest {
                    println!(
                        "{largest}@1 thread: one-shot {factor_s:.6}s vs refactor {refactor_s:.6}s \
                         ({:.2}x)",
                        factor_s / refactor_s
                    );
                }
            }
        }
    }

    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        match r {
            Record::Speedup {
                matrix,
                threads,
                factor_s,
                refactor_s,
            } => writeln!(
                json,
                "  {{\"matrix\": \"{matrix}\", \"threads\": {threads}, \"kind\": \"speedup\", \
                 \"factor_s\": {factor_s:.9}, \"refactor_s\": {refactor_s:.9}, \
                 \"speedup\": {:.6}}}{sep}",
                factor_s / refactor_s
            ),
            Record::Serve {
                workers,
                jobs,
                jobs_per_sec,
            } => writeln!(
                json,
                "  {{\"matrix\": \"suite\", \"threads\": {workers}, \"kind\": \"serve\", \
                 \"jobs\": {jobs}, \"jobs_per_sec\": {jobs_per_sec:.6}}}{sep}"
            ),
        }
        .expect("string write");
    }
    json.push_str("]\n");
    let parsed = splu_bench::json::parse(&json).expect("BENCH_service.json is valid JSON");
    splu_bench::json::validate_bench_service(&parsed).expect("BENCH_service.json matches schema");
    std::fs::write("BENCH_service.json", json).expect("write BENCH_service.json");
    println!("\nwrote BENCH_service.json ({} records)", records.len());
}
