//! Chaos soak harness for the serve daemon.
//!
//! Boots a real [`serve_daemon`] on a loopback TCP socket with a small
//! session budget and a bounded queue, then hammers it with many
//! concurrent clients running a seed-replayable job mix while injecting
//! faults:
//!
//! * **mid-job disconnect** — a client fires a mutating `refactor`, drops
//!   the socket without reading the response, reconnects and recovers;
//! * **oversize frames** — lines beyond `--max-line-bytes` must cost
//!   exactly one structured `oversize_frame` error;
//! * **binary frames** — NUL bytes must cost one `invalid_frame` error;
//! * **forced eviction** — the budget holds ~half the client sessions, so
//!   the pool constantly evicts; clients recover through the structured
//!   `session_evicted` path (re-analyze, re-factor, retry);
//! * **worker panic** — with `--features failpoints`, a serial phase arms
//!   a panic inside a `Factor(k)` task and asserts containment (the job
//!   fails with `worker_panic`, the daemon and session survive).
//!
//! Invariants checked across the whole run:
//!
//! * every awaited request gets **exactly one** JSON response (a read
//!   timeout or early close is a harness failure);
//! * every successful solve is **bitwise identical** (`x_hash`) to a
//!   fresh single-shot solver run on the same matrix — across evictions,
//!   reconnects and refactorizations;
//! * the pool's resident-byte **peak never exceeds the budget**;
//! * `shutdown` drains cleanly and acknowledges last.
//!
//! ```text
//! cargo run --release -p splu-bench --features failpoints --bin soak -- \
//!     [--seed N] [--clients N] [--jobs N] [--log PATH]
//! ```
//!
//! Defaults: seed 42, 16 clients, 64 jobs per client (1024 total);
//! `PARSPLU_REDUCED=1` shrinks to 4 clients x 16 jobs for CI. The run is
//! deterministic per seed on the client side (the interleaving under the
//! daemon is not, and must not need to be). A line-oriented log is
//! written to `--log` (default `soak.log`); the process exits non-zero on
//! any invariant violation.

use parsplu::serve::{serve_daemon, solution_hash, Listener, ServeConfig};
use splu_bench::json::{parse, Json};
use splu_core::{Options, SluSession};
use splu_matgen::manufactured_rhs;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// SplitMix64: tiny, deterministic, seed-replayable.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Default)]
struct Totals {
    jobs_ok: AtomicU64,
    solve_hashes_checked: AtomicU64,
    evictions_recovered: AtomicU64,
    overload_retries: AtomicU64,
    disconnects_injected: AtomicU64,
    oversize_injected: AtomicU64,
    nul_injected: AtomicU64,
    failures: AtomicU64,
}

struct Log(Mutex<Vec<String>>);

impl Log {
    fn push(&self, line: String) {
        self.0.lock().unwrap().push(line);
    }
}

struct Client {
    w: TcpStream,
    r: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let w = TcpStream::connect(addr)?;
        w.set_nodelay(true)?;
        w.set_read_timeout(Some(Duration::from_secs(60)))?;
        let r = BufReader::new(w.try_clone()?);
        Ok(Client { w, r })
    }

    /// One request/response round-trip. `Err` means a lost response —
    /// an invariant violation everywhere except right after an injected
    /// disconnect.
    fn call(&mut self, line: &str) -> Result<Json, String> {
        writeln!(self.w, "{line}").map_err(|e| format!("write failed: {e}"))?;
        self.w.flush().map_err(|e| format!("flush failed: {e}"))?;
        let mut resp = String::new();
        self.r
            .read_line(&mut resp)
            .map_err(|e| format!("read failed: {e}"))?;
        if resp.is_empty() {
            return Err("connection closed before the response".to_string());
        }
        parse(resp.trim_end()).map_err(|e| format!("unparseable response {resp:?}: {e}"))
    }
}

fn status(v: &Json) -> &str {
    v.get("status").and_then(|s| s.as_str()).unwrap_or("?")
}

fn kind(v: &Json) -> &str {
    v.get("kind").and_then(|k| k.as_str()).unwrap_or("")
}

/// The per-client soak loop. Returns an error string on the first
/// invariant violation.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    c: usize,
    addr: &str,
    path: &str,
    expected_hash: &str,
    jobs: usize,
    seed: u64,
    max_line_bytes: usize,
    totals: &Totals,
    log: &Log,
) -> Result<(), String> {
    let mut rng = Rng(seed ^ (c as u64).wrapping_mul(0x5851_f42d_4c95_7f2d));
    let sess = format!("s{c}");
    let mut cl = Client::connect(addr).map_err(|e| format!("client {c}: connect: {e}"))?;

    // A call that rides out backpressure and eviction: overloaded →
    // sleep + retry; session_evicted / lost numeric state → re-analyze,
    // re-factor, retry. Anything else unexpected is a failure.
    fn robust_call(
        cl: &mut Client,
        sess: &str,
        path: &str,
        line: &str,
        totals: &Totals,
    ) -> Result<Json, String> {
        for _attempt in 0..50 {
            let v = cl.call(line).map_err(|e| format!("{line}: {e}"))?;
            if status(&v) == "ok" {
                return Ok(v);
            }
            match kind(&v) {
                "overloaded" | "shutting_down" => {
                    totals.overload_retries.fetch_add(1, Ordering::Relaxed);
                    let hint = v
                        .get("retry_after_hint")
                        .and_then(|h| h.as_num())
                        .unwrap_or(0.05);
                    std::thread::sleep(Duration::from_secs_f64(hint.clamp(0.001, 0.25)));
                }
                "session_evicted" => {
                    totals.evictions_recovered.fetch_add(1, Ordering::Relaxed);
                    // Recovery path: the tombstone demands a re-analyze.
                    let a = cl
                        .call(&format!("analyze {sess} {path}"))
                        .map_err(|e| format!("recovery analyze: {e}"))?;
                    if status(&a) != "ok" && kind(&a) != "overloaded" {
                        return Err(format!("recovery analyze failed: {a:?}"));
                    }
                    let f = cl.call(&format!("factor {sess} {path}"))?;
                    if status(&f) != "ok" && !matches!(kind(&f), "overloaded" | "session_evicted") {
                        return Err(format!("recovery factor failed: {f:?}"));
                    }
                }
                // A cancelled/aborted earlier mutation can leave the
                // session without numeric values; factor restores it.
                "bad_request" | "numeric" | "cancelled" => {
                    let f = cl.call(&format!("factor {sess} {path}"))?;
                    if status(&f) != "ok" && !matches!(kind(&f), "overloaded" | "session_evicted") {
                        return Err(format!("restore factor failed: {f:?}"));
                    }
                }
                other => return Err(format!("unexpected response kind {other}: for {line}")),
            }
        }
        Err(format!("no success after 50 attempts: {line}"))
    }

    robust_call(
        &mut cl,
        &sess,
        path,
        &format!("analyze {sess} {path}"),
        totals,
    )?;
    robust_call(
        &mut cl,
        &sess,
        path,
        &format!("factor {sess} {path}"),
        totals,
    )?;

    for j in 0..jobs {
        let dice = rng.below(100);
        if dice < 70 {
            // Solve and verify the bits against the fresh-solver oracle.
            let v = robust_call(&mut cl, &sess, path, &format!("solve {sess}"), totals)?;
            let h = v
                .get("x_hash")
                .and_then(|h| h.as_str())
                .ok_or_else(|| format!("solve response without x_hash: {v:?}"))?;
            if h != expected_hash {
                return Err(format!(
                    "client {c} job {j}: x_hash {h} != fresh-solver {expected_hash}"
                ));
            }
            totals.solve_hashes_checked.fetch_add(1, Ordering::Relaxed);
        } else if dice < 85 {
            robust_call(
                &mut cl,
                &sess,
                path,
                &format!("refactor {sess} {path}"),
                totals,
            )?;
        } else if dice < 90 {
            let v = cl.call("stats")?;
            let budget = v.get("session_budget").and_then(|b| b.as_num());
            let peak = v
                .get("resident_bytes_peak")
                .and_then(|b| b.as_num())
                .unwrap_or(f64::MAX);
            if let Some(b) = budget {
                if peak > b {
                    return Err(format!(
                        "client {c} job {j}: resident peak {peak} exceeds budget {b}"
                    ));
                }
            }
        } else if dice < 93 {
            // Garbage op: exactly one structured bad_request.
            let v = cl.call(&format!("frobnicate {sess}"))?;
            if kind(&v) != "bad_request" {
                return Err(format!("garbage op got {v:?}"));
            }
        } else if dice < 96 {
            // Oversize frame: one error line, stream stays usable.
            totals.oversize_injected.fetch_add(1, Ordering::Relaxed);
            let v = cl.call(&"z".repeat(max_line_bytes + 17))?;
            if kind(&v) != "oversize_frame" {
                return Err(format!("oversize frame got {v:?}"));
            }
        } else if dice < 98 {
            // Binary frame: NUL bytes are rejected in one line.
            totals.nul_injected.fetch_add(1, Ordering::Relaxed);
            let v = cl.call(&format!("solve\0{sess}"))?;
            if kind(&v) != "invalid_frame" {
                return Err(format!("NUL frame got {v:?}"));
            }
        } else {
            // Mid-job disconnect: fire a mutating job, vanish without
            // reading, reconnect, recover, and prove the bits survived.
            totals.disconnects_injected.fetch_add(1, Ordering::Relaxed);
            log.push(format!("client {c} job {j}: injected mid-job disconnect"));
            let _ = writeln!(cl.w, "refactor {sess} {path}");
            let _ = cl.w.flush();
            drop(cl);
            cl = Client::connect(addr).map_err(|e| format!("client {c}: reconnect: {e}"))?;
            robust_call(
                &mut cl,
                &sess,
                path,
                &format!("factor {sess} {path}"),
                totals,
            )?;
            let v = robust_call(&mut cl, &sess, path, &format!("solve {sess}"), totals)?;
            let h = v.get("x_hash").and_then(|h| h.as_str()).unwrap_or("?");
            if h != expected_hash {
                return Err(format!(
                    "client {c} job {j}: post-disconnect x_hash {h} != {expected_hash}"
                ));
            }
            totals.solve_hashes_checked.fetch_add(1, Ordering::Relaxed);
        }
        totals.jobs_ok.fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

/// With failpoints compiled in: arm a panic inside `Factor(0)`, prove the
/// daemon contains it as a structured `worker_panic` job failure, then
/// prove the session recovers to bit-identical solves.
#[cfg(feature = "failpoints")]
fn worker_panic_phase(
    addr: &str,
    path: &str,
    expected_hash: &str,
    log: &Log,
) -> Result<(), String> {
    use splu_core::failpoints::FailScenario;
    let mut cl = Client::connect(addr).map_err(|e| format!("panic phase connect: {e}"))?;
    let sess = "panic_probe";
    let a = cl.call(&format!("analyze {sess} {path}"))?;
    if status(&a) != "ok" {
        return Err(format!("panic phase analyze failed: {a:?}"));
    }
    {
        let scenario = FailScenario::new();
        scenario.panic_at_factor(0);
        let v = cl.call(&format!("factor {sess} {path}"))?;
        if kind(&v) != "worker_panic" {
            return Err(format!("armed factor got {v:?}, wanted worker_panic"));
        }
        let code = v.get("exit_code").and_then(|c| c.as_num());
        if code != Some(4.0) {
            return Err(format!("worker_panic with exit_code {code:?}, wanted 4"));
        }
        log.push("worker panic injected and contained (kind=worker_panic, exit 4)".to_string());
        // The scenario guard disarms the failpoint on drop.
    }
    let v = cl.call(&format!("factor {sess} {path}"))?;
    if status(&v) != "ok" {
        return Err(format!("factor after contained panic failed: {v:?}"));
    }
    let v = cl.call(&format!("solve {sess}"))?;
    let h = v.get("x_hash").and_then(|h| h.as_str()).unwrap_or("?");
    if h != expected_hash {
        return Err(format!("post-panic x_hash {h} != {expected_hash}"));
    }
    log.push("session recovered after worker panic; bits identical".to_string());
    Ok(())
}

fn main() {
    let mut seed = 42u64;
    let reduced = std::env::var_os("PARSPLU_REDUCED").is_some();
    let mut clients: usize = if reduced { 4 } else { 16 };
    let mut jobs: usize = if reduced { 16 } else { 64 };
    let mut log_path = "soak.log".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match a.as_str() {
            "--seed" => seed = take("--seed").parse().expect("integer seed"),
            "--clients" => clients = take("--clients").parse().expect("client count"),
            "--jobs" => jobs = take("--jobs").parse().expect("jobs per client"),
            "--log" => log_path = take("--log"),
            other => panic!("unknown argument {other}; see the module docs"),
        }
    }

    // Fixture: one reduced paper matrix on disk, plus the fresh-solver
    // oracle hash every wire solve must reproduce (the serve path solves
    // the manufactured RHS with salt 1 when no rhs file is given).
    let path = std::env::temp_dir()
        .join(format!("parsplu_soak_{}.mtx", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let a = splu_matgen::paper_matrix("goodwin", splu_matgen::Scale::Reduced)
        .expect("goodwin analogue");
    splu_sparse::io::write_matrix_market(&a, std::path::Path::new(&path))
        .expect("write fixture matrix");
    let opts = Options::default();
    let mut oracle = SluSession::analyze(a.pattern(), &opts).expect("oracle analyze");
    oracle.factor(&a).expect("oracle factor");
    let b = manufactured_rhs(&a, 1).1;
    let x = oracle.try_solve(&b).expect("oracle solve");
    let expected_hash = format!("{:#018x}", solution_hash(&x));

    // Budget ~ half the client sessions so eviction is constant traffic.
    // A factored serve entry is the session plus the retained matrix.
    let matrix_bytes = (a.nnz() * 16 + (a.ncols() + 1) * 8) as u64;
    let entry_bytes = oracle.resident_bytes() + matrix_bytes;
    let budget = entry_bytes * (clients as u64 / 2).max(2) + entry_bytes / 2;
    let max_line_bytes = 4096;

    let cfg = ServeConfig {
        workers: 4,
        queue_cap: 8,
        max_line_bytes,
        session_budget: Some(budget),
        idle_timeout: None,
    };
    let listener = Listener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr_string();
    let daemon = std::thread::spawn(move || serve_daemon(cfg, listener, None).expect("daemon"));

    println!(
        "soak: {clients} clients x {jobs} jobs, seed {seed}, budget {budget} bytes \
         (~{} sessions), daemon at {addr}",
        budget / entry_bytes
    );
    let totals = Totals::default();
    let log = Log(Mutex::new(Vec::new()));
    log.push(format!(
        "soak seed={seed} clients={clients} jobs={jobs} budget={budget} addr={addr}"
    ));

    let t0 = Instant::now();
    let errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (addr, path, expected_hash, totals, log) =
                    (&addr, &path, &expected_hash, &totals, &log);
                scope.spawn(move || {
                    client_loop(
                        c,
                        addr,
                        path,
                        expected_hash,
                        jobs,
                        seed,
                        max_line_bytes,
                        totals,
                        log,
                    )
                    .map_err(|e| format!("client {c}: {e}"))
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| match h.join() {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e),
                Err(_) => Some("client thread panicked".to_string()),
            })
            .collect()
    });
    let concurrent_secs = t0.elapsed().as_secs_f64();
    for e in &errors {
        totals.failures.fetch_add(1, Ordering::Relaxed);
        log.push(format!("FAILURE: {e}"));
        eprintln!("soak FAILURE: {e}");
    }

    // Serial chaos phase: the factor failpoint is process-global, so it
    // must not overlap the concurrent traffic.
    #[cfg(feature = "failpoints")]
    if let Err(e) = worker_panic_phase(&addr, &path, &expected_hash, &log) {
        totals.failures.fetch_add(1, Ordering::Relaxed);
        log.push(format!("FAILURE: {e}"));
        eprintln!("soak FAILURE: {e}");
    }
    #[cfg(not(feature = "failpoints"))]
    log.push("worker-panic phase skipped (build without --features failpoints)".to_string());

    // Final stats + graceful shutdown: peak under budget, drained ack.
    let mut cl = Client::connect(&addr).expect("final connect");
    match cl.call("stats") {
        Ok(v) => {
            let peak = v
                .get("resident_bytes_peak")
                .and_then(|b| b.as_num())
                .unwrap_or(f64::MAX);
            log.push(format!(
                "final stats: resident_peak={} budget={} evicted={} overload_rejects={} \
                 conns_dropped={}",
                peak,
                budget,
                v.get("sessions_evicted")
                    .and_then(|n| n.as_num())
                    .unwrap_or(-1.0),
                v.get("jobs_rejected_overload")
                    .and_then(|n| n.as_num())
                    .unwrap_or(-1.0),
                v.get("connections_dropped")
                    .and_then(|n| n.as_num())
                    .unwrap_or(-1.0),
            ));
            if peak > budget as f64 {
                totals.failures.fetch_add(1, Ordering::Relaxed);
                let e = format!("resident peak {peak} exceeds budget {budget}");
                log.push(format!("FAILURE: {e}"));
                eprintln!("soak FAILURE: {e}");
            }
        }
        Err(e) => {
            totals.failures.fetch_add(1, Ordering::Relaxed);
            log.push(format!("FAILURE: final stats: {e}"));
        }
    }
    match cl.call("shutdown") {
        Ok(ack) => {
            if ack.get("drained") != Some(&Json::Bool(true)) {
                totals.failures.fetch_add(1, Ordering::Relaxed);
                log.push(format!(
                    "FAILURE: shutdown ack without drained:true: {ack:?}"
                ));
            }
        }
        Err(e) => {
            totals.failures.fetch_add(1, Ordering::Relaxed);
            log.push(format!("FAILURE: shutdown: {e}"));
        }
    }
    let summary = daemon.join().expect("daemon thread");
    let _ = std::fs::remove_file(&path);

    let failures = totals.failures.load(Ordering::Relaxed);
    let done = totals.jobs_ok.load(Ordering::Relaxed);
    let line = format!(
        "soak done: {done} jobs ok in {concurrent_secs:.1}s ({:.0} jobs/s), \
         {} solves hash-checked, {} evictions recovered, {} overload retries, \
         {} disconnects, {} oversize, {} nul frames injected; daemon saw {} jobs / {} conns; \
         {failures} failure(s)",
        done as f64 / concurrent_secs,
        totals.solve_hashes_checked.load(Ordering::Relaxed),
        totals.evictions_recovered.load(Ordering::Relaxed),
        totals.overload_retries.load(Ordering::Relaxed),
        totals.disconnects_injected.load(Ordering::Relaxed),
        totals.oversize_injected.load(Ordering::Relaxed),
        totals.nul_injected.load(Ordering::Relaxed),
        summary.jobs,
        summary.connections,
    );
    println!("{line}");
    log.push(line);
    std::fs::write(&log_path, log.0.lock().unwrap().join("\n") + "\n")
        .unwrap_or_else(|e| eprintln!("soak: could not write {log_path}: {e}"));
    if failures > 0 {
        std::process::exit(1);
    }
}
