//! Chaos soak harness for the serve daemon.
//!
//! Boots a real [`serve_daemon`] on a loopback TCP socket with a small
//! session budget and a bounded queue, then hammers it with many
//! concurrent clients running a seed-replayable job mix while injecting
//! faults:
//!
//! * **mid-job disconnect** — a client fires a mutating `refactor`, drops
//!   the socket without reading the response, reconnects and recovers;
//! * **oversize frames** — lines beyond `--max-line-bytes` must cost
//!   exactly one structured `oversize_frame` error;
//! * **binary frames** — NUL bytes must cost one `invalid_frame` error;
//! * **forced eviction** — the budget holds ~half the client sessions, so
//!   the pool constantly evicts; clients recover through the structured
//!   `session_evicted` path (re-analyze, re-factor, retry);
//! * **worker panic** — with `--features failpoints`, a serial phase arms
//!   a panic inside a `Factor(k)` task and asserts containment (the job
//!   fails with `worker_panic`, the daemon and session survive);
//! * **kill–replay** — a final phase runs the daemon as a *child process*
//!   with a durable journal (`--state-dir`, strict durability), SIGKILLs
//!   it several times mid-burst and restarts it against the same state
//!   dir while retry clients (`splu_client`) ride through: zero
//!   acknowledged jobs lost, retried duplicates served from the replay
//!   cache (per daemon counters), and every post-restart solve bitwise
//!   equal to the fresh-solver oracle.
//!
//! Invariants checked across the whole run:
//!
//! * every awaited request gets **exactly one** JSON response (a read
//!   timeout or early close is a harness failure);
//! * every successful solve is **bitwise identical** (`x_hash`) to a
//!   fresh single-shot solver run on the same matrix — across evictions,
//!   reconnects and refactorizations;
//! * the pool's resident-byte **peak never exceeds the budget**;
//! * `shutdown` drains cleanly and acknowledges last.
//!
//! ```text
//! cargo run --release -p splu-bench --features failpoints --bin soak -- \
//!     [--seed N] [--clients N] [--jobs N] [--log PATH]
//! ```
//!
//! Defaults: seed 42, 16 clients, 64 jobs per client (1024 total);
//! `PARSPLU_REDUCED=1` shrinks to 4 clients x 16 jobs for CI. The run is
//! deterministic per seed on the client side (the interleaving under the
//! daemon is not, and must not need to be). A line-oriented log is
//! written to `--log` (default `soak.log`); the process exits non-zero on
//! any invariant violation.

use parsplu::persist::Durability;
use parsplu::serve::{serve_daemon, solution_hash, Listener, ServeConfig};
use splu_bench::json::{parse, Json};
use splu_client::{AddrBook, RetryPolicy};
use splu_core::{Options, SluSession};
use splu_matgen::manufactured_rhs;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// SplitMix64: tiny, deterministic, seed-replayable.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Default)]
struct Totals {
    jobs_ok: AtomicU64,
    solve_hashes_checked: AtomicU64,
    evictions_recovered: AtomicU64,
    overload_retries: AtomicU64,
    disconnects_injected: AtomicU64,
    oversize_injected: AtomicU64,
    nul_injected: AtomicU64,
    kills_injected: AtomicU64,
    duplicates_replayed: AtomicU64,
    failures: AtomicU64,
}

struct Log(Mutex<Vec<String>>);

impl Log {
    fn push(&self, line: String) {
        self.0.lock().unwrap().push(line);
    }
}

struct Client {
    w: TcpStream,
    r: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let w = TcpStream::connect(addr)?;
        w.set_nodelay(true)?;
        w.set_read_timeout(Some(Duration::from_secs(60)))?;
        let r = BufReader::new(w.try_clone()?);
        Ok(Client { w, r })
    }

    /// One request/response round-trip. `Err` means a lost response —
    /// an invariant violation everywhere except right after an injected
    /// disconnect.
    fn call(&mut self, line: &str) -> Result<Json, String> {
        writeln!(self.w, "{line}").map_err(|e| format!("write failed: {e}"))?;
        self.w.flush().map_err(|e| format!("flush failed: {e}"))?;
        let mut resp = String::new();
        self.r
            .read_line(&mut resp)
            .map_err(|e| format!("read failed: {e}"))?;
        if resp.is_empty() {
            return Err("connection closed before the response".to_string());
        }
        parse(resp.trim_end()).map_err(|e| format!("unparseable response {resp:?}: {e}"))
    }
}

fn status(v: &Json) -> &str {
    v.get("status").and_then(|s| s.as_str()).unwrap_or("?")
}

fn kind(v: &Json) -> &str {
    v.get("kind").and_then(|k| k.as_str()).unwrap_or("")
}

/// The per-client soak loop. Returns an error string on the first
/// invariant violation.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    c: usize,
    addr: &str,
    path: &str,
    expected_hash: &str,
    jobs: usize,
    seed: u64,
    max_line_bytes: usize,
    totals: &Totals,
    log: &Log,
) -> Result<(), String> {
    let mut rng = Rng(seed ^ (c as u64).wrapping_mul(0x5851_f42d_4c95_7f2d));
    let sess = format!("s{c}");
    let mut cl = Client::connect(addr).map_err(|e| format!("client {c}: connect: {e}"))?;

    // A call that rides out backpressure and eviction: overloaded →
    // sleep + retry; session_evicted / lost numeric state → re-analyze,
    // re-factor, retry. Anything else unexpected is a failure.
    fn robust_call(
        cl: &mut Client,
        sess: &str,
        path: &str,
        line: &str,
        totals: &Totals,
    ) -> Result<Json, String> {
        for _attempt in 0..50 {
            let v = cl.call(line).map_err(|e| format!("{line}: {e}"))?;
            if status(&v) == "ok" {
                return Ok(v);
            }
            match kind(&v) {
                "overloaded" | "shutting_down" => {
                    totals.overload_retries.fetch_add(1, Ordering::Relaxed);
                    let hint = v
                        .get("retry_after_hint")
                        .and_then(|h| h.as_num())
                        .unwrap_or(0.05);
                    std::thread::sleep(Duration::from_secs_f64(hint.clamp(0.001, 0.25)));
                }
                "session_evicted" => {
                    totals.evictions_recovered.fetch_add(1, Ordering::Relaxed);
                    // Recovery path: the tombstone demands a re-analyze.
                    let a = cl
                        .call(&format!("analyze {sess} {path}"))
                        .map_err(|e| format!("recovery analyze: {e}"))?;
                    if status(&a) != "ok" && kind(&a) != "overloaded" {
                        return Err(format!("recovery analyze failed: {a:?}"));
                    }
                    let f = cl.call(&format!("factor {sess} {path}"))?;
                    if status(&f) != "ok" && !matches!(kind(&f), "overloaded" | "session_evicted") {
                        return Err(format!("recovery factor failed: {f:?}"));
                    }
                }
                // A cancelled/aborted earlier mutation can leave the
                // session without numeric values; factor restores it.
                "bad_request" | "numeric" | "cancelled" => {
                    let f = cl.call(&format!("factor {sess} {path}"))?;
                    if status(&f) != "ok" && !matches!(kind(&f), "overloaded" | "session_evicted") {
                        return Err(format!("restore factor failed: {f:?}"));
                    }
                }
                other => return Err(format!("unexpected response kind {other}: for {line}")),
            }
        }
        Err(format!("no success after 50 attempts: {line}"))
    }

    robust_call(
        &mut cl,
        &sess,
        path,
        &format!("analyze {sess} {path}"),
        totals,
    )?;
    robust_call(
        &mut cl,
        &sess,
        path,
        &format!("factor {sess} {path}"),
        totals,
    )?;

    for j in 0..jobs {
        let dice = rng.below(100);
        if dice < 70 {
            // Solve and verify the bits against the fresh-solver oracle.
            let v = robust_call(&mut cl, &sess, path, &format!("solve {sess}"), totals)?;
            let h = v
                .get("x_hash")
                .and_then(|h| h.as_str())
                .ok_or_else(|| format!("solve response without x_hash: {v:?}"))?;
            if h != expected_hash {
                return Err(format!(
                    "client {c} job {j}: x_hash {h} != fresh-solver {expected_hash}"
                ));
            }
            totals.solve_hashes_checked.fetch_add(1, Ordering::Relaxed);
        } else if dice < 85 {
            robust_call(
                &mut cl,
                &sess,
                path,
                &format!("refactor {sess} {path}"),
                totals,
            )?;
        } else if dice < 90 {
            let v = cl.call("stats")?;
            let budget = v.get("session_budget").and_then(|b| b.as_num());
            let peak = v
                .get("resident_bytes_peak")
                .and_then(|b| b.as_num())
                .unwrap_or(f64::MAX);
            if let Some(b) = budget {
                if peak > b {
                    return Err(format!(
                        "client {c} job {j}: resident peak {peak} exceeds budget {b}"
                    ));
                }
            }
        } else if dice < 93 {
            // Garbage op: exactly one structured bad_request.
            let v = cl.call(&format!("frobnicate {sess}"))?;
            if kind(&v) != "bad_request" {
                return Err(format!("garbage op got {v:?}"));
            }
        } else if dice < 96 {
            // Oversize frame: one error line, stream stays usable.
            totals.oversize_injected.fetch_add(1, Ordering::Relaxed);
            let v = cl.call(&"z".repeat(max_line_bytes + 17))?;
            if kind(&v) != "oversize_frame" {
                return Err(format!("oversize frame got {v:?}"));
            }
        } else if dice < 98 {
            // Binary frame: NUL bytes are rejected in one line.
            totals.nul_injected.fetch_add(1, Ordering::Relaxed);
            let v = cl.call(&format!("solve\0{sess}"))?;
            if kind(&v) != "invalid_frame" {
                return Err(format!("NUL frame got {v:?}"));
            }
        } else {
            // Mid-job disconnect: fire a mutating job, vanish without
            // reading, reconnect, recover, and prove the bits survived.
            totals.disconnects_injected.fetch_add(1, Ordering::Relaxed);
            log.push(format!("client {c} job {j}: injected mid-job disconnect"));
            let _ = writeln!(cl.w, "refactor {sess} {path}");
            let _ = cl.w.flush();
            drop(cl);
            cl = Client::connect(addr).map_err(|e| format!("client {c}: reconnect: {e}"))?;
            robust_call(
                &mut cl,
                &sess,
                path,
                &format!("factor {sess} {path}"),
                totals,
            )?;
            let v = robust_call(&mut cl, &sess, path, &format!("solve {sess}"), totals)?;
            let h = v.get("x_hash").and_then(|h| h.as_str()).unwrap_or("?");
            if h != expected_hash {
                return Err(format!(
                    "client {c} job {j}: post-disconnect x_hash {h} != {expected_hash}"
                ));
            }
            totals.solve_hashes_checked.fetch_add(1, Ordering::Relaxed);
        }
        totals.jobs_ok.fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

/// With failpoints compiled in: arm a panic inside `Factor(0)`, prove the
/// daemon contains it as a structured `worker_panic` job failure, then
/// prove the session recovers to bit-identical solves.
#[cfg(feature = "failpoints")]
fn worker_panic_phase(
    addr: &str,
    path: &str,
    expected_hash: &str,
    log: &Log,
) -> Result<(), String> {
    use splu_core::failpoints::FailScenario;
    let mut cl = Client::connect(addr).map_err(|e| format!("panic phase connect: {e}"))?;
    let sess = "panic_probe";
    let a = cl.call(&format!("analyze {sess} {path}"))?;
    if status(&a) != "ok" {
        return Err(format!("panic phase analyze failed: {a:?}"));
    }
    {
        let scenario = FailScenario::new();
        scenario.panic_at_factor(0);
        let v = cl.call(&format!("factor {sess} {path}"))?;
        if kind(&v) != "worker_panic" {
            return Err(format!("armed factor got {v:?}, wanted worker_panic"));
        }
        let code = v.get("exit_code").and_then(|c| c.as_num());
        if code != Some(4.0) {
            return Err(format!("worker_panic with exit_code {code:?}, wanted 4"));
        }
        log.push("worker panic injected and contained (kind=worker_panic, exit 4)".to_string());
        // The scenario guard disarms the failpoint on drop.
    }
    let v = cl.call(&format!("factor {sess} {path}"))?;
    if status(&v) != "ok" {
        return Err(format!("factor after contained panic failed: {v:?}"));
    }
    let v = cl.call(&format!("solve {sess}"))?;
    let h = v.get("x_hash").and_then(|h| h.as_str()).unwrap_or("?");
    if h != expected_hash {
        return Err(format!("post-panic x_hash {h} != {expected_hash}"));
    }
    log.push("session recovered after worker panic; bits identical".to_string());
    Ok(())
}

// ---------------------------------------------------------------------------
// Kill–replay phase: SIGKILL the daemon mid-burst, restart on the same
// journal, prove no acknowledged work is lost.
// ---------------------------------------------------------------------------

/// Child-process entry: bind a loopback socket, announce it on stdout as
/// `listening on ADDR`, and serve with a strict-durability journal in
/// `state_dir` until killed or shut down. Invoked by re-execing this
/// binary with `--daemon-child`; never returns to the soak `main`.
fn daemon_child(state_dir: String) -> ! {
    let cfg = ServeConfig {
        workers: 4,
        queue_cap: 8,
        max_line_bytes: 4096,
        state_dir: Some(std::path::PathBuf::from(state_dir)),
        durability: Durability::Strict,
        ..ServeConfig::default()
    };
    let listener = Listener::bind("127.0.0.1:0").expect("daemon child: bind loopback");
    println!("listening on {}", listener.local_addr_string());
    std::io::stdout().flush().ok();
    match serve_daemon(cfg, listener, None) {
        Ok(_) => std::process::exit(0),
        Err(e) => {
            eprintln!("daemon child failed: {e:?}");
            std::process::exit(1);
        }
    }
}

/// Spawns a fresh daemon child on `state_dir` and returns it with the
/// address it announced.
fn spawn_daemon_child(state_dir: &std::path::Path) -> (std::process::Child, String) {
    let exe = std::env::current_exe().expect("current exe");
    let mut child = std::process::Command::new(exe)
        .arg("--daemon-child")
        .arg(state_dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon child");
    let mut banner = String::new();
    BufReader::new(child.stdout.take().expect("child stdout"))
        .read_line(&mut banner)
        .expect("read child banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("bad daemon child banner: {banner:?}"))
        .to_string();
    (child, addr)
}

/// The per-client loop of the kill–replay phase: a retry client works one
/// session through a solve/refactor mix while the daemon is being
/// SIGKILLed and restarted underneath it. Every `Ok` is an acknowledged
/// job; the caller re-sends the last acknowledged refactor under its
/// original job id afterwards to prove dedup. Returns that (line, id).
#[allow(clippy::too_many_arguments)]
fn kill_replay_client(
    c: usize,
    book: AddrBook,
    path: &str,
    expected_hash: &str,
    jobs: usize,
    seed: u64,
    done: &AtomicU64,
    totals: &Totals,
) -> Result<(String, String), String> {
    let mut rng = Rng(seed ^ (c as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    let sess = format!("kr{c}");
    let policy = RetryPolicy {
        deadline: Duration::from_secs(120),
        ..RetryPolicy::default()
    };
    let mut cl = splu_client::Client::new(book, format!("kr{c}"), seed ^ c as u64, policy);
    cl.call(&format!("analyze {sess} {path}"))
        .map_err(|e| format!("client {c}: analyze: {e}"))?;
    cl.call(&format!("factor {sess} {path}"))
        .map_err(|e| format!("client {c}: factor: {e}"))?;

    let mut refactors = 0usize;
    let mut last_acked: Option<(String, String)> = None;
    for j in 0..jobs {
        // First job is always a mutating refactor so every client has an
        // acknowledged journaled job to replay; after that, 60/40
        // solve/refactor.
        if j > 0 && rng.below(100) < 60 {
            let v = cl
                .call(&format!("solve {sess}"))
                .map_err(|e| format!("client {c} job {j}: solve: {e}"))?;
            let h = v.get("x_hash").and_then(|h| h.as_str()).unwrap_or("?");
            if h != expected_hash {
                return Err(format!(
                    "client {c} job {j}: x_hash {h} != fresh-solver {expected_hash}"
                ));
            }
            totals.solve_hashes_checked.fetch_add(1, Ordering::Relaxed);
        } else {
            refactors += 1;
            let line = format!("refactor {sess} {path}");
            let id = format!("kr{c}-r{refactors}");
            cl.call_with_id(&line, &id)
                .map_err(|e| format!("client {c} job {j}: refactor: {e}"))?;
            last_acked = Some((line, id));
        }
        totals.jobs_ok.fetch_add(1, Ordering::Relaxed);
        done.fetch_add(1, Ordering::Relaxed);
    }
    last_acked.ok_or_else(|| format!("client {c}: no acknowledged refactor"))
}

/// Runs the whole kill–replay phase: a journaled child daemon, `clients`
/// retry clients, `kills` SIGKILL+restart cycles spread across the burst,
/// then duplicate-resend, oracle-solve and daemon-counter checks.
#[allow(clippy::too_many_arguments)]
fn kill_replay_phase(
    path: &str,
    expected_hash: &str,
    clients: usize,
    jobs: usize,
    kills: usize,
    seed: u64,
    totals: &Totals,
    log: &Log,
) -> Result<(), String> {
    let state_dir = std::env::temp_dir().join(format!("parsplu_soak_state_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let (child, addr) = spawn_daemon_child(&state_dir);
    let book = AddrBook::new(addr);
    log.push(format!(
        "kill-replay: {clients} clients x {jobs} jobs, {kills} SIGKILLs, state dir {}",
        state_dir.display()
    ));

    let done = AtomicU64::new(0);
    let total_jobs = (clients * jobs) as u64;
    let acked: Mutex<Vec<(usize, String, String)>> = Mutex::new(Vec::new());
    let errors: Vec<String> = std::thread::scope(|scope| {
        // The killer: wait until the burst reaches each threshold, then
        // SIGKILL the daemon and restart it on the same state dir. The
        // book repoints every client's next reconnect.
        let killer = {
            let book = book.clone();
            let state_dir = state_dir.clone();
            let done = &done;
            scope.spawn(move || {
                let mut child = child;
                for k in 1..=kills {
                    let target = total_jobs * k as u64 / (kills as u64 + 1);
                    let patience = Instant::now();
                    while done.load(Ordering::Relaxed) < target
                        && patience.elapsed() < Duration::from_secs(60)
                    {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    child.kill().expect("SIGKILL daemon child");
                    child.wait().expect("reap daemon child");
                    totals.kills_injected.fetch_add(1, Ordering::Relaxed);
                    let at = done.load(Ordering::Relaxed);
                    let (next, addr) = spawn_daemon_child(&state_dir);
                    log.push(format!(
                        "kill-replay: SIGKILL #{k} at {at}/{total_jobs} jobs; restarted at {addr}"
                    ));
                    book.set(addr);
                    child = next;
                }
                child
            })
        };
        let client_errors: Vec<String> = {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let book = book.clone();
                    let (acked, done) = (&acked, &done);
                    scope.spawn(move || {
                        kill_replay_client(c, book, path, expected_hash, jobs, seed, done, totals)
                            .map(|(line, id)| acked.lock().unwrap().push((c, line, id)))
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(Ok(())) => None,
                    Ok(Err(e)) => Some(e),
                    Err(_) => Some("kill-replay client thread panicked".to_string()),
                })
                .collect()
        };
        let mut errors = client_errors;

        // Post-burst checks against the final (post-restart) daemon.
        let child = killer.join().expect("killer thread");
        let check = || -> Result<(), String> {
            let policy = RetryPolicy {
                deadline: Duration::from_secs(120),
                ..RetryPolicy::default()
            };
            let mut cl = splu_client::Client::new(book.clone(), "kr-check", seed ^ 0xc8ec, policy);
            let before = cl
                .call("stats")
                .map_err(|e| format!("pre-check stats: {e}"))?;
            let deduped0 = before
                .get("jobs_deduped_replay")
                .and_then(|n| n.as_num())
                .ok_or_else(|| format!("stats without jobs_deduped_replay: {before:?}"))?;

            // Every client's last *acknowledged* refactor, re-sent under
            // its original job id: the daemon must recognize it as
            // already applied and answer from the replay cache instead of
            // running it again.
            let acked = acked.lock().unwrap();
            if acked.len() != clients {
                return Err(format!(
                    "only {}/{clients} clients recorded an acknowledged refactor",
                    acked.len()
                ));
            }
            for (c, line, id) in acked.iter() {
                let v = cl
                    .call_with_id(line, id)
                    .map_err(|e| format!("client {c}: duplicate resend of {id}: {e}"))?;
                if v.status() != "ok" {
                    return Err(format!("client {c}: duplicate {id} got {v:?}"));
                }
            }
            let after = cl
                .call("stats")
                .map_err(|e| format!("post-check stats: {e}"))?;
            let deduped = after
                .get("jobs_deduped_replay")
                .and_then(|n| n.as_num())
                .unwrap_or(-1.0);
            let delta = deduped - deduped0;
            if delta < clients as f64 {
                return Err(format!(
                    "expected >= {clients} deduped duplicates, counters moved {deduped0} -> {deduped}"
                ));
            }
            totals
                .duplicates_replayed
                .fetch_add(delta as u64, Ordering::Relaxed);
            let replayed = after
                .get("sessions_replayed")
                .and_then(|n| n.as_num())
                .unwrap_or(-1.0);
            if replayed < clients as f64 {
                return Err(format!(
                    "final daemon replayed {replayed} sessions, wanted >= {clients}"
                ));
            }
            let journal_bytes = after
                .get("journal_bytes")
                .and_then(|n| n.as_num())
                .unwrap_or(0.0);
            let appends = after
                .get("journal_appends")
                .and_then(|n| n.as_num())
                .unwrap_or(0.0);
            if journal_bytes <= 0.0 {
                return Err(format!("stats reports empty journal: {after:?}"));
            }
            if after.get("durability").and_then(|d| d.as_str()) != Some("strict") {
                return Err(format!("stats without strict durability: {after:?}"));
            }

            // Acknowledged state survived the kills: every revived
            // session still solves to the oracle's exact bits.
            for c in 0..clients {
                let v = cl
                    .call(&format!("solve kr{c}"))
                    .map_err(|e| format!("post-restart solve kr{c}: {e}"))?;
                let h = v.get("x_hash").and_then(|h| h.as_str()).unwrap_or("?");
                if h != expected_hash {
                    return Err(format!(
                        "post-restart solve kr{c}: x_hash {h} != {expected_hash}"
                    ));
                }
                totals.solve_hashes_checked.fetch_add(1, Ordering::Relaxed);
            }
            log.push(format!(
                "kill-replay: {clients} duplicates deduped (counter {deduped0} -> {deduped}), \
                 {replayed} sessions replayed, journal {journal_bytes} bytes / {appends} appends, \
                 {clients} post-restart solves bit-identical"
            ));

            let ack = cl
                .call_once("shutdown")
                .map_err(|e| format!("kill-replay shutdown: {e}"))?;
            if ack.get("drained").and_then(splu_client::Json::as_bool) != Some(true) {
                return Err(format!("kill-replay shutdown ack: {ack:?}"));
            }
            Ok(())
        };
        if let Err(e) = check() {
            errors.push(e);
        }
        let mut child = child;
        let _ = child.wait();
        errors
    });
    if errors.is_empty() {
        let _ = std::fs::remove_dir_all(&state_dir);
        Ok(())
    } else {
        // Keep the journal: with the soak log it is the post-mortem.
        Err(errors.join("; "))
    }
}

fn main() {
    // Re-exec entry for the kill–replay phase's daemon process.
    let mut argv = std::env::args().skip(1);
    if argv.next().as_deref() == Some("--daemon-child") {
        daemon_child(argv.next().expect("--daemon-child needs a state dir"));
    }
    drop(argv);

    let mut seed = 42u64;
    let reduced = std::env::var_os("PARSPLU_REDUCED").is_some();
    let mut clients: usize = if reduced { 4 } else { 16 };
    let mut jobs: usize = if reduced { 16 } else { 64 };
    let mut log_path = "soak.log".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match a.as_str() {
            "--seed" => seed = take("--seed").parse().expect("integer seed"),
            "--clients" => clients = take("--clients").parse().expect("client count"),
            "--jobs" => jobs = take("--jobs").parse().expect("jobs per client"),
            "--log" => log_path = take("--log"),
            other => panic!("unknown argument {other}; see the module docs"),
        }
    }

    // Fixture: one reduced paper matrix on disk, plus the fresh-solver
    // oracle hash every wire solve must reproduce (the serve path solves
    // the manufactured RHS with salt 1 when no rhs file is given).
    let path = std::env::temp_dir()
        .join(format!("parsplu_soak_{}.mtx", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let a = splu_matgen::paper_matrix("goodwin", splu_matgen::Scale::Reduced)
        .expect("goodwin analogue");
    splu_sparse::io::write_matrix_market(&a, std::path::Path::new(&path))
        .expect("write fixture matrix");
    let opts = Options::default();
    let mut oracle = SluSession::analyze(a.pattern(), &opts).expect("oracle analyze");
    oracle.factor(&a).expect("oracle factor");
    let b = manufactured_rhs(&a, 1).1;
    let x = oracle.try_solve(&b).expect("oracle solve");
    let expected_hash = format!("{:#018x}", solution_hash(&x));

    // Budget ~ half the client sessions so eviction is constant traffic.
    // A factored serve entry is the session plus the retained matrix.
    let matrix_bytes = (a.nnz() * 16 + (a.ncols() + 1) * 8) as u64;
    let entry_bytes = oracle.resident_bytes() + matrix_bytes;
    let budget = entry_bytes * (clients as u64 / 2).max(2) + entry_bytes / 2;
    let max_line_bytes = 4096;

    let cfg = ServeConfig {
        workers: 4,
        queue_cap: 8,
        max_line_bytes,
        session_budget: Some(budget),
        ..ServeConfig::default()
    };
    let listener = Listener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr_string();
    let daemon = std::thread::spawn(move || serve_daemon(cfg, listener, None).expect("daemon"));

    println!(
        "soak: {clients} clients x {jobs} jobs, seed {seed}, budget {budget} bytes \
         (~{} sessions), daemon at {addr}",
        budget / entry_bytes
    );
    let totals = Totals::default();
    let log = Log(Mutex::new(Vec::new()));
    log.push(format!(
        "soak seed={seed} clients={clients} jobs={jobs} budget={budget} addr={addr}"
    ));

    let t0 = Instant::now();
    let errors: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (addr, path, expected_hash, totals, log) =
                    (&addr, &path, &expected_hash, &totals, &log);
                scope.spawn(move || {
                    client_loop(
                        c,
                        addr,
                        path,
                        expected_hash,
                        jobs,
                        seed,
                        max_line_bytes,
                        totals,
                        log,
                    )
                    .map_err(|e| format!("client {c}: {e}"))
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| match h.join() {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e),
                Err(_) => Some("client thread panicked".to_string()),
            })
            .collect()
    });
    let concurrent_secs = t0.elapsed().as_secs_f64();
    for e in &errors {
        totals.failures.fetch_add(1, Ordering::Relaxed);
        log.push(format!("FAILURE: {e}"));
        eprintln!("soak FAILURE: {e}");
    }

    // Serial chaos phase: the factor failpoint is process-global, so it
    // must not overlap the concurrent traffic.
    #[cfg(feature = "failpoints")]
    if let Err(e) = worker_panic_phase(&addr, &path, &expected_hash, &log) {
        totals.failures.fetch_add(1, Ordering::Relaxed);
        log.push(format!("FAILURE: {e}"));
        eprintln!("soak FAILURE: {e}");
    }
    #[cfg(not(feature = "failpoints"))]
    log.push("worker-panic phase skipped (build without --features failpoints)".to_string());

    // Final stats + graceful shutdown: peak under budget, drained ack.
    let mut cl = Client::connect(&addr).expect("final connect");
    match cl.call("stats") {
        Ok(v) => {
            let peak = v
                .get("resident_bytes_peak")
                .and_then(|b| b.as_num())
                .unwrap_or(f64::MAX);
            log.push(format!(
                "final stats: resident_peak={} budget={} evicted={} overload_rejects={} \
                 conns_dropped={}",
                peak,
                budget,
                v.get("sessions_evicted")
                    .and_then(|n| n.as_num())
                    .unwrap_or(-1.0),
                v.get("jobs_rejected_overload")
                    .and_then(|n| n.as_num())
                    .unwrap_or(-1.0),
                v.get("connections_dropped")
                    .and_then(|n| n.as_num())
                    .unwrap_or(-1.0),
            ));
            if peak > budget as f64 {
                totals.failures.fetch_add(1, Ordering::Relaxed);
                let e = format!("resident peak {peak} exceeds budget {budget}");
                log.push(format!("FAILURE: {e}"));
                eprintln!("soak FAILURE: {e}");
            }
        }
        Err(e) => {
            totals.failures.fetch_add(1, Ordering::Relaxed);
            log.push(format!("FAILURE: final stats: {e}"));
        }
    }
    match cl.call("shutdown") {
        Ok(ack) => {
            if ack.get("drained") != Some(&Json::Bool(true)) {
                totals.failures.fetch_add(1, Ordering::Relaxed);
                log.push(format!(
                    "FAILURE: shutdown ack without drained:true: {ack:?}"
                ));
            }
        }
        Err(e) => {
            totals.failures.fetch_add(1, Ordering::Relaxed);
            log.push(format!("FAILURE: shutdown: {e}"));
        }
    }
    let summary = daemon.join().expect("daemon thread");

    // Final phase: the daemon as a child process with a strict journal,
    // SIGKILLed and restarted mid-burst. Everything acknowledged must
    // survive; everything retried must dedup.
    let kr_jobs = if reduced { 8 } else { 16 };
    let kr_kills = if reduced { 2 } else { 3 };
    if let Err(e) = kill_replay_phase(
        &path,
        &expected_hash,
        clients,
        kr_jobs,
        kr_kills,
        seed,
        &totals,
        &log,
    ) {
        totals.failures.fetch_add(1, Ordering::Relaxed);
        log.push(format!("FAILURE: kill-replay: {e}"));
        eprintln!("soak FAILURE: kill-replay: {e}");
    }
    let _ = std::fs::remove_file(&path);

    let failures = totals.failures.load(Ordering::Relaxed);
    let done = totals.jobs_ok.load(Ordering::Relaxed);
    let line = format!(
        "soak done: {done} jobs ok in {concurrent_secs:.1}s ({:.0} jobs/s), \
         {} solves hash-checked, {} evictions recovered, {} overload retries, \
         {} disconnects, {} oversize, {} nul frames injected; \
         {} SIGKILLs survived, {} duplicates deduped; daemon saw {} jobs / {} conns; \
         {failures} failure(s)",
        done as f64 / concurrent_secs,
        totals.solve_hashes_checked.load(Ordering::Relaxed),
        totals.evictions_recovered.load(Ordering::Relaxed),
        totals.overload_retries.load(Ordering::Relaxed),
        totals.disconnects_injected.load(Ordering::Relaxed),
        totals.oversize_injected.load(Ordering::Relaxed),
        totals.nul_injected.load(Ordering::Relaxed),
        totals.kills_injected.load(Ordering::Relaxed),
        totals.duplicates_replayed.load(Ordering::Relaxed),
        summary.jobs,
        summary.connections,
    );
    println!("{line}");
    log.push(line);
    std::fs::write(&log_path, log.0.lock().unwrap().join("\n") + "\n")
        .unwrap_or_else(|e| eprintln!("soak: could not write {log_path}: {e}"));
    if failures > 0 {
        std::process::exit(1);
    }
}
