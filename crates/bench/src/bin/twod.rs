//! Future-work experiment (paper Section 6): 1D column mapping vs a 2D
//! block-cyclic processor grid, on the fine-grained task decomposition.
//!
//! For each benchmark matrix the simulated makespan of the fine-grained DAG
//! is reported for a 1D mapping and for 2D grids at the same processor
//! counts, with the calibrated Origin-style cost model. The expectation
//! (confirmed by the S+ line of work) is that 2D mappings relieve the
//! single-owner bottleneck of large block columns as P grows.
//!
//! ```text
//! cargo run --release -p splu-bench --bin twod
//! ```

use splu_bench::{calibrated_model, min_time, prepare_suite, time_factor};
use splu_core::{factor_numeric_with, BlockMatrix, NumericRequest};
use splu_sched::{block_forest, build_fine_graph, simulate_fine, Grid};

fn main() {
    println!("Future work: 1D vs 2D mapping on the fine-grained task DAG (simulated)");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "Matrix", "1D P=4", "2x2", "1D P=8", "2x4", "1D P=16", "4x4", "2D gain@16"
    );
    for p in prepare_suite() {
        let serial = time_factor(&p, &p.eforest, 1);
        let model = calibrated_model(&p, &p.eforest, serial);
        let forest = block_forest(&p.sym.block_structure);
        let fg = build_fine_graph(&p.sym.block_structure, &forest);
        let run = |g: Grid| simulate_fine(&fg, &p.sym.block_structure, g, &model).makespan;
        let d4 = run(Grid::OneD(4));
        let g22 = run(Grid::TwoD(2, 2));
        let d8 = run(Grid::OneD(8));
        let g24 = run(Grid::TwoD(2, 4));
        let d16 = run(Grid::OneD(16));
        let g44 = run(Grid::TwoD(4, 4));
        println!(
            "{:<10} {:>8.1}m {:>8.1}m {:>8.1}m {:>8.1}m {:>8.1}m {:>8.1}m {:>9.1}%",
            p.name,
            d4 * 1e3,
            g22 * 1e3,
            d8 * 1e3,
            g24 * 1e3,
            d16 * 1e3,
            g44 * 1e3,
            100.0 * (1.0 - g44 / d16)
        );
    }
    println!("\n(fine DAG: Apply/Trsm/Gemm stages per update; 'm' = model milliseconds)");

    // Reality check: the fine decomposition also *executes* numerically
    // (bit-identical to the coarse tasks — enforced by the test-suite);
    // measured here at host scale.
    println!("\nMeasured fine-DAG execution on this host (wall milliseconds):");
    println!(
        "{:<10} {:>10} {:>10} {:>12}",
        "Matrix", "fine P=1", "fine P=2", "coarse P=2"
    );
    for p in prepare_suite().into_iter().take(3) {
        let forest = block_forest(&p.sym.block_structure);
        let fg = build_fine_graph(&p.sym.block_structure, &forest);
        let mut bm = BlockMatrix::assemble(&p.permuted, &p.sym.block_structure);
        let mut run_fine = |threads: usize| {
            let req = NumericRequest::fine(&fg).threads(threads);
            min_time(|| {
                bm.reset_from(&p.permuted, &p.sym.block_structure);
                factor_numeric_with(&bm, &req).expect("factorization succeeds");
            })
        };
        let f1 = run_fine(1);
        let f2 = run_fine(2);
        let c2 = time_factor(&p, &p.eforest, 2);
        println!(
            "{:<10} {:>9.1}m {:>9.1}m {:>11.1}m",
            p.name,
            f1.as_secs_f64() * 1e3,
            f2.as_secs_f64() * 1e3,
            c2.as_secs_f64() * 1e3
        );
    }
}
