//! Regenerates the paper's **Table 3**: supernode counts without / with the
//! eforest postordering, after L/U supernode partitioning and amalgamation.
//!
//! Columns: `NoBlks` = diagonal blocks of the block-upper-triangular form
//! (trees of the eforest), `SN` = supernodes without postordering, `SNPO` =
//! supernodes with postordering, and the ratio `SN/SNPO` (≥ 1 when
//! postordering enlarges supernodes).
//!
//! ```text
//! cargo run --release -p splu-bench --bin table3
//! ```

use splu_bench::suite;
use splu_core::{analyze, Options};

fn main() {
    println!("Table 3: supernode sizes without/with postordering");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>9} {:>12} {:>12}",
        "Name", "NoBlks", "SN", "SNPO", "SN/SNPO", "mean w/o", "mean w/"
    );
    let mut ratios = Vec::new();
    for m in suite() {
        let without = analyze(
            m.a.pattern(),
            &Options {
                postorder: false,
                ..Options::default()
            },
        )
        .expect("analysis succeeds");
        let with = analyze(m.a.pattern(), &Options::default()).expect("analysis succeeds");
        let sn = without.stats.supernodes;
        let snpo = with.stats.supernodes;
        let ratio = sn as f64 / snpo as f64;
        ratios.push(ratio);
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>9.3} {:>12.2} {:>12.2}",
            m.name,
            with.stats.btf_blocks,
            sn,
            snpo,
            ratio,
            without.stats.n as f64 / sn as f64,
            with.stats.n as f64 / snpo as f64,
        );
    }
    let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "\nmean SN/SNPO = {mean:.3} (the paper reports an average decrease of ~20%, i.e. ratio ≈ 1.2)"
    );
}
