//! The bench regression gate: compares two `BENCH_*.json` artifacts and
//! exits nonzero when a metric regressed past its threshold.
//!
//! ```text
//! bench_diff <baseline.json> <current.json> [--kind factor|sched|kernels|phases|service]
//!            [--threshold PCT] [--threshold METRIC=PCT]...
//! ```
//!
//! The artifact kind is inferred from the file names when not given.
//! `--threshold PCT` sets the default relative threshold (default 10);
//! `--threshold METRIC=PCT` overrides one metric (repeatable), e.g.
//! `--threshold median_seconds=25 --threshold overhead_pct=5`. For
//! absolute-only metrics like `overhead_pct` the override is an absolute
//! budget in the metric's own units (points), not a percentage.
//!
//! Exit codes: 0 clean, 1 regression detected, 2 usage or schema error.

use splu_bench::diff::{diff_artifacts, ArtifactKind, DiffOptions};
use splu_bench::json::parse;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_diff <baseline.json> <current.json> \
         [--kind factor|sched|kernels|phases|service] [--threshold PCT] [--threshold METRIC=PCT]..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut kind_arg: Option<String> = None;
    let mut opts = DiffOptions::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kind" => match it.next() {
                Some(k) => kind_arg = Some(k),
                None => return usage(),
            },
            "--threshold" => {
                let Some(spec) = it.next() else {
                    return usage();
                };
                match spec.split_once('=') {
                    Some((metric, pct)) => match pct.parse::<f64>() {
                        Ok(p) if p >= 0.0 => opts.overrides.push((metric.to_string(), p)),
                        _ => return usage(),
                    },
                    None => match spec.parse::<f64>() {
                        Ok(p) if p >= 0.0 => opts.rel_pct = p,
                        _ => return usage(),
                    },
                }
            }
            "--help" | "-h" => return usage(),
            _ => paths.push(arg),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage();
    };

    let kind = match &kind_arg {
        Some(k) => match ArtifactKind::from_arg(k) {
            Some(kind) => kind,
            None => {
                eprintln!("bench_diff: unknown kind {k:?}");
                return ExitCode::from(2);
            }
        },
        None => {
            let a = ArtifactKind::from_name(baseline_path);
            let b = ArtifactKind::from_name(current_path);
            match (a, b) {
                (Some(x), Some(y)) if x == y => x,
                (Some(x), None) | (None, Some(x)) => x,
                _ => {
                    eprintln!(
                        "bench_diff: cannot infer a common artifact kind from \
                         {baseline_path:?} and {current_path:?}; pass --kind"
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut docs = Vec::new();
    for path in [baseline_path, current_path] {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_diff: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let doc = match parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("bench_diff: {path}: invalid JSON: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = kind.validate(&doc) {
            eprintln!("bench_diff: {path}: schema violation: {e}");
            return ExitCode::from(2);
        }
        docs.push(doc);
    }

    let report = match diff_artifacts(kind, &docs[0], &docs[1], &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "bench_diff: {kind:?}: {} matched record(s), {} missing from current, {} new",
        report.matched,
        report.missing.len(),
        report.added.len()
    );
    for key in &report.missing {
        println!("  [only-baseline] {key}");
    }
    for key in &report.added {
        println!("  [only-current]  {key}");
    }
    for d in &report.deltas {
        let marker = if d.regressed { "REGRESSION" } else { "ok" };
        println!(
            "  [{marker:>10}] {key} :: {metric}: {baseline:.6} -> {current:.6} ({change:+.1}%)",
            key = d.key,
            metric = d.metric,
            baseline = d.baseline,
            current = d.current,
            change = d.change_pct,
        );
    }
    if report.has_regressions() {
        eprintln!(
            "bench_diff: {} regression(s) past threshold",
            report.regressions().len()
        );
        return ExitCode::from(1);
    }
    println!("bench_diff: no regressions");
    ExitCode::SUCCESS
}
