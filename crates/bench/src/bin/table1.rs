//! Regenerates the paper's **Table 1**: benchmark matrices — order,
//! nonzeros `|A|`, and the static fill ratio `|Ā|/|A|`.
//!
//! ```text
//! cargo run --release -p splu-bench --bin table1
//! ```

use splu_bench::suite;
use splu_core::{analyze, Options};

fn main() {
    println!("Table 1: benchmark matrices (synthetic analogues, DESIGN.md §5.1)");
    println!(
        "{:<10} {:<26} {:>7} {:>9} {:>9}",
        "Matrix", "Discipline", "Order", "|A|", "|Abar|/|A|"
    );
    for m in suite() {
        let sym = analyze(m.a.pattern(), &Options::default()).expect("analysis succeeds");
        // Re-fetch the domain string from the matgen suite declaration.
        let domain = splu_matgen::paper_suite(splu_matgen::Scale::Reduced)
            .into_iter()
            .find(|s| s.name == m.name)
            .map(|s| s.domain)
            .unwrap_or("-");
        println!(
            "{:<10} {:<26} {:>7} {:>9} {:>9.2}",
            m.name, domain, sym.stats.n, sym.stats.nnz_a, sym.stats.fill_ratio
        );
    }
}
