//! Per-phase wall-time breakdown of the full pipeline — parse through the
//! triangular solves — before and after the parallel front half, written to
//! `BENCH_phases.json` (schema: [`splu_bench::json::validate_bench_phases`]).
//!
//! ```text
//! cargo run --release -p splu-bench --bin phases [-- <matrix-name> ...]
//! ```
//!
//! With no arguments every suite matrix is measured; naming matrices
//! restricts the run (the CI smoke job passes `goodwin`). Set
//! `PARSPLU_REDUCED=1` for CI-sized inputs.
//!
//! Three records per matrix:
//!
//! * `front_threads = 1, kind = "measured"` — the sequential pipeline
//!   ("before": the phase profile that motivates parallelizing the front
//!   half);
//! * `front_threads = 8, kind = "measured"` — the chunked parallel front
//!   half ([`splu_core::static_fill_parallel_with_parents`] and
//!   [`splu_core::postorder_parallel`]) and the 8-thread numeric phase,
//!   measured on *this* host, however many cores it has;
//! * `front_threads = 8, kind = "simulated"` — the projection onto 8 real
//!   cores: `symbolic_fill = skeleton + (fill + assembly) / 8` from the
//!   individually measured sub-phase times (the skeleton pass is the only
//!   sequential part of the chunked formulation; fill chunks and the
//!   assembly scatters both run thread-parallel), and `numeric` from the
//!   calibrated Origin-2000 simulator at 8 virtual processors. Phases
//!   that stay sequential carry their measured wall time unchanged.
//!
//! The `kind` field keeps downstream tooling from averaging projections
//! into wall-clock rows, exactly as in `BENCH_factor.json`.

use splu_bench::{calibrated_model, json, min_time, simulated_seconds, suite, Prepared};
use splu_core::{
    analyze, factor_numeric_with, postorder_parallel, static_fill_parallel_with_parents,
    BlockMatrix, KernelChoice, NumericRequest, Options, SparseLu, SymbolicRequest, TaskGraphKind,
};
use splu_matgen::manufactured_rhs;
use splu_ordering::{column_min_degree, maximum_transversal, StructuralRank};
use splu_sched::Mapping;
use splu_sparse::io::{read_matrix_market, write_matrix_market};
use splu_sparse::scaling::equilibrate;
use splu_sparse::Permutation;
use splu_symbolic::supernode::BlockStructure;
use splu_symbolic::{
    amalgamate, assemble_filled, fill_columns, fill_skeleton, postorder_permutation,
    static_symbolic_factorization, supernode_partition, EliminationForest, FillScratch, FilledLu,
    SupernodeOptions,
};
use std::fmt::Write as _;

/// The thread count of the "after" rows, matching the paper's 8-processor
/// target machine.
const FRONT_THREADS: usize = 8;

/// One record: per-phase wall times in seconds, keyed and ordered as in
/// [`json::PHASE_NAMES`].
struct Record {
    matrix: String,
    front_threads: usize,
    kind: &'static str,
    phases: [f64; json::PHASE_NAMES.len()],
}

fn secs<F: FnMut()>(f: F) -> f64 {
    min_time(f).as_secs_f64()
}

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let matrices: Vec<_> = suite()
        .into_iter()
        .filter(|m| filter.is_empty() || filter.iter().any(|f| f == m.name))
        .collect();
    if matrices.is_empty() {
        eprintln!("no suite matrix matches {filter:?}");
        std::process::exit(2);
    }

    let mut records: Vec<Record> = Vec::new();
    println!(
        "{:<10} {:>6} {:>9}  phase walls (ms, pipeline order)",
        "matrix", "front", "kind"
    );
    for m in &matrices {
        // -- parse: round-trip through a real Matrix Market file.
        let mtx = std::env::temp_dir().join(format!(
            "parsplu_phases_{}_{}.mtx",
            m.name,
            std::process::id()
        ));
        write_matrix_market(&m.a, &mtx).expect("write temp matrix");
        let t_parse = secs(|| {
            read_matrix_market(&mtx).expect("re-read temp matrix");
        });
        let _ = std::fs::remove_file(&mtx);

        // -- scale/transversal: equilibration scaling plus the zero-free
        //    diagonal row permutation.
        let p = m.a.pattern();
        let rp = match maximum_transversal(p) {
            StructuralRank::Full(x) => x,
            StructuralRank::Deficient { rank } => panic!("{}: structural rank {rank}", m.name),
        };
        let t_scale = secs(|| {
            let _ = equilibrate(&m.a);
            let _ = maximum_transversal(p);
        });
        let p1 = p.permuted(&rp, &Permutation::identity(p.ncols()));

        // -- ordering: minimum degree on AᵀA (the default path; the
        //    multiple-elimination variant changes the permutation, so the
        //    breakdown sticks to the ordering every other row uses).
        let q = column_min_degree(&p1);
        let t_ord = secs(|| {
            let _ = column_min_degree(&p1);
        });
        let p2 = p1.permuted(&q, &q);

        // -- symbolic fill: the tentpole phase, three ways.
        let f = static_symbolic_factorization(&p2).expect("zero-free diagonal");
        let t_fill_seq = secs(|| {
            let _ = static_symbolic_factorization(&p2).expect("zero-free diagonal");
        });
        let req = SymbolicRequest::new().front_threads(FRONT_THREADS);
        let (_, parents) =
            static_fill_parallel_with_parents(&p2, &req).expect("parallel fill succeeds");
        let t_fill_par = secs(|| {
            let _ = static_fill_parallel_with_parents(&p2, &req).expect("parallel fill succeeds");
        });
        // Sub-phases of the chunked formulation, for the 8-core projection:
        // the skeleton pass is sequential; fill chunks and the assembly
        // scatters are thread-parallel with no cross-chunk dependencies.
        let skel = fill_skeleton(&p2).expect("zero-free diagonal");
        let t_skel = secs(|| {
            let _ = fill_skeleton(&p2).expect("zero-free diagonal");
        });
        let ranges = skel.partition(&p2, FRONT_THREADS * 4);
        let chunks: Vec<_> = {
            let mut scratch = FillScratch::new(skel.n());
            ranges
                .iter()
                .map(|r| fill_columns(&p2, &skel, r.clone(), &mut scratch))
                .collect()
        };
        let t_chunks = secs(|| {
            let mut scratch = FillScratch::new(skel.n());
            for r in &ranges {
                let _ = fill_columns(&p2, &skel, r.clone(), &mut scratch);
            }
        });
        let t_asm = secs(|| {
            let _ = assemble_filled(&skel, &chunks).expect("assembly succeeds");
        });
        let t_fill_sim = t_skel + (t_chunks + t_asm) / FRONT_THREADS as f64;

        // -- eforest + postorder: forest construction, the postorder
        //    permutation, and the symmetric permute of the filled pattern.
        let po = postorder_permutation(&f);
        let f2 = FilledLu::from_parts(f.l.permuted(&po, &po), f.u.permuted(&po, &po));
        let t_po_seq = secs(|| {
            let po = postorder_permutation(&f);
            let _ = FilledLu::from_parts(f.l.permuted(&po, &po), f.u.permuted(&po, &po));
        });
        let t_po_par = secs(|| {
            let forest = EliminationForest::from_parent_vec(parents.clone());
            let po = postorder_parallel(&forest, FRONT_THREADS);
            let _ = FilledLu::from_parts(f.l.permuted(&po, &po), f.u.permuted(&po, &po));
        });

        // -- supernode partition (incl. amalgamation and block structure).
        let t_sn = secs(|| {
            let part = supernode_partition(&f2);
            let am = amalgamate(&f2, &part, &SupernodeOptions::default());
            let _ = BlockStructure::new(&f2, am);
        });

        // -- graph build, numeric, solve: via the driver's analysis so the
        //    numeric phase runs on exactly the structure `solve` uses.
        let sym = analyze(m.a.pattern(), &Options::default()).expect("analysis succeeds");
        let t_graph = secs(|| {
            let _ = sym.build_graph(TaskGraphKind::EForest);
        });
        let graph = sym.build_graph(TaskGraphKind::EForest);
        let permuted = sym.permute_matrix(&m.a);
        let mut bm = BlockMatrix::assemble(&permuted, &sym.block_structure);
        let mut numeric_at = |threads: usize| {
            let req = NumericRequest::coarse(&graph, Mapping::Static1D)
                .threads(threads)
                .kernels(KernelChoice::Auto);
            secs(|| {
                bm.reset_from(&permuted, &sym.block_structure);
                factor_numeric_with(&bm, &req).expect("factorization succeeds");
            })
        };
        let t_num_1 = numeric_at(1);
        let t_num_8 = numeric_at(FRONT_THREADS);
        let prep = Prepared {
            name: m.name,
            a: m.a.clone(),
            sym,
            permuted,
            eforest: graph.clone(),
            sstar: graph.clone(),
        };
        let model = calibrated_model(
            &prep,
            &prep.eforest,
            std::time::Duration::from_secs_f64(t_num_1),
        );
        let t_num_sim = simulated_seconds(
            &prep,
            &prep.eforest,
            FRONT_THREADS,
            Mapping::Dynamic,
            &model,
        );

        let lu = SparseLu::factor(&m.a, &Options::default()).expect("factorization succeeds");
        let b = manufactured_rhs(&m.a, 1).1;
        let t_solve = secs(|| {
            let _ = lu.solve(&b);
        });

        // Pipeline order must match json::PHASE_NAMES.
        let rows: [(usize, &'static str, f64, f64, f64); 3] = [
            (1, "measured", t_fill_seq, t_po_seq, t_num_1),
            (FRONT_THREADS, "measured", t_fill_par, t_po_par, t_num_8),
            (FRONT_THREADS, "simulated", t_fill_sim, t_po_par, t_num_sim),
        ];
        for (front_threads, kind, t_fill, t_po, t_num) in rows {
            let phases = [
                t_parse, t_scale, t_ord, t_fill, t_po, t_sn, t_graph, t_num, t_solve,
            ];
            let mut line = String::new();
            for t in phases {
                let _ = write!(line, " {:>8.2}", t * 1e3);
            }
            println!("{:<10} {:>6} {:>9} {}", m.name, front_threads, kind, line);
            records.push(Record {
                matrix: m.name.to_string(),
                front_threads,
                kind,
                phases,
            });
        }
    }

    let mut doc = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let mut phases = String::new();
        for (name, t) in json::PHASE_NAMES.iter().zip(r.phases) {
            if !phases.is_empty() {
                phases.push_str(", ");
            }
            let _ = write!(phases, "\"{name}\": {t:.9}");
        }
        writeln!(
            doc,
            "  {{\"matrix\": \"{}\", \"front_threads\": {}, \"kind\": \"{}\", \"phases\": {{{}}}}}{}",
            r.matrix, r.front_threads, r.kind, phases, sep
        )
        .expect("string write");
    }
    doc.push_str("]\n");
    let parsed = json::parse(&doc).expect("BENCH_phases.json is valid JSON");
    json::validate_bench_phases(&parsed).expect("BENCH_phases.json matches schema");
    std::fs::write("BENCH_phases.json", &doc).expect("write BENCH_phases.json");
    println!("\nwrote BENCH_phases.json ({} records)", records.len());

    // Headline: the tentpole's before/after on the largest matrix run.
    if let Some(largest) = matrices.iter().max_by_key(|m| m.a.ncols()) {
        let fill = |kind: &str, threads: usize| {
            records
                .iter()
                .find(|r| r.matrix == largest.name && r.kind == kind && r.front_threads == threads)
                .map(|r| r.phases[3])
        };
        if let (Some(before), Some(after)) = (fill("measured", 1), fill("simulated", FRONT_THREADS))
        {
            println!(
                "{}: symbolic fill {:.2} ms sequential -> {:.2} ms projected @ {} threads ({:.2}x)",
                largest.name,
                before * 1e3,
                after * 1e3,
                FRONT_THREADS,
                before / after
            );
        }
    }
}
