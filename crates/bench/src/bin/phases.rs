//! Per-phase timing breakdown of the analysis pipeline, for every benchmark
//! matrix — the "symbolic steps take 10–50% of total factorization time"
//! discussion of the paper's introduction, measured.
//!
//! ```text
//! cargo run --release -p splu-bench --bin phases
//! ```

use splu_bench::suite;
use splu_ordering::{column_min_degree, maximum_transversal, StructuralRank};
use splu_sparse::Permutation;
use splu_symbolic::supernode::BlockStructure;
use splu_symbolic::{
    amalgamate, postorder_permutation, static_symbolic_factorization, supernode_partition,
    FilledLu, SupernodeOptions,
};
use std::time::Instant;

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    println!("Analysis phase breakdown (milliseconds)");
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>9} {:>10} {:>9}",
        "Matrix", "transv", "mindeg", "staticfact", "postord", "supernode", "blocks"
    );
    for m in suite() {
        let p = m.a.pattern();
        let t = Instant::now();
        let rp = match maximum_transversal(p) {
            StructuralRank::Full(x) => x,
            StructuralRank::Deficient { rank } => panic!("{}: rank {rank}", m.name),
        };
        let t_tr = t.elapsed();
        let p1 = p.permuted(&rp, &Permutation::identity(p.ncols()));
        let t = Instant::now();
        let q = column_min_degree(&p1);
        let t_md = t.elapsed();
        let p2 = p1.permuted(&q, &q);
        let t = Instant::now();
        let f = static_symbolic_factorization(&p2).expect("zero-free diagonal");
        let t_sf = t.elapsed();
        let t = Instant::now();
        let po = postorder_permutation(&f);
        let f2 = FilledLu::from_parts(f.l.permuted(&po, &po), f.u.permuted(&po, &po));
        let t_po = t.elapsed();
        let t = Instant::now();
        let part = supernode_partition(&f2);
        let am = amalgamate(&f2, &part, &SupernodeOptions::default());
        let t_sn = t.elapsed();
        let t = Instant::now();
        let bs = BlockStructure::new(&f2, am);
        let t_bs = t.elapsed();
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>10.2} {:>9.2} {:>10.2} {:>9.2}   (N = {})",
            m.name,
            ms(t_tr),
            ms(t_md),
            ms(t_sf),
            ms(t_po),
            ms(t_sn),
            ms(t_bs),
            bs.num_blocks()
        );
    }
}
