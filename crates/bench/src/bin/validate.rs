//! Schema-validates observability artifacts on disk.
//!
//! ```text
//! validate <file.json>... [--kind run-report|chrome-trace|factor|sched|kernels|phases|service]
//! ```
//!
//! Without `--kind`, each file's kind is sniffed from its content: an
//! object carrying the `parsplu-run-report/1` schema tag is a run report,
//! an object with `traceEvents` is a Chrome trace, and arrays fall back
//! to the `BENCH_*` kind inferred from the file name. Exit codes: 0 all
//! valid, 2 on any schema violation, unreadable file, or usage error.

use splu_bench::diff::ArtifactKind;
use splu_bench::json::{parse, validate_chrome_trace, validate_run_report, Json};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: validate <file.json>... \
         [--kind run-report|chrome-trace|factor|sched|kernels|phases|service]"
    );
    ExitCode::from(2)
}

/// Validates one parsed document as `kind`, returning a human label and
/// the validator's count on success.
fn validate_as(kind: &str, doc: &Json) -> Result<(String, usize), String> {
    match kind {
        "run-report" => validate_run_report(doc).map(|n| (format!("run report ({n} counters)"), n)),
        "chrome-trace" => {
            validate_chrome_trace(doc).map(|n| (format!("chrome trace ({n} events)"), n))
        }
        other => {
            let k =
                ArtifactKind::from_arg(other).ok_or_else(|| format!("unknown kind {other:?}"))?;
            k.validate(doc)?;
            let n = doc.as_arr().map_or(0, <[Json]>::len);
            Ok((format!("{k:?} artifact ({n} records)"), n))
        }
    }
}

/// Sniffs the artifact kind from the document shape, falling back to the
/// file name for `BENCH_*` arrays.
fn sniff_kind(path: &str, doc: &Json) -> Option<String> {
    if doc.get("schema").and_then(Json::as_str) == Some("parsplu-run-report/1") {
        return Some("run-report".to_string());
    }
    if doc.get("traceEvents").is_some() {
        return Some("chrome-trace".to_string());
    }
    ArtifactKind::from_name(path).map(|k| format!("{k:?}").to_lowercase())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut kind_arg: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kind" => match it.next() {
                Some(k) => kind_arg = Some(k),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        return usage();
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("validate: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("validate: {path}: invalid JSON: {e}");
                failed = true;
                continue;
            }
        };
        let kind = match kind_arg.clone().or_else(|| sniff_kind(path, &doc)) {
            Some(k) => k,
            None => {
                eprintln!("validate: {path}: cannot sniff artifact kind; pass --kind");
                failed = true;
                continue;
            }
        };
        match validate_as(&kind, &doc) {
            Ok((label, _)) => println!("validate: {path}: valid {label}"),
            Err(e) => {
                eprintln!("validate: {path}: schema violation: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
