//! Kernel dispatch microbench: portable vs SIMD GFLOP/s for the dense
//! panel kernels (`gemm_sub`, `trsm_lower_unit`, `trsm_upper`) at
//! supernode-typical panel shapes (DESIGN.md §5.2).
//!
//! Every [`Dispatch`] table compiled into this binary is measured:
//! `portable` always; with `--features simd` also `simd-chunked` and (when
//! the host CPU has AVX2) `simd-avx2`. Before timing, each table's output
//! is checked **bitwise** against the portable kernel on every shape — the
//! dispatch layer's equivalence contract, enforced here one more time on
//! the exact buffers being timed.
//!
//! Writes `BENCH_kernels.json` (one record per kernel × op × shape),
//! self-validated against [`json::validate_bench_kernels`] before the file
//! is written. `PARSPLU_REDUCED=1` shrinks the per-measurement work so CI
//! can smoke-test the binary and schema quickly.
//!
//! ```text
//! cargo run --release -p splu-bench --features simd --bin kernels
//! ```

use splu_bench::{json, min_time};
use splu_dense::{DenseMat, Dispatch, KernelChoice};
use std::fmt::Write as _;

/// `(m, k, n)` for `C[m×n] ← C − A[m×k]·B[k×n]`: tall panels times small
/// `Ū` blocks, the shape family the supernodal update produces. The last
/// entry is deliberately ragged (odd `m`, `k`, `n`).
const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    (64, 16, 16),
    (128, 32, 16),
    (256, 32, 32),
    (384, 48, 32),
    (512, 48, 48),
    (512, 64, 8),
    (768, 64, 48),
    (101, 17, 9),
];

/// `(n, rhs)` for the triangular solves: diagonal-block width × update
/// width.
const TRSM_SHAPES: &[(usize, usize)] = &[(16, 16), (32, 32), (48, 48), (64, 24), (17, 9)];

/// Deterministic pseudo-random fill (no rand dependency in release bins).
fn mat(r: usize, c: usize, seed: u64) -> DenseMat {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    DenseMat::from_fn(r, c, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2000) as f64 / 1000.0 - 1.0
    })
}

/// Every kernel table compiled into this binary, portable first.
fn tables() -> Vec<Dispatch> {
    #[allow(unused_mut)]
    let mut v = vec![Dispatch::portable()];
    #[cfg(feature = "simd")]
    {
        v.push(splu_dense::kernels::simd::chunked_dispatch());
        let best = splu_dense::kernels::simd::best_dispatch();
        if v.iter().all(|d| d.name() != best.name()) {
            v.push(best);
        }
    }
    v
}

/// Iteration count so each timed repetition does about `target` flops
/// (keeps tiny shapes out of timer-resolution noise).
fn iters_for(flops: f64, target: f64) -> usize {
    ((target / flops).ceil() as usize).max(1)
}

/// One measurement: seconds per call (min over [`splu_bench::REPS`] reps of
/// an `iters`-call batch) and the derived GFLOP/s.
fn measure(flops: f64, target: f64, mut call: impl FnMut()) -> (f64, f64) {
    let iters = iters_for(flops, target);
    let t = min_time(|| {
        for _ in 0..iters {
            call();
        }
    });
    let secs = t.as_secs_f64() / iters as f64;
    (secs, flops / secs / 1e9)
}

struct Row {
    op: &'static str,
    shape: String,
    kernel: &'static str,
    gflops: f64,
    seconds: f64,
}

fn main() {
    let reduced = std::env::var_os("PARSPLU_REDUCED").is_some();
    // Flops per timed repetition: large enough at full scale that the
    // per-call clone/reset is amortized and the timer quantization is
    // irrelevant.
    let target = if reduced { 2.0e6 } else { 5.0e7 };
    let tables = tables();
    println!(
        "kernel tables: {} (simd compiled: {})",
        tables
            .iter()
            .map(Dispatch::name)
            .collect::<Vec<_>>()
            .join(", "),
        Dispatch::simd_compiled()
    );
    assert_eq!(
        tables[0].name(),
        Dispatch::resolve(KernelChoice::Portable).name()
    );

    let mut rows: Vec<Row> = Vec::new();

    // gemm_sub: C ← C − A·B.
    for &(m, k, n) in GEMM_SHAPES {
        let a = mat(m, k, 1);
        let b = mat(k, n, 2);
        let c0 = mat(m, n, 3);
        // Bitwise contract check on the exact buffers being timed.
        let mut reference = c0.clone();
        tables[0].gemm_sub(reference.as_view_mut(), a.as_view(), b.as_view());
        for d in &tables[1..] {
            let mut c = c0.clone();
            d.gemm_sub(c.as_view_mut(), a.as_view(), b.as_view());
            assert_eq!(
                c.data(),
                reference.data(),
                "{}: gemm_sub differs from portable at {m}x{k}x{n}",
                d.name()
            );
        }
        let flops = 2.0 * (m * k * n) as f64;
        for d in &tables {
            let mut c = c0.clone();
            let (seconds, gflops) = measure(flops, target, || {
                c.data_mut().copy_from_slice(c0.data());
                d.gemm_sub(c.as_view_mut(), a.as_view(), b.as_view());
            });
            rows.push(Row {
                op: "gemm_sub",
                shape: format!("{m}x{k}x{n}"),
                kernel: d.name(),
                gflops,
                seconds,
            });
        }
    }

    // The two triangular solves: X ← L⁻¹X (unit lower) and X ← U⁻¹X.
    for &(n, rhs) in TRSM_SHAPES {
        let l = mat(n, n, 4);
        let mut u = mat(n, n, 5);
        for i in 0..n {
            u[(i, i)] += 4.0; // keep the upper solve well conditioned
        }
        let x0 = mat(n, rhs, 6);
        for (op, tri) in [("trsm_lower_unit", &l), ("trsm_upper", &u)] {
            let run = |d: &Dispatch, x: &mut DenseMat| match op {
                "trsm_lower_unit" => d.trsm_lower_unit(tri.as_view(), x.as_view_mut()),
                _ => d.trsm_upper(tri.as_view(), x.as_view_mut()),
            };
            let mut reference = x0.clone();
            run(&tables[0], &mut reference);
            for d in &tables[1..] {
                let mut x = x0.clone();
                run(d, &mut x);
                assert_eq!(
                    x.data(),
                    reference.data(),
                    "{}: {op} differs from portable at {n}x{rhs}",
                    d.name()
                );
            }
            let flops = (n * n * rhs) as f64;
            for d in &tables {
                let mut x = x0.clone();
                let (seconds, gflops) = measure(flops, target, || {
                    x.data_mut().copy_from_slice(x0.data());
                    run(d, &mut x);
                });
                rows.push(Row {
                    op,
                    shape: format!("{n}x{rhs}"),
                    kernel: d.name(),
                    gflops,
                    seconds,
                });
            }
        }
    }

    // Console table: one line per op × shape, kernels side by side with the
    // speedup of the best non-portable table over portable.
    println!(
        "\n{:<16} {:>12} {:>10} {:>12} {:>8}",
        "op", "shape", "kernel", "GFLOP/s", "vs base"
    );
    let mut wins = 0usize;
    for (op, shape) in rows
        .iter()
        .map(|r| (r.op, r.shape.clone()))
        .collect::<std::collections::BTreeSet<_>>()
    {
        let group: Vec<&Row> = rows
            .iter()
            .filter(|r| r.op == op && r.shape == shape)
            .collect();
        let base = group
            .iter()
            .find(|r| r.kernel == "portable")
            .expect("portable row always present")
            .gflops;
        for r in &group {
            println!(
                "{:<16} {:>12} {:>10} {:>12.3} {:>7.2}x",
                r.op,
                r.shape,
                r.kernel,
                r.gflops,
                r.gflops / base
            );
            if r.op == "gemm_sub" && r.kernel != "portable" && r.gflops > base {
                wins += 1;
            }
        }
    }
    if Dispatch::simd_compiled() {
        println!("\nSIMD gemm_sub wins over portable: {wins} kernel×shape cells");
    }

    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            body,
            "  {{\"op\": \"{}\", \"shape\": \"{}\", \"kernel\": \"{}\", \
             \"gflops\": {:.6}, \"seconds_per_call\": {:.12}}}{}",
            r.op, r.shape, r.kernel, r.gflops, r.seconds, sep
        )
        .expect("string write");
    }
    let doc = format!("[\n{}]\n", body);
    let parsed = json::parse(&doc).expect("BENCH_kernels.json: generated invalid JSON");
    let n = json::validate_bench_kernels(&parsed).expect("BENCH_kernels.json: schema violation");
    std::fs::write("BENCH_kernels.json", &doc).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json ({n} records)");
}
