//! Regenerates the paper's **Figures 5 and 6**: performance improvement of
//! the new (eforest) task dependence graph over the S* graph,
//! `1 − T(new)/T(old)`, versus processor count.
//!
//! Figure 5 plots sherman3, sherman5, orsreg1, goodwin; Figure 6 plots
//! lns3937, lnsp3937, saylr4. As in Table 2, both real-thread measurements
//! (P ≤ host cores) and calibrated simulator results (P up to 8) are
//! reported; the paper measures 4–30% improvement.
//!
//! ```text
//! cargo run --release -p splu-bench --bin fig5_6
//! ```

use splu_bench::{calibrated_model, prepare_suite, simulated_seconds, time_factor, Prepared};
use splu_sched::Mapping;

fn improvement_line(p: &Prepared) -> String {
    let procs = [2usize, 4, 8];
    // Real threads at P=2 (the host has 2 cores).
    let real_old = time_factor(p, &p.sstar, 2).as_secs_f64();
    let real_new = time_factor(p, &p.eforest, 2).as_secs_f64();
    let real_imp = 1.0 - real_new / real_old;
    // Calibrated simulation for the full processor axis.
    let serial = time_factor(p, &p.eforest, 1);
    let model = calibrated_model(p, &p.eforest, serial);
    let mut s = format!("{:<10} real P=2: {:>6.1}%   sim:", p.name, 100.0 * real_imp);
    for &np in &procs {
        let t_old = simulated_seconds(p, &p.sstar, np, Mapping::Dynamic, &model);
        let t_new = simulated_seconds(p, &p.eforest, np, Mapping::Dynamic, &model);
        s.push_str(&format!(
            "  P={np}: {:>5.1}%",
            100.0 * (1.0 - t_new / t_old)
        ));
    }
    s
}

fn main() {
    let prepared = prepare_suite();
    let fig5 = ["sherman3", "sherman5", "orsreg1", "goodwin"];
    let fig6 = ["lns3937", "lnsp3937", "saylr4"];
    println!("Figures 5-6: improvement of the eforest task graph over the S* graph");
    println!("(1 - T(new)/T(old); positive = new graph faster)\n");
    println!("Figure 5:");
    for p in prepared.iter().filter(|p| fig5.contains(&p.name)) {
        println!("  {}", improvement_line(p));
    }
    println!("\nFigure 6:");
    for p in prepared.iter().filter(|p| fig6.contains(&p.name)) {
        println!("  {}", improvement_line(p));
    }
    println!("\n(the paper reports 4-30% improvements, generally growing with P)");
    println!("\nTask graph shapes (context):");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "Matrix", "tasks", "edges S*", "edges new", "cp S*", "cp new"
    );
    for p in &prepared {
        println!(
            "{:<10} {:>8} {:>12} {:>12} {:>10} {:>10}",
            p.name,
            p.sstar.len(),
            p.sstar.num_edges(),
            p.eforest.num_edges(),
            p.sstar.critical_path_len(),
            p.eforest.critical_path_len()
        );
    }
}
