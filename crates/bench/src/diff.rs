//! Regression comparison of two benchmark artifacts (`bench diff`).
//!
//! Takes a **baseline** and a **current** `BENCH_*.json` document of the
//! same kind (factor / sched / kernels / phases), matches records by their
//! identifying key fields, and compares each numeric metric under a
//! per-metric threshold: a *regression* is a change past the threshold in
//! the metric's bad direction (slower for times, lower for throughputs).
//! Records present in only one document are reported but are **not**
//! regressions — CI diffs a reduced-scale smoke artifact against the
//! committed full-scale one, so the intersection is what's comparable.
//!
//! The `bench_diff` binary wraps this module and exits nonzero when
//! [`DiffReport::has_regressions`] — the bench regression gate.

use crate::json::{
    validate_bench_factor, validate_bench_kernels, validate_bench_phases, validate_bench_sched,
    validate_bench_service, Json, PHASE_NAMES,
};

/// Which benchmark artifact a document is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// `BENCH_factor.json` — end-to-end factorization medians.
    Factor,
    /// `BENCH_sched.json` — scheduler telemetry and tracing overhead.
    Sched,
    /// `BENCH_kernels.json` — dense kernel micro-benchmarks.
    Kernels,
    /// `BENCH_phases.json` — per-phase pipeline walls.
    Phases,
    /// `BENCH_service.json` — session refactor speedups and serve-mode
    /// throughput.
    Service,
}

impl ArtifactKind {
    /// Guesses the kind from a file name (`BENCH_factor.json` → Factor).
    pub fn from_name(name: &str) -> Option<ArtifactKind> {
        let lower = name.to_ascii_lowercase();
        for (tag, kind) in [
            ("factor", ArtifactKind::Factor),
            ("sched", ArtifactKind::Sched),
            ("kernels", ArtifactKind::Kernels),
            ("phases", ArtifactKind::Phases),
            ("service", ArtifactKind::Service),
        ] {
            if lower.contains(tag) {
                return Some(kind);
            }
        }
        None
    }

    /// Parses a `--kind` argument.
    pub fn from_arg(arg: &str) -> Option<ArtifactKind> {
        match arg {
            "factor" => Some(ArtifactKind::Factor),
            "sched" => Some(ArtifactKind::Sched),
            "kernels" => Some(ArtifactKind::Kernels),
            "phases" => Some(ArtifactKind::Phases),
            "service" => Some(ArtifactKind::Service),
            _ => None,
        }
    }

    /// Schema-validates `doc` as this kind of artifact.
    pub fn validate(self, doc: &Json) -> Result<usize, String> {
        match self {
            ArtifactKind::Factor => validate_bench_factor(doc),
            ArtifactKind::Sched => validate_bench_sched(doc),
            ArtifactKind::Kernels => validate_bench_kernels(doc),
            ArtifactKind::Phases => validate_bench_phases(doc),
            ArtifactKind::Service => validate_bench_service(doc),
        }
    }

    /// The fields whose rendered values identify a record of this kind.
    fn key_fields(self) -> &'static [&'static str] {
        match self {
            ArtifactKind::Factor => &["matrix", "mapping", "kernel", "threads", "kind"],
            ArtifactKind::Sched => &["matrix", "mode", "threads", "kind"],
            ArtifactKind::Kernels => &["op", "shape", "kernel"],
            ArtifactKind::Phases => &["matrix", "front_threads", "kind"],
            ArtifactKind::Service => &["matrix", "threads", "kind"],
        }
    }

    /// The metrics compared for a record of this kind. Phase metrics are
    /// nested under the record's `phases` object as `phases.<name>`.
    fn metrics(self) -> Vec<MetricSpec> {
        match self {
            ArtifactKind::Factor => vec![MetricSpec::time("median_seconds")],
            ArtifactKind::Sched => vec![
                MetricSpec::time("median_off_s"),
                MetricSpec::time("median_traced_s"),
                MetricSpec::time("wall_s"),
                MetricSpec::time("makespan_s"),
                // Overhead is already a percentage: compare in absolute
                // points, not relative to a near-zero baseline.
                MetricSpec {
                    name: "overhead_pct",
                    lower_is_better: true,
                    abs_floor: 2.0,
                    absolute_only: true,
                },
            ],
            ArtifactKind::Kernels => vec![
                MetricSpec {
                    name: "gflops",
                    lower_is_better: false,
                    abs_floor: 0.05,
                    absolute_only: false,
                },
                MetricSpec::time("seconds_per_call"),
            ],
            ArtifactKind::Phases => PHASE_NAMES
                .iter()
                .map(|p| MetricSpec::nested_time(p))
                .collect(),
            // `speedup` records carry the timing metrics, `serve` records
            // the throughput; the missing ones are skipped per record.
            ArtifactKind::Service => vec![
                MetricSpec::time("factor_s"),
                MetricSpec::time("refactor_s"),
                MetricSpec {
                    name: "speedup",
                    lower_is_better: false,
                    abs_floor: 0.05,
                    absolute_only: false,
                },
                MetricSpec {
                    name: "jobs_per_sec",
                    lower_is_better: false,
                    abs_floor: 0.05,
                    absolute_only: false,
                },
            ],
        }
    }
}

/// One compared metric: where it lives in the record and which direction
/// is a regression.
#[derive(Debug, Clone)]
pub struct MetricSpec {
    /// Field name; `phases.<name>` reaches into the nested phases object.
    pub name: &'static str,
    /// `true` when growth is the bad direction (times); `false` when
    /// shrinkage is (throughputs).
    pub lower_is_better: bool,
    /// Absolute change below which a relative excursion is noise (seconds
    /// for times, units of the metric otherwise).
    pub abs_floor: f64,
    /// Compare by absolute difference only, ignoring the relative
    /// threshold (for metrics that are already ratios/percentages).
    pub absolute_only: bool,
}

impl MetricSpec {
    fn time(name: &'static str) -> MetricSpec {
        MetricSpec {
            name,
            lower_is_better: true,
            abs_floor: 1e-4,
            absolute_only: false,
        }
    }

    fn nested_time(phase: &'static str) -> MetricSpec {
        // Leak-free: the nine names are 'static via a lookup table.
        let name = PHASE_FIELD_NAMES[PHASE_NAMES
            .iter()
            .position(|p| *p == phase)
            .expect("phase names are canonical")];
        MetricSpec {
            name,
            lower_is_better: true,
            abs_floor: 1e-3,
            absolute_only: false,
        }
    }
}

/// `phases.<name>` field paths, parallel to [`PHASE_NAMES`].
const PHASE_FIELD_NAMES: [&str; 9] = [
    "phases.parse",
    "phases.scale_transversal",
    "phases.ordering",
    "phases.symbolic_fill",
    "phases.eforest_postorder",
    "phases.supernode_partition",
    "phases.graph_build",
    "phases.numeric",
    "phases.solve",
];

/// Thresholds for a diff run.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Default relative threshold, percent: a metric regressed when it
    /// moved more than this fraction in the bad direction (and past the
    /// metric's absolute floor).
    pub rel_pct: f64,
    /// Per-metric threshold overrides, `(metric name, value)`. For
    /// relative metrics the value is a percent; for `absolute_only`
    /// metrics (already ratios/percentages, e.g. `overhead_pct`) it
    /// replaces the absolute floor, in the metric's own units.
    pub overrides: Vec<(String, f64)>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            rel_pct: 10.0,
            overrides: Vec::new(),
        }
    }
}

impl DiffOptions {
    fn override_for(&self, metric: &str) -> Option<f64> {
        self.overrides
            .iter()
            .rev()
            .find(|(name, _)| name == metric)
            .map(|(_, pct)| *pct)
    }

    fn threshold_for(&self, metric: &str) -> f64 {
        self.override_for(metric).unwrap_or(self.rel_pct)
    }
}

/// One metric's comparison on one matched record.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Rendered record key (`matrix=goodwin threads=8 ...`).
    pub key: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change, percent (positive = current larger).
    pub change_pct: f64,
    /// Whether this delta crosses the regression threshold in the bad
    /// direction.
    pub regressed: bool,
}

/// The full comparison result.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every compared metric, matched-record order.
    pub deltas: Vec<Delta>,
    /// Record keys present in the baseline only (informational).
    pub missing: Vec<String>,
    /// Record keys present in the current document only (informational).
    pub added: Vec<String>,
    /// Matched record count.
    pub matched: usize,
}

impl DiffReport {
    /// Whether any metric regressed past its threshold.
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// The regressed deltas only.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }
}

fn render_key(rec: &Json, fields: &[&str]) -> String {
    let mut out = String::new();
    for f in fields {
        if !out.is_empty() {
            out.push(' ');
        }
        let v = match rec.get(f) {
            Some(Json::Str(s)) => s.clone(),
            Some(Json::Num(x)) => format!("{x}"),
            _ => "?".to_string(),
        };
        out.push_str(&format!("{f}={v}"));
    }
    out
}

fn lookup(rec: &Json, path: &str) -> Option<f64> {
    let mut cur = rec;
    for part in path.split('.') {
        cur = cur.get(part)?;
    }
    cur.as_num()
}

/// Compares `current` against `baseline` (both already schema-valid for
/// `kind`). Records are matched by the kind's key fields; each of the
/// kind's metrics present in **both** records becomes a [`Delta`].
pub fn diff_artifacts(
    kind: ArtifactKind,
    baseline: &Json,
    current: &Json,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    let base_records = baseline.as_arr().ok_or("baseline: not an array")?;
    let cur_records = current.as_arr().ok_or("current: not an array")?;
    let fields = kind.key_fields();
    let metrics = kind.metrics();

    let mut report = DiffReport::default();
    let cur_keyed: Vec<(String, &Json)> = cur_records
        .iter()
        .map(|r| (render_key(r, fields), r))
        .collect();
    let base_keys: Vec<String> = base_records.iter().map(|r| render_key(r, fields)).collect();
    for (key, _) in &cur_keyed {
        if !base_keys.contains(key) {
            report.added.push(key.clone());
        }
    }
    for (b, key) in base_records.iter().zip(&base_keys) {
        let Some((_, c)) = cur_keyed.iter().find(|(k, _)| k == key) else {
            report.missing.push(key.clone());
            continue;
        };
        report.matched += 1;
        for spec in &metrics {
            let (Some(bv), Some(cv)) = (lookup(b, spec.name), lookup(c, spec.name)) else {
                // A metric both sides lack (e.g. makespan_s on measured
                // sched records) is simply not compared.
                continue;
            };
            let change_pct = if bv != 0.0 {
                (cv - bv) / bv.abs() * 100.0
            } else if cv == 0.0 {
                0.0
            } else {
                f64::INFINITY * (cv - bv).signum()
            };
            let bad_move = if spec.lower_is_better {
                cv - bv
            } else {
                bv - cv
            };
            let regressed = if spec.absolute_only {
                // Already a ratio/percentage: an override is an absolute
                // budget in the metric's own units (points), not percent.
                bad_move > opts.override_for(spec.name).unwrap_or(spec.abs_floor)
            } else {
                let rel_pct = opts.threshold_for(spec.name);
                bad_move > spec.abs_floor && bad_move > bv.abs() * rel_pct / 100.0
            };
            report.deltas.push(Delta {
                key: key.clone(),
                metric: spec.name.to_string(),
                baseline: bv,
                current: cv,
                change_pct,
                regressed,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn factor_doc(median: f64) -> Json {
        parse(&format!(
            r#"[{{"matrix": "m", "threads": 2, "mapping": "static1d", "kind": "measured",
                 "kernel": "portable", "median_seconds": {median}}}]"#
        ))
        .unwrap()
    }

    #[test]
    fn unchanged_artifacts_pass() {
        let a = factor_doc(0.5);
        let report = diff_artifacts(ArtifactKind::Factor, &a, &a, &DiffOptions::default()).unwrap();
        assert_eq!(report.matched, 1);
        assert!(!report.has_regressions());
        assert_eq!(report.deltas.len(), 1);
        assert_eq!(report.deltas[0].change_pct, 0.0);
    }

    #[test]
    fn injected_slowdown_is_a_regression() {
        let base = factor_doc(0.5);
        let slow = factor_doc(0.75); // +50% over a 10% threshold
        let report =
            diff_artifacts(ArtifactKind::Factor, &base, &slow, &DiffOptions::default()).unwrap();
        assert!(report.has_regressions());
        let d = &report.regressions()[0];
        assert_eq!(d.metric, "median_seconds");
        assert!((d.change_pct - 50.0).abs() < 1e-9);
        // A speedup in the same metric is not a regression.
        let fast = factor_doc(0.25);
        let report =
            diff_artifacts(ArtifactKind::Factor, &base, &fast, &DiffOptions::default()).unwrap();
        assert!(!report.has_regressions());
    }

    #[test]
    fn thresholds_gate_regressions() {
        let base = factor_doc(0.50);
        let slight = factor_doc(0.54); // +8%
        let opts = DiffOptions::default(); // 10%
        assert!(!diff_artifacts(ArtifactKind::Factor, &base, &slight, &opts)
            .unwrap()
            .has_regressions());
        let tight = DiffOptions {
            overrides: vec![("median_seconds".to_string(), 5.0)],
            ..DiffOptions::default()
        };
        assert!(diff_artifacts(ArtifactKind::Factor, &base, &slight, &tight)
            .unwrap()
            .has_regressions());
    }

    #[test]
    fn absolute_only_overrides_are_points_budgets() {
        let mk = |overhead: f64| {
            parse(&format!(
                r#"[{{"matrix": "m", "mode": "dynamic", "threads": 8, "kind": "measured",
                     "median_off_s": 0.4, "median_traced_s": 0.41, "overhead_pct": {overhead},
                     "wall_s": 0.4, "tasks_total": 10, "panel_copies": 0,
                     "busy_s": [], "idle_s": [], "steal_s": [], "tasks": [], "steals_in": []}}]"#
            ))
            .unwrap()
        };
        // (diff_artifacts does not re-validate, so the empty per-worker
        // arrays are fine for this fixture.)
        let base = mk(1.0);
        let noisy = mk(8.0); // +7 points: over the default 2.0-point floor
        assert!(
            diff_artifacts(ArtifactKind::Sched, &base, &noisy, &DiffOptions::default())
                .unwrap()
                .has_regressions()
        );
        // A loose points budget (e.g. for reduced-scale smoke runs where
        // overhead is timer-noise-bound) admits the same move.
        let loose = DiffOptions {
            overrides: vec![("overhead_pct".to_string(), 50.0)],
            ..DiffOptions::default()
        };
        assert!(!diff_artifacts(ArtifactKind::Sched, &base, &noisy, &loose)
            .unwrap()
            .has_regressions());
    }

    #[test]
    fn tiny_absolute_changes_are_noise() {
        // +100% relative but only 50µs absolute: under the 1e-4 s floor.
        let base = factor_doc(5e-5);
        let cur = factor_doc(1e-4);
        assert!(
            !diff_artifacts(ArtifactKind::Factor, &base, &cur, &DiffOptions::default())
                .unwrap()
                .has_regressions()
        );
    }

    #[test]
    fn unmatched_records_are_reported_not_failed() {
        let base = parse(
            r#"[{"matrix": "a", "threads": 1, "mapping": "static1d", "kind": "measured",
                 "kernel": "portable", "median_seconds": 0.5},
                {"matrix": "b", "threads": 1, "mapping": "static1d", "kind": "measured",
                 "kernel": "portable", "median_seconds": 0.5}]"#,
        )
        .unwrap();
        let cur = parse(
            r#"[{"matrix": "a", "threads": 1, "mapping": "static1d", "kind": "measured",
                 "kernel": "portable", "median_seconds": 0.5},
                {"matrix": "c", "threads": 1, "mapping": "static1d", "kind": "measured",
                 "kernel": "portable", "median_seconds": 0.5}]"#,
        )
        .unwrap();
        let report =
            diff_artifacts(ArtifactKind::Factor, &base, &cur, &DiffOptions::default()).unwrap();
        assert_eq!(report.matched, 1);
        assert_eq!(report.missing.len(), 1);
        assert_eq!(report.added.len(), 1);
        assert!(!report.has_regressions());
    }

    #[test]
    fn kernel_throughput_direction_is_inverted() {
        let mk = |gflops: f64| {
            parse(&format!(
                r#"[{{"op": "gemm_sub", "shape": "64x16x16", "kernel": "portable",
                     "gflops": {gflops}, "seconds_per_call": 1e-5}}]"#
            ))
            .unwrap()
        };
        let base = mk(5.0);
        let slower = mk(3.0); // -40% throughput
        let report = diff_artifacts(
            ArtifactKind::Kernels,
            &base,
            &slower,
            &DiffOptions::default(),
        )
        .unwrap();
        assert!(report.has_regressions());
        let faster = mk(8.0);
        let report = diff_artifacts(
            ArtifactKind::Kernels,
            &base,
            &faster,
            &DiffOptions::default(),
        )
        .unwrap();
        assert!(!report.has_regressions());
    }

    #[test]
    fn phases_compare_nested_walls() {
        let mk = |numeric: f64| {
            let fields: Vec<String> = PHASE_NAMES
                .iter()
                .map(|p| {
                    let v = if *p == "numeric" { numeric } else { 0.01 };
                    format!("\"{p}\": {v}")
                })
                .collect();
            parse(&format!(
                "[{{\"matrix\": \"m\", \"front_threads\": 8, \"kind\": \"measured\", \
                  \"phases\": {{{}}}}}]",
                fields.join(", ")
            ))
            .unwrap()
        };
        let base = mk(1.0);
        let slow = mk(1.5);
        let report =
            diff_artifacts(ArtifactKind::Phases, &base, &slow, &DiffOptions::default()).unwrap();
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "phases.numeric");
    }

    #[test]
    fn kind_detection() {
        assert_eq!(
            ArtifactKind::from_name("BENCH_sched.json"),
            Some(ArtifactKind::Sched)
        );
        assert_eq!(
            ArtifactKind::from_name("/tmp/smoke/BENCH_phases.json"),
            Some(ArtifactKind::Phases)
        );
        assert_eq!(ArtifactKind::from_name("notes.json"), None);
        assert_eq!(
            ArtifactKind::from_arg("kernels"),
            Some(ArtifactKind::Kernels)
        );
        assert_eq!(ArtifactKind::from_arg("bogus"), None);
    }
}
