//! Shared machinery for the table/figure binaries (one binary per table or
//! figure of the paper — see DESIGN.md §4) and the criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod json;

use splu_core::{
    analyze, estimate_task_costs, KernelChoice, NumericRequest, Options, SymbolicLu, TaskGraphKind,
};
use splu_matgen::{paper_suite, BenchMatrix, Scale};
use splu_sched::{simulate, CostModel, Mapping, TaskGraph};
use splu_sparse::CscMatrix;
use std::time::{Duration, Instant};

/// Number of repetitions for wall-clock measurements (minimum reported —
/// the host is small and shared, so the minimum is the stable statistic).
pub const REPS: usize = 5;

/// Loads the benchmark suite at the scale selected by the
/// `PARSPLU_REDUCED` environment variable (any value → reduced), so CI can
/// exercise the binaries quickly.
pub fn suite() -> Vec<BenchMatrix> {
    let scale = if std::env::var_os("PARSPLU_REDUCED").is_some() {
        Scale::Reduced
    } else {
        Scale::Full
    };
    paper_suite(scale)
}

/// Minimum wall time of `REPS` runs of `f`.
pub fn min_time<F: FnMut()>(mut f: F) -> Duration {
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("REPS > 0")
}

/// A prepared problem: matrix, analysis, prebuilt graphs and the permuted
/// matrix (so the numerical phase alone is timed).
pub struct Prepared {
    /// Matrix name from the paper's Table 1.
    pub name: &'static str,
    /// The matrix itself (original order).
    pub a: CscMatrix,
    /// Symbolic analysis (with postordering).
    pub sym: SymbolicLu,
    /// The matrix permuted into factorization order.
    pub permuted: CscMatrix,
    /// The paper's least-dependence task graph.
    pub eforest: TaskGraph,
    /// The S* task graph.
    pub sstar: TaskGraph,
}

/// Analyzes every suite matrix once and prebuilds both task graphs.
pub fn prepare_suite() -> Vec<Prepared> {
    suite()
        .into_iter()
        .map(|m| {
            let sym = analyze(m.a.pattern(), &Options::default()).expect("analysis succeeds");
            let permuted = sym.permute_matrix(&m.a);
            let eforest = sym.build_graph(TaskGraphKind::EForest);
            let sstar = sym.build_graph(TaskGraphKind::SStar);
            Prepared {
                name: m.name,
                a: m.a,
                sym,
                permuted,
                eforest,
                sstar,
            }
        })
        .collect()
}

/// Times the numerical factorization (minimum of [`REPS`]) on a prepared
/// problem. Block storage is allocated once outside the timed region (the
/// paper's Table 2 also times the numerical phase only); each repetition
/// re-scatters the values and factors in place.
pub fn time_factor(p: &Prepared, graph: &TaskGraph, threads: usize) -> Duration {
    time_factor_with(p, graph, threads, KernelChoice::Portable)
}

/// [`time_factor`] with an explicit kernel selection (the `kernels`
/// microbench and scaling harness time portable vs. SIMD through this).
pub fn time_factor_with(
    p: &Prepared,
    graph: &TaskGraph,
    threads: usize,
    kernels: KernelChoice,
) -> Duration {
    let mut bm = splu_core::BlockMatrix::assemble(&p.permuted, &p.sym.block_structure);
    let req = NumericRequest::coarse(graph, Mapping::Static1D)
        .threads(threads)
        .kernels(kernels);
    min_time(|| {
        bm.reset_from(&p.permuted, &p.sym.block_structure);
        splu_core::factor_numeric_with(&bm, &req).expect("factorization succeeds");
    })
}

/// A cost model calibrated so that the simulated one-processor makespan of
/// `graph` matches the measured serial factorization time — grounding the
/// Origin-2000 simulator in this machine's reality (DESIGN.md §5.2).
pub fn calibrated_model(p: &Prepared, graph: &TaskGraph, serial: Duration) -> CostModel {
    let costs = estimate_task_costs(&p.sym.block_structure, graph);
    let flops: f64 = costs.iter().map(|c| c.flops).sum();
    let spf = if flops > 0.0 {
        serial.as_secs_f64() / flops
    } else {
        2.0e-8
    };
    CostModel {
        seconds_per_flop: spf,
        // Remote reads modelled at 8 bytes/word over an interconnect ~25x
        // slower than a local flop stream, per the Origin's ~100 MB/s
        // effective remote bandwidth vs its cached flop rate.
        seconds_per_word: spf * 4.0,
        // Dispatch overhead: a few hundred flop-equivalents per task.
        task_overhead: spf * 400.0,
        // Run-time messaging/dispatch latency per cross-processor
        // dependence: a few thousand flop-equivalents (≈10 µs at 1999 flop
        // rates) — the cost RAPID pays on every inter-processor DAG edge.
        edge_latency: spf * 3000.0,
    }
}

/// Simulated makespan of `graph` on `nprocs` virtual processors under
/// `model` and the given mapping discipline.
///
/// Figures 5-6 and Table 2 use [`Mapping::Dynamic`]: RAPID derives task
/// placement from the dependence graph ("assigns tasks to processors in an
/// optimal way"), which a greedy earliest-free-processor list schedule
/// emulates; the static 1D discipline is available as an ablation.
pub fn simulated_seconds(
    prepared: &Prepared,
    graph: &TaskGraph,
    nprocs: usize,
    mapping: Mapping,
    model: &CostModel,
) -> f64 {
    let costs = estimate_task_costs(&prepared.sym.block_structure, graph);
    simulate(graph, nprocs, mapping, &costs, model).makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_suite_prepares_and_factors() {
        std::env::set_var("PARSPLU_REDUCED", "1");
        let prepared = prepare_suite();
        assert_eq!(prepared.len(), 7);
        for p in &prepared {
            let t = time_factor(p, &p.eforest, 1);
            assert!(t.as_nanos() > 0);
            let model = calibrated_model(p, &p.eforest, t);
            let s1 = simulated_seconds(p, &p.eforest, 1, Mapping::Dynamic, &model);
            // Calibration: simulated serial time within 2x of measured
            // (overheads shift it somewhat).
            assert!(
                s1 > 0.3 * t.as_secs_f64() && s1 < 3.0 * t.as_secs_f64(),
                "{}: calibration off (sim {s1} vs real {})",
                p.name,
                t.as_secs_f64()
            );
        }
        std::env::remove_var("PARSPLU_REDUCED");
    }
}
