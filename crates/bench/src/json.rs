//! Minimal JSON parsing and schema validation for the benchmark artifacts.
//!
//! The workspace is offline (no serde), but the observability artifacts —
//! `BENCH_sched.json`, `BENCH_factor.json` and the Chrome `trace_event`
//! files — must be *verifiably* well-formed: CI parses and schema-checks
//! them after every `perf_report` run, and the test-suite validates the
//! Chrome export (valid JSON, monotone per-worker timestamps). This module
//! is a small recursive-descent parser over the JSON grammar plus the
//! schema validators for the artifacts this repo writes.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, key-ordered.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        b.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {s:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by our artifacts;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("unescaped control character at byte {}", *pos))
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multibyte-safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Schema validators for the artifacts this repo writes.
// ---------------------------------------------------------------------------

fn require_num(rec: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    rec.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{ctx}: missing numeric field {key:?}"))
}

fn require_str<'j>(rec: &'j Json, key: &str, ctx: &str) -> Result<&'j str, String> {
    rec.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing string field {key:?}"))
}

/// Validates a Chrome `trace_event` document: a `traceEvents` array whose
/// complete (`"X"`) events carry `name`/`ts`/`dur`/`tid` with non-negative
/// durations and **monotone non-decreasing `ts` per `tid`** (each worker's
/// stream is recorded in order). Returns the number of `"X"` events.
pub fn validate_chrome_trace(doc: &Json) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("chrome trace: missing traceEvents array")?;
    // Timestamps must be monotone per *track*, i.e. per (pid, tid) pair —
    // combined pipeline traces carry several processes whose tid spaces
    // overlap (pid 0 = pipeline, pid 1 = numeric executor).
    let mut last_ts: BTreeMap<(i64, i64), f64> = BTreeMap::new();
    let mut complete = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ctx = format!("traceEvents[{i}]");
        let ph = require_str(e, "ph", &ctx)?;
        if ph != "X" {
            continue;
        }
        complete += 1;
        require_str(e, "name", &ctx)?;
        let pid = e.get("pid").and_then(Json::as_num).unwrap_or(0.0) as i64;
        let tid = require_num(e, "tid", &ctx)? as i64;
        let ts = require_num(e, "ts", &ctx)?;
        let dur = require_num(e, "dur", &ctx)?;
        if dur < 0.0 {
            return Err(format!("{ctx}: negative duration {dur}"));
        }
        if let Some(&prev) = last_ts.get(&(pid, tid)) {
            if ts < prev {
                return Err(format!(
                    "{ctx}: timestamps regress on pid {pid} tid {tid} ({ts} < {prev})"
                ));
            }
        }
        last_ts.insert((pid, tid), ts);
    }
    Ok(complete)
}

/// Validates `BENCH_sched.json`: an array of records each carrying the
/// identifying fields, a `kind` of `measured`/`simulated`, the overhead
/// measurement, and per-worker breakdown arrays of consistent length.
pub fn validate_bench_sched(doc: &Json) -> Result<usize, String> {
    let records = doc.as_arr().ok_or("BENCH_sched.json: not an array")?;
    for (i, r) in records.iter().enumerate() {
        let ctx = format!("record[{i}]");
        require_str(r, "matrix", &ctx)?;
        require_str(r, "mode", &ctx)?;
        let kind = require_str(r, "kind", &ctx)?;
        if kind != "measured" && kind != "simulated" {
            return Err(format!("{ctx}: bad kind {kind:?}"));
        }
        let threads = require_num(r, "threads", &ctx)?;
        if kind == "measured" {
            require_num(r, "median_off_s", &ctx)?;
            require_num(r, "median_traced_s", &ctx)?;
            require_num(r, "overhead_pct", &ctx)?;
            require_num(r, "wall_s", &ctx)?;
            require_num(r, "tasks_total", &ctx)?;
            require_num(r, "panel_copies", &ctx)?;
            for key in ["busy_s", "idle_s", "steal_s", "tasks", "steals_in"] {
                let arr = r
                    .get(key)
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("{ctx}: missing array {key:?}"))?;
                if arr.len() != threads as usize {
                    return Err(format!(
                        "{ctx}: {key:?} has {} entries for {threads} workers",
                        arr.len()
                    ));
                }
            }
        } else {
            require_num(r, "makespan_s", &ctx)?;
        }
    }
    Ok(records.len())
}

/// Validates `BENCH_factor.json`: an array of records each with `matrix`,
/// `threads`, `mapping`, `median_seconds` and a `kind` of
/// `measured`/`simulated` (the field that stops downstream tooling from
/// averaging simulator ticks into wall-clock rows).
pub fn validate_bench_factor(doc: &Json) -> Result<usize, String> {
    let records = doc.as_arr().ok_or("BENCH_factor.json: not an array")?;
    for (i, r) in records.iter().enumerate() {
        let ctx = format!("record[{i}]");
        require_str(r, "matrix", &ctx)?;
        require_str(r, "mapping", &ctx)?;
        require_str(r, "kernel", &ctx)?;
        require_num(r, "threads", &ctx)?;
        require_num(r, "median_seconds", &ctx)?;
        let kind = require_str(r, "kind", &ctx)?;
        if kind != "measured" && kind != "simulated" {
            return Err(format!("{ctx}: bad kind {kind:?}"));
        }
    }
    Ok(records.len())
}

/// The pipeline phases a `BENCH_phases.json` record must report, in
/// pipeline order: everything from reading the matrix file through the
/// triangular solves. `symbolic_fill` is the phase the parallel front half
/// targets; records at `front_threads > 1` exist in `measured` form (wall
/// clock on this host, however many cores it has) and `simulated` form
/// (the measured sequential-skeleton + parallelizable-portion split
/// projected onto the requested thread count — see EXPERIMENTS.md).
pub const PHASE_NAMES: [&str; 9] = [
    "parse",
    "scale_transversal",
    "ordering",
    "symbolic_fill",
    "eforest_postorder",
    "supernode_partition",
    "graph_build",
    "numeric",
    "solve",
];

/// Validates `BENCH_phases.json`: an array of records each with `matrix`,
/// `front_threads` (≥ 1), a `kind` of `measured`/`simulated`, and a
/// `phases` object mapping every name in [`PHASE_NAMES`] to a finite
/// non-negative wall time in seconds.
pub fn validate_bench_phases(doc: &Json) -> Result<usize, String> {
    let records = doc.as_arr().ok_or("BENCH_phases.json: not an array")?;
    for (i, r) in records.iter().enumerate() {
        let ctx = format!("record[{i}]");
        require_str(r, "matrix", &ctx)?;
        let ft = require_num(r, "front_threads", &ctx)?;
        if ft < 1.0 || ft.fract() != 0.0 {
            return Err(format!("{ctx}: bad front_threads {ft}"));
        }
        let kind = require_str(r, "kind", &ctx)?;
        if kind != "measured" && kind != "simulated" {
            return Err(format!("{ctx}: bad kind {kind:?}"));
        }
        let phases = r
            .get("phases")
            .ok_or_else(|| format!("{ctx}: missing phases object"))?;
        for key in PHASE_NAMES {
            let v = require_num(phases, key, &format!("{ctx}.phases"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{ctx}.phases.{key}: bad wall time {v}"));
            }
        }
    }
    Ok(records.len())
}

/// Validates a `parsplu-run-report/1` document (the `--report` output of
/// the CLI and `splu_core::observe::RunReport::to_json`): the schema tag,
/// matrix/options identification, finite non-negative per-phase walls keyed
/// by [`PHASE_NAMES`] members only, non-negative integer counters, and a
/// status object whose `kind` is one of the known outcome classes. Returns
/// the number of counters.
pub fn validate_run_report(doc: &Json) -> Result<usize, String> {
    let ctx = "run report";
    let schema = require_str(doc, "schema", ctx)?;
    if schema != "parsplu-run-report/1" {
        return Err(format!("{ctx}: unknown schema {schema:?}"));
    }
    require_str(doc, "package_version", ctx)?;
    let matrix = doc.get("matrix").ok_or("run report: missing matrix")?;
    require_str(matrix, "name", "run report.matrix")?;
    for key in ["n", "nnz"] {
        let v = require_num(matrix, key, "run report.matrix")?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("run report.matrix.{key}: bad count {v}"));
        }
    }
    let options = doc.get("options").ok_or("run report: missing options")?;
    for key in ["ordering", "task_graph", "mapping", "pivot_rule", "kernels"] {
        require_str(options, key, "run report.options")?;
    }
    for key in ["threads", "front_threads"] {
        let v = require_num(options, key, "run report.options")?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("run report.options.{key}: bad count {v}"));
        }
    }
    let phases = match doc.get("phases_s") {
        Some(Json::Obj(m)) => m,
        _ => return Err("run report: missing phases_s object".to_string()),
    };
    for (name, v) in phases {
        if !PHASE_NAMES.contains(&name.as_str()) {
            return Err(format!("run report.phases_s: unknown phase {name:?}"));
        }
        let v = v
            .as_num()
            .ok_or_else(|| format!("run report.phases_s.{name}: not a number"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("run report.phases_s.{name}: bad wall time {v}"));
        }
    }
    let counters = match doc.get("counters") {
        Some(Json::Obj(m)) => m,
        _ => return Err("run report: missing counters object".to_string()),
    };
    for (name, v) in counters {
        let v = v
            .as_num()
            .ok_or_else(|| format!("run report.counters.{name}: not a number"))?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("run report.counters.{name}: bad count {v}"));
        }
    }
    // Phase-dependent sections are null until their phase runs, but must
    // be present as keys.
    for key in ["kernel", "sched", "health", "heap"] {
        if doc.get(key).is_none() {
            return Err(format!("run report: missing field {key:?}"));
        }
    }
    if let Some(sched @ Json::Obj(_)) = doc.get("sched") {
        for key in ["nthreads", "n_tasks", "wall_s", "busy_s"] {
            require_num(sched, key, "run report.sched")?;
        }
    }
    if let Some(health @ Json::Obj(_)) = doc.get("health") {
        health
            .get("perturbed_columns")
            .and_then(Json::as_arr)
            .ok_or("run report.health: missing perturbed_columns array")?;
        require_num(health, "max_perturbation", "run report.health")?;
    }
    let status = doc.get("status").ok_or("run report: missing status")?;
    let ok = match status.get("ok") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("run report.status: missing bool ok".to_string()),
    };
    let kind = require_str(status, "kind", "run report.status")?;
    if !matches!(
        kind,
        "ok" | "cancelled" | "deadline" | "stalled" | "singular" | "panic" | "error"
    ) {
        return Err(format!("run report.status: unknown kind {kind:?}"));
    }
    if ok != (kind == "ok") {
        return Err(format!(
            "run report.status: ok={ok} inconsistent with kind {kind:?}"
        ));
    }
    Ok(counters.len())
}

/// Validates `BENCH_kernels.json`: an array of records, one per
/// kernel × op × panel shape, each carrying the op name (one of the three
/// dispatched kernels), the shape label, the kernel implementation name
/// and a strictly positive throughput plus per-call time.
pub fn validate_bench_kernels(doc: &Json) -> Result<usize, String> {
    let records = doc.as_arr().ok_or("BENCH_kernels.json: not an array")?;
    for (i, r) in records.iter().enumerate() {
        let ctx = format!("record[{i}]");
        let op = require_str(r, "op", &ctx)?;
        if !matches!(op, "gemm_sub" | "trsm_lower_unit" | "trsm_upper") {
            return Err(format!("{ctx}: bad op {op:?}"));
        }
        require_str(r, "shape", &ctx)?;
        require_str(r, "kernel", &ctx)?;
        let gflops = require_num(r, "gflops", &ctx)?;
        let secs = require_num(r, "seconds_per_call", &ctx)?;
        // NaN must fail too, so test for the valid range directly.
        if gflops <= 0.0 || secs <= 0.0 || gflops.is_nan() || secs.is_nan() {
            return Err(format!(
                "{ctx}: non-positive measurement (gflops {gflops}, seconds {secs})"
            ));
        }
    }
    Ok(records.len())
}

/// Validates `BENCH_service.json`: an array of records for the persistent
/// session service. `kind = "speedup"` rows compare a one-shot
/// factorization against `SluSession::refactor` on the same matrix
/// (`factor_s`, `refactor_s`, `speedup`, all strictly positive, with
/// `speedup` consistent with the two times); `kind = "serve"` rows report
/// the sustained serve-mode throughput (`jobs`, `jobs_per_sec`).
pub fn validate_bench_service(doc: &Json) -> Result<usize, String> {
    let records = doc.as_arr().ok_or("BENCH_service.json: not an array")?;
    for (i, r) in records.iter().enumerate() {
        let ctx = format!("record[{i}]");
        require_str(r, "matrix", &ctx)?;
        let threads = require_num(r, "threads", &ctx)?;
        if threads < 1.0 || threads.fract() != 0.0 {
            return Err(format!("{ctx}: bad threads {threads}"));
        }
        let kind = require_str(r, "kind", &ctx)?;
        match kind {
            "speedup" => {
                let factor_s = require_num(r, "factor_s", &ctx)?;
                let refactor_s = require_num(r, "refactor_s", &ctx)?;
                let speedup = require_num(r, "speedup", &ctx)?;
                if factor_s <= 0.0 || refactor_s <= 0.0 || factor_s.is_nan() || refactor_s.is_nan()
                {
                    return Err(format!(
                        "{ctx}: non-positive timing (factor_s {factor_s}, refactor_s {refactor_s})"
                    ));
                }
                let expected = factor_s / refactor_s;
                if speedup.is_nan()
                    || speedup <= 0.0
                    || (speedup - expected).abs() > 1e-3 * expected
                {
                    return Err(format!(
                        "{ctx}: speedup {speedup} inconsistent with factor_s/refactor_s {expected}"
                    ));
                }
            }
            "serve" => {
                let jobs = require_num(r, "jobs", &ctx)?;
                if jobs < 1.0 || jobs.fract() != 0.0 {
                    return Err(format!("{ctx}: bad job count {jobs}"));
                }
                let rate = require_num(r, "jobs_per_sec", &ctx)?;
                if rate.is_nan() || rate <= 0.0 {
                    return Err(format!("{ctx}: non-positive jobs_per_sec {rate}"));
                }
            }
            // Daemon throughput over a real socket at a given client
            // count; `threads` mirrors `clients` so the record key stays
            // unique under the diff tool's (matrix, threads, kind) key.
            "concurrent" => {
                let clients = require_num(r, "clients", &ctx)?;
                if clients < 1.0 || clients.fract() != 0.0 {
                    return Err(format!("{ctx}: bad client count {clients}"));
                }
                if clients != threads {
                    return Err(format!(
                        "{ctx}: clients {clients} must mirror threads {threads}"
                    ));
                }
                let jobs = require_num(r, "jobs", &ctx)?;
                if jobs < 1.0 || jobs.fract() != 0.0 {
                    return Err(format!("{ctx}: bad job count {jobs}"));
                }
                let rate = require_num(r, "jobs_per_sec", &ctx)?;
                if rate.is_nan() || rate <= 0.0 {
                    return Err(format!("{ctx}: non-positive jobs_per_sec {rate}"));
                }
            }
            // Journaled-daemon throughput with a given `--durability`
            // mode; the mode is folded into `matrix` ("suite-strict" /
            // "suite-relaxed") so the diff key (matrix, threads, kind)
            // keeps strict and relaxed rows distinct.
            "durability" => {
                let mode = require_str(r, "durability", &ctx)?;
                if !matches!(mode, "strict" | "relaxed") {
                    return Err(format!("{ctx}: bad durability mode {mode:?}"));
                }
                let matrix = require_str(r, "matrix", &ctx)?;
                if !matrix.ends_with(mode) {
                    return Err(format!(
                        "{ctx}: matrix {matrix:?} must encode the durability mode {mode:?}"
                    ));
                }
                let jobs = require_num(r, "jobs", &ctx)?;
                if jobs < 1.0 || jobs.fract() != 0.0 {
                    return Err(format!("{ctx}: bad job count {jobs}"));
                }
                let rate = require_num(r, "jobs_per_sec", &ctx)?;
                if rate.is_nan() || rate <= 0.0 {
                    return Err(format!("{ctx}: non-positive jobs_per_sec {rate}"));
                }
            }
            other => return Err(format!("{ctx}: bad kind {other:?}")),
        }
    }
    Ok(records.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5e3, "x\n\"y\"", true, null], "b": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\n\"y\""));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[4], Json::Null);
        assert_eq!(v.get("b"), Some(&Json::Obj(BTreeMap::new())));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "[1] x", "\"\\q\"", "nul"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// The benchmark artifacts committed at the repository root (when
    /// present — a fresh checkout may have regenerated or deleted them)
    /// must match the schemas this module enforces at write time. CI runs
    /// this after the bench binaries to catch partial or corrupt writes.
    #[test]
    fn committed_artifacts_match_their_schemas() {
        type Validator = fn(&Json) -> Result<usize, String>;
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        for (file, validate) in [
            ("BENCH_sched.json", validate_bench_sched as Validator),
            ("BENCH_factor.json", validate_bench_factor as Validator),
            ("BENCH_kernels.json", validate_bench_kernels as Validator),
            ("BENCH_phases.json", validate_bench_phases as Validator),
            ("BENCH_service.json", validate_bench_service as Validator),
        ] {
            let Ok(text) = std::fs::read_to_string(format!("{root}/{file}")) else {
                continue;
            };
            let doc = parse(&text).unwrap_or_else(|e| panic!("{file}: invalid JSON: {e}"));
            let n = validate(&doc).unwrap_or_else(|e| panic!("{file}: schema violation: {e}"));
            assert!(n > 0, "{file}: empty artifact");
        }
    }

    #[test]
    fn phases_validator_requires_every_phase() {
        let phases: Vec<String> = PHASE_NAMES
            .iter()
            .map(|p| format!("\"{p}\": 0.001"))
            .collect();
        let good = format!(
            "[{{\"matrix\": \"goodwin\", \"front_threads\": 8, \"kind\": \"simulated\", \
              \"phases\": {{{}}}}}]",
            phases.join(", ")
        );
        assert_eq!(validate_bench_phases(&parse(&good).unwrap()), Ok(1));
        // Dropping any single phase key must fail.
        for (drop, dropped) in PHASE_NAMES.iter().enumerate() {
            let partial: Vec<&String> = phases
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, p)| p)
                .collect();
            let bad = format!(
                "[{{\"matrix\": \"m\", \"front_threads\": 1, \"kind\": \"measured\", \
                  \"phases\": {{{}}}}}]",
                partial
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            assert!(
                validate_bench_phases(&parse(&bad).unwrap()).is_err(),
                "accepted record missing {dropped:?}"
            );
        }
        for bad in [
            // front_threads must be a positive integer.
            format!(
                "[{{\"matrix\": \"m\", \"front_threads\": 0, \"kind\": \"measured\", \
                  \"phases\": {{{}}}}}]",
                phases.join(", ")
            ),
            // kind is constrained.
            format!(
                "[{{\"matrix\": \"m\", \"front_threads\": 1, \"kind\": \"guessed\", \
                  \"phases\": {{{}}}}}]",
                phases.join(", ")
            ),
            // Wall times must be non-negative.
            format!(
                "[{{\"matrix\": \"m\", \"front_threads\": 1, \"kind\": \"measured\", \
                  \"phases\": {{{}, \"parse\": -1.0}}}}]",
                phases.join(", ")
            ),
        ] {
            assert!(
                validate_bench_phases(&parse(&bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn kernels_validator_rejects_bad_records() {
        let good = r#"[{"op": "gemm_sub", "shape": "64x16x16", "kernel": "portable",
                        "gflops": 5.2, "seconds_per_call": 1e-6}]"#;
        assert_eq!(validate_bench_kernels(&parse(good).unwrap()), Ok(1));
        for bad in [
            r#"[{"op": "gemm", "shape": "s", "kernel": "portable", "gflops": 1.0,
                 "seconds_per_call": 1e-6}]"#,
            r#"[{"op": "gemm_sub", "shape": "s", "kernel": "portable", "gflops": 0.0,
                 "seconds_per_call": 1e-6}]"#,
            r#"[{"op": "gemm_sub", "shape": "s", "gflops": 1.0, "seconds_per_call": 1e-6}]"#,
        ] {
            assert!(
                validate_bench_kernels(&parse(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn service_validator_checks_both_record_kinds() {
        let good = r#"[
            {"matrix": "m", "threads": 2, "kind": "speedup",
             "factor_s": 0.04, "refactor_s": 0.02, "speedup": 2.0},
            {"matrix": "m", "threads": 4, "kind": "serve",
             "jobs": 120, "jobs_per_sec": 37.5},
            {"matrix": "suite", "threads": 16, "kind": "concurrent",
             "clients": 16, "jobs": 512, "jobs_per_sec": 88.0},
            {"matrix": "suite-strict", "threads": 4, "kind": "durability",
             "durability": "strict", "jobs": 256, "jobs_per_sec": 41.0},
            {"matrix": "suite-relaxed", "threads": 4, "kind": "durability",
             "durability": "relaxed", "jobs": 256, "jobs_per_sec": 55.0}
        ]"#;
        assert_eq!(validate_bench_service(&parse(good).unwrap()), Ok(5));
        for bad in [
            // Unknown kind.
            r#"[{"matrix": "m", "threads": 1, "kind": "warmup",
                 "factor_s": 1.0, "refactor_s": 0.5, "speedup": 2.0}]"#,
            // Speedup inconsistent with the two timings.
            r#"[{"matrix": "m", "threads": 1, "kind": "speedup",
                 "factor_s": 1.0, "refactor_s": 0.5, "speedup": 3.0}]"#,
            // Non-positive timing.
            r#"[{"matrix": "m", "threads": 1, "kind": "speedup",
                 "factor_s": 0.0, "refactor_s": 0.5, "speedup": 0.0}]"#,
            // Serve rows need a throughput.
            r#"[{"matrix": "m", "threads": 1, "kind": "serve", "jobs": 10}]"#,
            // Fractional thread counts are nonsense.
            r#"[{"matrix": "m", "threads": 1.5, "kind": "serve",
                 "jobs": 10, "jobs_per_sec": 5.0}]"#,
            // Concurrent rows need the client count...
            r#"[{"matrix": "suite", "threads": 4, "kind": "concurrent",
                 "jobs": 10, "jobs_per_sec": 5.0}]"#,
            // ...which must mirror threads (the diff key)...
            r#"[{"matrix": "suite", "threads": 4, "kind": "concurrent",
                 "clients": 8, "jobs": 10, "jobs_per_sec": 5.0}]"#,
            // ...and a positive throughput.
            r#"[{"matrix": "suite", "threads": 4, "kind": "concurrent",
                 "clients": 4, "jobs": 10, "jobs_per_sec": 0.0}]"#,
            // Durability rows need a known mode...
            r#"[{"matrix": "suite-paranoid", "threads": 4, "kind": "durability",
                 "durability": "paranoid", "jobs": 10, "jobs_per_sec": 5.0}]"#,
            // ...encoded in the matrix name (the diff key).
            r#"[{"matrix": "suite", "threads": 4, "kind": "durability",
                 "durability": "strict", "jobs": 10, "jobs_per_sec": 5.0}]"#,
        ] {
            assert!(
                validate_bench_service(&parse(bad).unwrap()).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn factor_validator_requires_the_kernel_field() {
        let with = r#"[{"matrix": "m", "threads": 2, "mapping": "static1d",
                        "kind": "measured", "kernel": "portable",
                        "median_seconds": 0.5}]"#;
        assert_eq!(validate_bench_factor(&parse(with).unwrap()), Ok(1));
        let without = r#"[{"matrix": "m", "threads": 2, "mapping": "static1d",
                           "kind": "measured", "median_seconds": 0.5}]"#;
        assert!(validate_bench_factor(&parse(without).unwrap()).is_err());
    }

    #[test]
    fn chrome_validator_requires_monotone_per_tid() {
        let good = r#"{"traceEvents": [
            {"ph": "X", "name": "a", "tid": 0, "ts": 1.0, "dur": 2.0},
            {"ph": "X", "name": "b", "tid": 1, "ts": 0.5, "dur": 1.0},
            {"ph": "X", "name": "c", "tid": 0, "ts": 3.0, "dur": 0.0}
        ]}"#;
        assert_eq!(validate_chrome_trace(&parse(good).unwrap()), Ok(3));
        let bad = r#"{"traceEvents": [
            {"ph": "X", "name": "a", "tid": 0, "ts": 5.0, "dur": 2.0},
            {"ph": "X", "name": "b", "tid": 0, "ts": 1.0, "dur": 1.0}
        ]}"#;
        assert!(validate_chrome_trace(&parse(bad).unwrap()).is_err());
    }
}
