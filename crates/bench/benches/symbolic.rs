//! Criterion bench: the symbolic phases (transversal, minimum degree,
//! static symbolic factorization, postorder, supernode detection) on a
//! mid-size benchmark matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use splu_matgen::{paper_matrix, Scale};
use splu_ordering::{
    column_min_degree, maximum_transversal, reverse_cuthill_mckee, StructuralRank,
};
use splu_sparse::Permutation;
use splu_symbolic::{
    amalgamate, postorder_permutation, static_symbolic_factorization, supernode_partition,
    SupernodeOptions,
};
use std::time::Duration;

fn bench_symbolic(c: &mut Criterion) {
    let a = paper_matrix("orsreg1", Scale::Full).expect("known matrix");
    let p = a.pattern().clone();
    let rp = match maximum_transversal(&p) {
        StructuralRank::Full(x) => x,
        _ => unreachable!("orsreg1 analogue is structurally nonsingular"),
    };
    let p1 = p.permuted(&rp, &Permutation::identity(p.ncols()));
    let q = column_min_degree(&p1);
    let p2 = p1.permuted(&q, &q);
    let filled = static_symbolic_factorization(&p2).expect("zero-free diagonal");

    let mut g = c.benchmark_group("symbolic_orsreg1");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("transversal", |b| b.iter(|| maximum_transversal(&p)));
    g.bench_function("min_degree_ata", |b| b.iter(|| column_min_degree(&p1)));
    g.bench_function("rcm", |b| b.iter(|| reverse_cuthill_mckee(&p1)));
    g.bench_function("static_factorization", |b| {
        b.iter(|| static_symbolic_factorization(&p2).expect("valid"))
    });
    g.bench_function("postorder", |b| b.iter(|| postorder_permutation(&filled)));
    g.bench_function("supernodes_and_amalgamation", |b| {
        b.iter(|| {
            let part = supernode_partition(&filled);
            amalgamate(&filled, &part, &SupernodeOptions::default())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_symbolic);
criterion_main!(benches);
