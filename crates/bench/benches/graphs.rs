//! Criterion bench: S* vs eforest task graph at 2 worker threads — the
//! microbenchmark behind Figures 5–6.

use criterion::{criterion_group, criterion_main, Criterion};
use splu_bench::prepare_suite;
use splu_sched::Mapping;
use std::time::Duration;

fn bench_graphs(c: &mut Criterion) {
    let prepared = prepare_suite();
    let picks = ["sherman3", "orsreg1", "goodwin"];
    let mut g = c.benchmark_group("task_graph_p2");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for p in prepared.iter().filter(|p| picks.contains(&p.name)) {
        g.bench_function(format!("{}/sstar", p.name), |b| {
            b.iter(|| {
                p.sym
                    .factor_numeric_permuted(&p.permuted, &p.sstar, 2, Mapping::Static1D, 0.0)
                    .expect("factorization succeeds")
            })
        });
        g.bench_function(format!("{}/eforest", p.name), |b| {
            b.iter(|| {
                p.sym
                    .factor_numeric_permuted(&p.permuted, &p.eforest, 2, Mapping::Static1D, 0.0)
                    .expect("factorization succeeds")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_graphs);
criterion_main!(benches);
