//! Criterion bench: triangular solve and iterative refinement against the
//! factorization cost (step 4 of the paper's pipeline).

use criterion::{criterion_group, criterion_main, Criterion};
use splu_core::{Options, SparseLu};
use splu_matgen::{manufactured_rhs, paper_matrix, Scale};
use std::time::Duration;

fn bench_solve(c: &mut Criterion) {
    let a = paper_matrix("saylr4", Scale::Full).expect("known matrix");
    let lu = SparseLu::factor(&a, &Options::default()).expect("factors");
    let (_, b) = manufactured_rhs(&a, 11);
    let mut g = c.benchmark_group("solve_saylr4");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g.bench_function("forward_backward", |bch| bch.iter(|| lu.solve(&b)));
    g.bench_function("transpose", |bch| bch.iter(|| lu.solve_transposed(&b)));
    g.bench_function("refined_1step", |bch| {
        bch.iter(|| lu.solve_refined(&a, &b, 0.0, 1))
    });
    let nrhs = 8;
    let bm: Vec<f64> = (0..a.ncols() * nrhs)
        .map(|i| ((i % 13) as f64) - 6.0)
        .collect();
    g.bench_function("multi_rhs_8", |bch| bch.iter(|| lu.solve_many(&bm, nrhs)));
    g.finish();
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
