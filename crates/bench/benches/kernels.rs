//! Criterion bench: the dense kernel substrate (`gemm_sub`, `trsm`,
//! `lu_panel`) at supernode-typical sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use splu_dense::{gemm_sub, lu_panel, trsm_lower_unit, DenseMat};
use std::time::Duration;

fn mat(r: usize, c: usize, seed: u64) -> DenseMat {
    // Deterministic pseudo-random fill without pulling rand into the bench.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    DenseMat::from_fn(r, c, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2000) as f64 / 1000.0 - 1.0
    })
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("dense_kernels");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for &(m, k, n) in &[(64usize, 16usize, 16usize), (256, 32, 32), (512, 48, 48)] {
        let a = mat(m, k, 1);
        let b = mat(k, n, 2);
        let c0 = mat(m, n, 3);
        g.bench_function(format!("gemm_sub/{m}x{k}x{n}"), |bch| {
            bch.iter_batched(
                || c0.clone(),
                |mut cc| gemm_sub(&mut cc, &a, &b),
                criterion::BatchSize::SmallInput,
            )
        });
    }

    for &(n, rhs) in &[(16usize, 16usize), (48, 48), (96, 32)] {
        let l = mat(n, n, 4);
        let x0 = mat(n, rhs, 5);
        g.bench_function(format!("trsm_lower_unit/{n}x{rhs}"), |bch| {
            bch.iter_batched(
                || x0.clone(),
                |mut x| trsm_lower_unit(&l, &mut x),
                criterion::BatchSize::SmallInput,
            )
        });
    }

    for &(m, w) in &[(64usize, 16usize), (256, 32), (512, 48)] {
        let p0 = {
            let mut p = mat(m, w, 6);
            // Boost the diagonal so the panel is never singular.
            for c in 0..w {
                p[(c, c)] += 4.0;
            }
            p
        };
        g.bench_function(format!("lu_panel/{m}x{w}"), |bch| {
            bch.iter_batched(
                || p0.clone(),
                |mut p| lu_panel(&mut p, 0.0).expect("nonsingular"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
