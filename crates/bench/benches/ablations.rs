//! Criterion bench: ablations of the design choices DESIGN.md §6 calls out
//! — postordering on/off, amalgamation on/off, static vs dynamic mapping,
//! and the Gilbert–Peierls baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use splu_core::{analyze, gp::gp_factor, Options, TaskGraphKind};
use splu_matgen::{paper_matrix, Scale};
use splu_sched::Mapping;
use splu_symbolic::SupernodeOptions;
use std::time::Duration;

fn bench_ablations(c: &mut Criterion) {
    let a = paper_matrix("orsreg1", Scale::Full).expect("known matrix");
    let mut g = c.benchmark_group("ablations_orsreg1");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let configs: [(&str, Options); 4] = [
        ("default", Options::default()),
        (
            "no_postorder",
            Options {
                postorder: false,
                ..Options::default()
            },
        ),
        (
            "no_amalgamation",
            Options {
                amalgamation: None,
                ..Options::default()
            },
        ),
        (
            "wide_amalgamation",
            Options {
                amalgamation: Some(SupernodeOptions {
                    max_width: 96,
                    rel_fill: 0.5,
                }),
                ..Options::default()
            },
        ),
    ];
    for (label, opts) in configs {
        let sym = analyze(a.pattern(), &opts).expect("analysis succeeds");
        let permuted = sym.permute_matrix(&a);
        let graph = sym.build_graph(TaskGraphKind::EForest);
        g.bench_function(format!("numeric/{label}"), |b| {
            b.iter(|| {
                sym.factor_numeric_permuted(&permuted, &graph, 1, Mapping::Static1D, 0.0)
                    .expect("factorization succeeds")
            })
        });
    }

    // Mapping ablation at 2 threads.
    {
        let sym = analyze(a.pattern(), &Options::default()).expect("analysis succeeds");
        let permuted = sym.permute_matrix(&a);
        let graph = sym.build_graph(TaskGraphKind::EForest);
        for (label, mapping) in [
            ("static1d", Mapping::Static1D),
            ("dynamic", Mapping::Dynamic),
        ] {
            g.bench_function(format!("mapping_p2/{label}"), |b| {
                b.iter(|| {
                    sym.factor_numeric_permuted(&permuted, &graph, 2, mapping, 0.0)
                        .expect("factorization succeeds")
                })
            });
        }
    }

    // Baseline: Gilbert–Peierls (dynamic structure, no supernodes).
    g.bench_function("baseline/gilbert_peierls", |b| {
        b.iter(|| gp_factor(&a, 0.0).expect("factorization succeeds"))
    });

    // Discipline ablation: right-looking (graph-driven) vs left-looking.
    {
        use splu_core::{factor_left_looking, factor_numeric_with, BlockMatrix, NumericRequest};
        let sym = analyze(a.pattern(), &Options::default()).expect("analysis succeeds");
        let permuted = sym.permute_matrix(&a);
        let graph = sym.build_graph(TaskGraphKind::EForest);
        let mut bm = BlockMatrix::assemble(&permuted, &sym.block_structure);
        let req = NumericRequest::coarse(&graph, Mapping::Static1D);
        g.bench_function("discipline/right_looking", |b| {
            b.iter(|| {
                bm.reset_from(&permuted, &sym.block_structure);
                factor_numeric_with(&bm, &req).expect("ok")
            })
        });
        g.bench_function("discipline/left_looking", |b| {
            b.iter(|| {
                bm.reset_from(&permuted, &sym.block_structure);
                factor_left_looking(&bm, 0.0).expect("ok")
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
