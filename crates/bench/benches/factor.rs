//! Criterion bench: numerical factorization time per benchmark matrix
//! (sequential, eforest graph) — the microbenchmark behind Table 2's P=1
//! column.

use criterion::{criterion_group, criterion_main, Criterion};
use splu_bench::prepare_suite;
use splu_sched::Mapping;
use std::time::Duration;

fn bench_factor(c: &mut Criterion) {
    let prepared = prepare_suite();
    let mut g = c.benchmark_group("factor_seq");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for p in &prepared {
        g.bench_function(p.name, |b| {
            b.iter(|| {
                p.sym
                    .factor_numeric_permuted(&p.permuted, &p.eforest, 1, Mapping::Static1D, 0.0)
                    .expect("factorization succeeds")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_factor);
criterion_main!(benches);
