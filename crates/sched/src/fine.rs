//! Fine-grained (2D-ready) task decomposition — the paper's future work.
//!
//! Section 6 lists "extend our methods for a 2D partitioning of the matrix"
//! as future work (realized later in S+). This module explores that
//! direction at the scheduling level: each `Update(k, j)` is split into
//!
//! * `Apply(k, j)` — apply `Factor(k)`'s pivot interchanges to column `j`;
//! * `Trsm(k, j)` — compute `Ū(k, j) = L(k, k)⁻¹ B̄(k, j)`;
//! * `Gemm(k, j, i)` — one Schur update `B̄(i, j) −= L(i, k)·Ū(k, j)` per
//!   destination block row,
//!
//! so that the work of one destination column can spread over a whole
//! processor-grid column instead of a single 1D owner. The dependence rules
//! lift from Section 4: per destination, sources are chained along the
//! block eforest (`parent`), and the chain into `F(k)` closes the panel.
//!
//! The decomposition is evaluated with the deterministic list-scheduling
//! simulator under a 1D column or 2D block-cyclic owner map (`twod`
//! benchmark binary); the numerical executor keeps the paper's 1D
//! column-task granularity.

use crate::simulate::{CostModel, SimResult};
use crate::EliminationForest;
use splu_symbolic::supernode::BlockStructure;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A task of the fine decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FineTask {
    /// Factor block column `k` (panel LU with pivoting).
    Factor(usize),
    /// Apply `k`'s pivot interchanges to block column `j`.
    Apply {
        /// Source (factored) block column.
        src: usize,
        /// Destination block column.
        dst: usize,
    },
    /// Compute `Ū(src, dst)` by a triangular solve.
    Trsm {
        /// Source (factored) block column.
        src: usize,
        /// Destination block column.
        dst: usize,
    },
    /// One Schur update into block `(row, dst)`.
    Gemm {
        /// Source (factored) block column.
        src: usize,
        /// Destination block column.
        dst: usize,
        /// Destination block row.
        row: usize,
    },
}

/// Processor-grid shapes for owner mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grid {
    /// The paper's 1D mapping: all tasks of block column `j` on `j mod P`.
    OneD(usize),
    /// A 2D block-cyclic grid: task on block `(i, j)` runs on
    /// `(i mod pr) · pc + (j mod pc)`.
    TwoD(usize, usize),
}

impl Grid {
    /// Total processor count.
    pub fn nprocs(&self) -> usize {
        match *self {
            Grid::OneD(p) => p.max(1),
            Grid::TwoD(pr, pc) => (pr * pc).max(1),
        }
    }

    /// Owner of a task touching block `(i, j)`.
    fn owner(&self, i: usize, j: usize) -> usize {
        match *self {
            Grid::OneD(p) => j % p.max(1),
            Grid::TwoD(pr, pc) => (i % pr.max(1)) * pc.max(1) + (j % pc.max(1)),
        }
    }

    /// Owner of a fine task (by the block it writes).
    pub fn owner_of(&self, t: FineTask) -> usize {
        match t {
            FineTask::Factor(k) => self.owner(k, k),
            FineTask::Apply { src, dst } | FineTask::Trsm { src, dst } => self.owner(src, dst),
            FineTask::Gemm { dst, row, .. } => self.owner(row, dst),
        }
    }
}

/// The fine-grained dependence graph.
#[derive(Debug, Clone)]
pub struct FineGraph {
    tasks: Vec<FineTask>,
    succ: Vec<Vec<usize>>,
    pred_count: Vec<usize>,
}

impl FineGraph {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// All tasks by id.
    pub fn tasks(&self) -> &[FineTask] {
        &self.tasks
    }

    /// Successors of a task.
    pub fn successors(&self, id: usize) -> &[usize] {
        &self.succ[id]
    }

    /// In-degree of each task.
    pub fn pred_counts(&self) -> &[usize] {
        &self.pred_count
    }

    /// Longest path in tasks (unit weights).
    pub fn critical_path_len(&self) -> usize {
        let mut indeg = self.pred_count.clone();
        let mut queue: std::collections::VecDeque<usize> =
            (0..self.len()).filter(|&t| indeg[t] == 0).collect();
        let mut depth = vec![1usize; self.len()];
        let mut best = 0usize;
        let mut seen = 0usize;
        while let Some(t) = queue.pop_front() {
            seen += 1;
            best = best.max(depth[t]);
            for &s in &self.succ[t] {
                depth[s] = depth[s].max(depth[t] + 1);
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        assert_eq!(seen, self.len(), "cycle in fine graph");
        best
    }
}

/// Builds the fine-grained graph from a block structure and its eforest,
/// following the Section 4 rules lifted to the split tasks.
pub fn build_fine_graph(bs: &BlockStructure, forest: &EliminationForest) -> FineGraph {
    let nb = bs.num_blocks();
    let mut tasks = Vec::new();
    let mut succ: Vec<Vec<usize>> = Vec::new();
    let mut pred_count: Vec<usize> = Vec::new();
    let add = |tasks: &mut Vec<FineTask>,
               succ: &mut Vec<Vec<usize>>,
               pred_count: &mut Vec<usize>,
               t: FineTask| {
        tasks.push(t);
        succ.push(Vec::new());
        pred_count.push(0);
        tasks.len() - 1
    };
    let mut factor_id = vec![usize::MAX; nb];
    for k in 0..nb {
        factor_id[k] = add(&mut tasks, &mut succ, &mut pred_count, FineTask::Factor(k));
    }
    // Per (src, dst): ids of the stage tasks.
    // entry_ids[src] = list of (dst, apply, trsm, gemm ids...)
    struct Stages {
        dst: usize,
        apply: usize,
        trsm: usize,
        gemms: Vec<usize>,
    }
    let mut stages: Vec<Vec<Stages>> = (0..nb).map(|_| Vec::new()).collect();
    let edge = |succ: &mut Vec<Vec<usize>>, pred_count: &mut Vec<usize>, a: usize, b: usize| {
        succ[a].push(b);
        pred_count[b] += 1;
    };
    for k in 0..nb {
        for &j in bs.u_blocks[k].iter().skip(1) {
            let apply = add(
                &mut tasks,
                &mut succ,
                &mut pred_count,
                FineTask::Apply { src: k, dst: j },
            );
            let trsm = add(
                &mut tasks,
                &mut succ,
                &mut pred_count,
                FineTask::Trsm { src: k, dst: j },
            );
            edge(&mut succ, &mut pred_count, factor_id[k], apply);
            edge(&mut succ, &mut pred_count, apply, trsm);
            let mut gemms = Vec::new();
            for &i in bs.l_blocks[k].iter().skip(1) {
                // Destination block (i, j) may be structurally absent; the
                // contribution is then exactly zero (see splu-core) and no
                // task is needed.
                if bs.block_nonzero(i, j) {
                    let g = add(
                        &mut tasks,
                        &mut succ,
                        &mut pred_count,
                        FineTask::Gemm {
                            src: k,
                            dst: j,
                            row: i,
                        },
                    );
                    edge(&mut succ, &mut pred_count, trsm, g);
                    gemms.push(g);
                }
            }
            stages[k].push(Stages {
                dst: j,
                apply,
                trsm,
                gemms,
            });
        }
    }
    // Chain per destination along the eforest, and close into Factor.
    for i in 0..nb {
        for s in &stages[i] {
            let k = s.dst;
            match forest.parent(i) {
                Some(p) if p == k => {
                    // All of source i's work into k precedes F(k).
                    edge(&mut succ, &mut pred_count, s.trsm, factor_id[k]);
                    for &g in &s.gemms {
                        edge(&mut succ, &mut pred_count, g, factor_id[k]);
                    }
                }
                Some(p) => {
                    // Find parent's Apply into the same destination.
                    let target = stages[p]
                        .iter()
                        .find(|t| t.dst == k)
                        .unwrap_or_else(|| {
                            panic!("Theorem 1 violated at block level: U({p},{k}) missing")
                        })
                        .apply;
                    edge(&mut succ, &mut pred_count, s.trsm, target);
                    for &g in &s.gemms {
                        edge(&mut succ, &mut pred_count, g, target);
                    }
                }
                None => {}
            }
        }
    }
    FineGraph {
        tasks,
        succ,
        pred_count,
    }
}

/// Per-task time for the fine decomposition under a grid and model.
fn fine_task_time(bs: &BlockStructure, grid: &Grid, model: &CostModel, t: FineTask) -> f64 {
    let w = |b: usize| bs.partition.width(b) as f64;
    let stack_height = |k: usize| -> f64 {
        bs.l_blocks[k]
            .iter()
            .map(|&ib| bs.partition.width(ib))
            .sum::<usize>() as f64
    };
    let remote = |a: (usize, usize), b: (usize, usize)| -> bool {
        grid.nprocs() > 1 && grid.owner(a.0, a.1) != grid.owner(b.0, b.1)
    };
    match t {
        FineTask::Factor(k) => {
            let m = stack_height(k);
            let wk = w(k);
            let mut flops = 0.0;
            let mut c = 0.0;
            while c < wk {
                flops += (m - c - 1.0).max(0.0) * (1.0 + 2.0 * (wk - c - 1.0).max(0.0));
                c += 1.0;
            }
            // Under a 2D grid the panel is spread over a grid column; the
            // pivot search serializes but the update spreads. Model the
            // extra coordination as comm proportional to the panel height.
            let comm = match grid {
                Grid::OneD(_) => 0.0,
                Grid::TwoD(pr, _) if *pr > 1 => m * model.seconds_per_word,
                Grid::TwoD(..) => 0.0,
            };
            model.task_overhead + flops * model.seconds_per_flop + comm
        }
        FineTask::Apply { src, dst } => {
            let wk = w(src);
            let wj = w(dst);
            let comm = if remote((src, src), (src, dst)) {
                wk * model.seconds_per_word
            } else {
                0.0
            };
            model.task_overhead + wk * wj * model.seconds_per_flop + comm
        }
        FineTask::Trsm { src, dst } => {
            let wk = w(src);
            let wj = w(dst);
            let comm = if remote((src, src), (src, dst)) {
                wk * wk * model.seconds_per_word
            } else {
                0.0
            };
            model.task_overhead + wk * (wk - 1.0) * wj * model.seconds_per_flop + comm
        }
        FineTask::Gemm { src, dst, row } => {
            let wk = w(src);
            let wj = w(dst);
            let wi = w(row);
            let mut comm = 0.0;
            if remote((row, src), (row, dst)) {
                comm += wi * wk * model.seconds_per_word; // L(i, k)
            }
            if remote((src, dst), (row, dst)) {
                comm += wk * wj * model.seconds_per_word; // Ū(k, j)
            }
            model.task_overhead + 2.0 * wi * wk * wj * model.seconds_per_flop + comm
        }
    }
}

/// f64 ordering key for the ready heap.
#[derive(PartialEq)]
struct Key(f64, usize);

impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

/// Simulates the fine graph on the given processor grid (list scheduling,
/// owner-mapped, with cross-owner edge latency — the same discipline as
/// [`crate::simulate`]).
pub fn simulate_fine(
    fg: &FineGraph,
    bs: &BlockStructure,
    grid: Grid,
    model: &CostModel,
) -> SimResult {
    let nprocs = grid.nprocs();
    let owners: Vec<usize> = fg.tasks.iter().map(|&t| grid.owner_of(t)).collect();
    let times: Vec<f64> = fg
        .tasks
        .iter()
        .map(|&t| fine_task_time(bs, &grid, model, t))
        .collect();

    let mut indeg = fg.pred_count.clone();
    let mut ready_time = vec![0.0_f64; fg.len()];
    let mut proc_free = vec![0.0_f64; nprocs];
    let mut heap: BinaryHeap<Reverse<Key>> = (0..fg.len())
        .filter(|&t| indeg[t] == 0)
        .map(|t| Reverse(Key(0.0, t)))
        .collect();
    let mut busy = vec![0.0_f64; nprocs];
    let mut total_work = 0.0;
    let mut makespan = 0.0_f64;
    let mut scheduled = 0usize;
    while let Some(Reverse(Key(ready, t))) = heap.pop() {
        scheduled += 1;
        let p = owners[t];
        let start = ready.max(proc_free[p]);
        let finish = start + times[t];
        proc_free[p] = finish;
        busy[p] += times[t];
        total_work += times[t];
        makespan = makespan.max(finish);
        for &s in fg.successors(t) {
            let visible = if owners[s] != p && nprocs > 1 {
                finish + model.edge_latency
            } else {
                finish
            };
            ready_time[s] = ready_time[s].max(visible);
            indeg[s] -= 1;
            if indeg[s] == 0 {
                heap.push(Reverse(Key(ready_time[s], s)));
            }
        }
    }
    assert_eq!(scheduled, fg.len(), "cycle in fine graph");
    SimResult {
        makespan,
        total_work,
        busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{block_forest, build_eforest_graph};
    use splu_sparse::SparsityPattern;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::{supernode_partition, BlockStructure};

    fn structure(n: usize, extra: usize, seed: u64) -> BlockStructure {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for _ in 0..extra {
            entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        let p = SparsityPattern::from_entries(n, n, entries).unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let part = supernode_partition(&f);
        BlockStructure::new(&f, part)
    }

    #[test]
    fn fine_graph_is_acyclic_and_has_more_tasks() {
        for seed in 0..6 {
            let bs = structure(25, 55, seed);
            let forest = block_forest(&bs);
            let fg = build_fine_graph(&bs, &forest);
            let coarse = build_eforest_graph(&bs);
            assert!(fg.len() >= coarse.len(), "fine splits tasks");
            let _ = fg.critical_path_len(); // panics on a cycle
            assert!(!fg.is_empty());
            assert!(fg.num_edges() >= coarse.num_edges());
        }
    }

    #[test]
    fn fine_serial_simulation_is_consistent() {
        let bs = structure(20, 45, 3);
        let forest = block_forest(&bs);
        let fg = build_fine_graph(&bs, &forest);
        let model = CostModel {
            seconds_per_flop: 1.0,
            seconds_per_word: 0.0,
            task_overhead: 0.0,
            edge_latency: 0.0,
        };
        let r1 = simulate_fine(&fg, &bs, Grid::OneD(1), &model);
        assert!((r1.makespan - r1.total_work).abs() < 1e-9);
    }

    #[test]
    fn more_processors_do_not_slow_the_fine_schedule() {
        let bs = structure(30, 70, 5);
        let forest = block_forest(&bs);
        let fg = build_fine_graph(&bs, &forest);
        let model = CostModel {
            seconds_per_flop: 1.0,
            seconds_per_word: 0.0,
            task_overhead: 0.1,
            edge_latency: 0.0,
        };
        let r1 = simulate_fine(&fg, &bs, Grid::OneD(1), &model);
        let r4 = simulate_fine(&fg, &bs, Grid::TwoD(2, 2), &model);
        assert!(r4.makespan <= r1.makespan + 1e-9);
    }

    #[test]
    fn grid_owner_mapping_is_within_bounds() {
        let g = Grid::TwoD(3, 4);
        assert_eq!(g.nprocs(), 12);
        for i in 0..10 {
            for j in 0..10 {
                assert!(g.owner(i, j) < 12);
            }
        }
        assert_eq!(Grid::OneD(4).nprocs(), 4);
        assert_eq!(
            Grid::OneD(4).owner_of(FineTask::Gemm {
                src: 0,
                dst: 6,
                row: 9
            }),
            2
        );
    }

    #[test]
    fn factor_tasks_precede_their_stages() {
        let bs = structure(18, 40, 9);
        let forest = block_forest(&bs);
        let fg = build_fine_graph(&bs, &forest);
        // For every Apply(src, dst), Factor(src) must reach it.
        let mut factor_pos = std::collections::HashMap::new();
        for (id, t) in fg.tasks().iter().enumerate() {
            if let FineTask::Factor(k) = *t {
                factor_pos.insert(k, id);
            }
        }
        for (id, t) in fg.tasks().iter().enumerate() {
            if let FineTask::Apply { src, .. } = *t {
                let f = factor_pos[&src];
                assert!(
                    fg.successors(f).contains(&id),
                    "Factor({src}) must directly precede Apply"
                );
            }
        }
    }
}
