//! Bounded work lanes for long-running services.
//!
//! A [`Lane`] is a bounded multi-producer/single-consumer (or
//! multi-consumer — nothing forbids it) queue with *rejection* semantics:
//! a full lane refuses the item immediately instead of blocking or
//! growing, so a service built on lanes converts overload into a
//! structured response to the client rather than unbounded buffering.
//! This is the queueing half of the serve daemon's backpressure story
//! (DESIGN.md §5.4); the scheduler's own executors keep their unbounded
//! ready queues ([`crate::sync::ReadyQueue`]) because a factorization's
//! task count is known and finite.
//!
//! Lanes track their instantaneous depth and a high-water mark
//! ([`Lane::peak_depth`]) so the daemon can export peak queue depth as a
//! gated metric, and they support cooperative shutdown: [`Lane::close`]
//! wakes every blocked consumer, which then drain the remaining items and
//! observe `None`. Closing never discards accepted work — graceful
//! shutdown runs the queue dry first.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Why a [`Lane::try_push`] refused an item. The item rides back to the
/// caller so a rejection response can still describe the job.
#[derive(Debug)]
pub enum LaneRejected<T> {
    /// The lane held `capacity` items already; `depth` is that capacity
    /// (the queue depth the rejected client observed).
    Full {
        /// The refused item, returned to the caller.
        item: T,
        /// Queue depth at rejection time (== capacity).
        depth: usize,
    },
    /// The lane was closed: the service is draining and accepts no new
    /// work.
    Closed {
        /// The refused item, returned to the caller.
        item: T,
    },
}

struct LaneState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded, close-able job queue. See the [module docs](self).
pub struct Lane<T> {
    state: Mutex<LaneState<T>>,
    available: Condvar,
    capacity: usize,
    peak: AtomicUsize,
}

impl<T> Lane<T> {
    /// A lane accepting at most `capacity` queued items (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        Lane {
            state: Mutex::new(LaneState {
                queue: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            peak: AtomicUsize::new(0),
        }
    }

    /// Enqueues `item`, or refuses it immediately when the lane is full or
    /// closed. On success returns the depth *after* the push (for peak
    /// accounting on the caller's side too).
    pub fn try_push(&self, item: T) -> Result<usize, LaneRejected<T>> {
        let mut s = self.state.lock();
        if s.closed {
            return Err(LaneRejected::Closed { item });
        }
        if s.queue.len() >= self.capacity {
            return Err(LaneRejected::Full {
                item,
                depth: s.queue.len(),
            });
        }
        s.queue.push_back(item);
        let depth = s.queue.len();
        drop(s);
        self.peak.fetch_max(depth, Ordering::Relaxed);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available (returning it) or the lane is
    /// closed **and drained** (returning `None`). A closed lane still
    /// yields its queued items: accepted work is never dropped.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock();
        loop {
            if let Some(item) = s.queue.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            self.available.wait(&mut s);
        }
    }

    /// Closes the lane: future pushes are refused, and consumers drain the
    /// queue then observe `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.available.notify_all();
    }

    /// Instantaneous queue depth.
    pub fn depth(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// High-water mark of the queue depth since construction.
    pub fn peak_depth(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// The bound this lane enforces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_and_depth() {
        let lane = Lane::new(3);
        assert_eq!(lane.try_push(1).unwrap(), 1);
        assert_eq!(lane.try_push(2).unwrap(), 2);
        assert_eq!(lane.depth(), 2);
        assert_eq!(lane.pop(), Some(1));
        assert_eq!(lane.pop(), Some(2));
        assert_eq!(lane.depth(), 0);
        assert_eq!(lane.peak_depth(), 2);
    }

    #[test]
    fn full_lane_rejects_with_depth() {
        let lane = Lane::new(2);
        lane.try_push("a").unwrap();
        lane.try_push("b").unwrap();
        match lane.try_push("c") {
            Err(LaneRejected::Full { item, depth }) => {
                assert_eq!(item, "c");
                assert_eq!(depth, 2);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        // Draining one slot re-admits work.
        assert_eq!(lane.pop(), Some("a"));
        lane.try_push("c").unwrap();
    }

    #[test]
    fn close_wakes_consumers_and_drains_accepted_work() {
        let lane = Arc::new(Lane::new(4));
        lane.try_push(7).unwrap();
        lane.try_push(8).unwrap();
        lane.close();
        match lane.try_push(9) {
            Err(LaneRejected::Closed { item }) => assert_eq!(item, 9),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Accepted items still come out, then None forever.
        assert_eq!(lane.pop(), Some(7));
        assert_eq!(lane.pop(), Some(8));
        assert_eq!(lane.pop(), None);
        assert_eq!(lane.pop(), None);
    }

    #[test]
    fn blocked_consumer_is_released_by_close() {
        let lane = Arc::new(Lane::<u32>::new(1));
        let consumer = {
            let lane = Arc::clone(&lane);
            std::thread::spawn(move || lane.pop())
        };
        // Give the consumer a moment to park, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        lane.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_never_exceed_capacity() {
        let lane = Arc::new(Lane::new(8));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let lane = Arc::clone(&lane);
                std::thread::spawn(move || {
                    let mut accepted = 0usize;
                    for i in 0..100 {
                        if lane.try_push(p * 1000 + i).is_ok() {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            })
            .collect();
        let consumer = {
            let lane = Arc::clone(&lane);
            std::thread::spawn(move || {
                let mut got = 0usize;
                while lane.pop().is_some() {
                    got += 1;
                }
                got
            })
        };
        let accepted: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
        lane.close();
        let consumed = consumer.join().unwrap();
        assert_eq!(accepted, consumed, "every accepted item is consumed");
        assert!(
            lane.peak_depth() <= 8,
            "peak {} > capacity",
            lane.peak_depth()
        );
    }
}
