//! Cached executor schedules for repeated factorizations.
//!
//! A solver session factors the same task graph many times (numeric
//! refactorization with unchanged structure). The executor's per-run
//! preparation — bottom-level priorities and, for a single worker, the
//! whole acquisition order — depends only on the graph, so a session
//! computes it once as an [`ExecSchedule`] and replays it:
//!
//! * [`execute_seq_budgeted`] consumes the precomputed sequential order
//!   **inline on the calling thread**: no worker spawn, no pools, no
//!   atomics — and, critically, **zero heap allocation**, which is what
//!   makes a session's `refactor` hot path allocation-free under the
//!   `alloc-track` counting allocator. Budget semantics mirror the
//!   parallel supervisor: the cancellation token and deadline are checked
//!   before every task acquisition (token first, then deadline, matching
//!   `Supervisor::check_budget`), and a run that has retired its last task
//!   can no longer be interrupted.
//! * [`execute_traced_budgeted_with_priorities`] is the parallel
//!   counterpart: the cached priorities skip the per-run bottom-level
//!   recomputation, while worker threads are still spawned per run (a
//!   scoped-thread executor cannot be allocation-free).
//!
//! The sequential order is produced by simulating the one-worker priority
//! executor exactly (same max-heap, same tie-break on lower task id), so
//! the inline replay acquires tasks in the order the real executor would —
//! and the factored values are bitwise identical either way, as the
//! determinism suite asserts for every schedule.

use crate::control::{Interrupt, RunBudget};
use crate::executor::{execute_dag_with_priorities_report_budgeted, Mapping};
use crate::graph::{Task, TaskGraph};
use crate::trace::{ExecReport, TaskPanic, TraceConfig};
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Max-heap entry mirroring the executor's ready-pool ordering: higher
/// bottom level first, ties to the lower task id.
#[derive(PartialEq, Eq)]
struct Ready {
    prio: u64,
    tid: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.prio
            .cmp(&other.prio)
            .then_with(|| other.tid.cmp(&self.tid))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The per-graph executor state a session caches across factorizations:
/// bottom-level priorities plus the single-worker acquisition order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecSchedule {
    priority: Vec<u64>,
    seq_order: Vec<usize>,
}

impl ExecSchedule {
    /// Computes the schedule for `graph`: its bottom levels and the task
    /// order a one-worker priority executor would acquire.
    pub fn for_graph(graph: &TaskGraph) -> Self {
        let n = graph.len();
        let priority = graph.bottom_levels();
        let mut indeg = graph.pred_counts().to_vec();
        let mut heap: BinaryHeap<Ready> = (0..n)
            .filter(|&t| indeg[t] == 0)
            .map(|tid| Ready {
                prio: priority[tid],
                tid,
            })
            .collect();
        let mut seq_order = Vec::with_capacity(n);
        while let Some(r) = heap.pop() {
            seq_order.push(r.tid);
            for &s in graph.successors(r.tid) {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    heap.push(Ready {
                        prio: priority[s],
                        tid: s,
                    });
                }
            }
        }
        assert_eq!(seq_order.len(), n, "task graph must be acyclic");
        ExecSchedule {
            priority,
            seq_order,
        }
    }

    /// Number of tasks the schedule covers.
    pub fn len(&self) -> usize {
        self.seq_order.len()
    }

    /// `true` for the empty graph's schedule.
    pub fn is_empty(&self) -> bool {
        self.seq_order.is_empty()
    }

    /// Bottom-level priority per task id.
    pub fn priorities(&self) -> &[u64] {
        &self.priority
    }

    /// The single-worker acquisition order (every task id exactly once,
    /// topologically consistent).
    pub fn seq_order(&self) -> &[usize] {
        &self.seq_order
    }
}

/// Runs `graph` inline on the calling thread in the precomputed order.
///
/// Performs **no heap allocation**: no threads, no pools, no recorders.
/// The budget is honoured at every task-acquisition boundary with the
/// supervisor's semantics — token checkpoint first, then deadline; a
/// deadline trip also cancels the run's token (when one is attached) so
/// cooperative waiters inside tasks release; and once the last task has
/// retired the run can no longer be interrupted. A panicking task is
/// contained and reported through [`ExecReport::panic`], exactly like the
/// threaded executors.
///
/// # Panics
///
/// Panics when `schedule` was built for a different graph (length
/// mismatch).
pub fn execute_seq_budgeted<F>(
    graph: &TaskGraph,
    schedule: &ExecSchedule,
    runner: F,
    budget: &RunBudget,
) -> ExecReport
where
    F: Fn(Task),
{
    assert_eq!(
        schedule.len(),
        graph.len(),
        "schedule/graph task count mismatch"
    );
    let mut report = ExecReport::default();
    if graph.is_empty() {
        return report;
    }
    let n = schedule.seq_order.len();
    report.stats.nthreads = 1;
    report.stats.n_tasks = n;
    let armed = budget.is_armed();
    for (done, &tid) in schedule.seq_order.iter().enumerate() {
        if armed {
            // Same precedence as Supervisor::check_budget: the token is
            // consulted before the deadline, so a cancelled run with an
            // expired deadline still reports cancellation.
            if let Some(token) = &budget.token {
                if token.checkpoint() {
                    report.interrupt = Some(Interrupt::Cancelled {
                        tasks_pending: n - done,
                    });
                    return report;
                }
            }
            if let Some(deadline) = budget.deadline {
                if Instant::now() >= deadline {
                    if let Some(token) = &budget.token {
                        token.cancel();
                    }
                    report.interrupt = Some(Interrupt::DeadlineExceeded {
                        tasks_pending: n - done,
                    });
                    return report;
                }
            }
        }
        report.stats.tasks_started += 1;
        let task = graph.task(tid);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| runner(task))) {
            report.panic = Some(TaskPanic {
                worker: 0,
                task: tid,
                message: panic_message(payload.as_ref()),
            });
            return report;
        }
        report.stats.tasks_retired += 1;
    }
    report
}

/// Best-effort extraction of a panic payload's message (duplicated from
/// the executor module, which keeps it private).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`crate::execute_traced_budgeted`] with the bottom levels taken from a
/// cached [`ExecSchedule`] instead of recomputed per run — the parallel
/// half of executor reuse across a session's factorizations.
pub fn execute_traced_budgeted_with_priorities<F>(
    graph: &TaskGraph,
    schedule: &ExecSchedule,
    nthreads: usize,
    mapping: Mapping,
    runner: F,
    config: &TraceConfig,
    budget: &RunBudget,
) -> ExecReport
where
    F: Fn(Task) + Sync,
{
    let nthreads = nthreads.max(1);
    if graph.is_empty() {
        return ExecReport::default();
    }
    assert_eq!(
        schedule.len(),
        graph.len(),
        "schedule/graph task count mismatch"
    );
    let nqueues = match mapping {
        Mapping::Static1D => nthreads,
        Mapping::Dynamic => 1,
    };
    execute_dag_with_priorities_report_budgeted(
        graph.len(),
        graph.pred_counts(),
        |t| graph.successors(t),
        schedule.priorities(),
        nthreads,
        nqueues,
        |t| match mapping {
            Mapping::Static1D => graph.task(t).home_column() % nthreads,
            Mapping::Dynamic => 0,
        },
        |t| runner(graph.task(t)),
        config,
        budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::CancelToken;
    use crate::graph::{build_eforest_graph, build_sstar_graph};
    use splu_sparse::SparsityPattern;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::BlockStructure;
    use splu_symbolic::Partition;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    fn random_graph(n: usize, extra: usize, seed: u64) -> TaskGraph {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for _ in 0..extra {
            entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        let p = SparsityPattern::from_entries(n, n, entries).unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(n));
        if seed.is_multiple_of(2) {
            build_eforest_graph(&bs)
        } else {
            build_sstar_graph(&bs)
        }
    }

    #[test]
    fn seq_order_is_a_topological_cover() {
        for seed in 0..6u64 {
            let g = random_graph(16, 40, seed);
            let s = ExecSchedule::for_graph(&g);
            assert_eq!(s.len(), g.len());
            // Every task appears exactly once.
            let mut seen = vec![false; g.len()];
            for &t in s.seq_order() {
                assert!(!seen[t], "task {t} scheduled twice");
                seen[t] = true;
            }
            assert!(seen.iter().all(|&b| b));
            // Topological: a task appears after all its predecessors.
            let mut pos = vec![0usize; g.len()];
            for (i, &t) in s.seq_order().iter().enumerate() {
                pos[t] = i;
            }
            for t in 0..g.len() {
                for &succ in g.successors(t) {
                    assert!(pos[t] < pos[succ], "edge {t}→{succ} violated");
                }
            }
        }
    }

    #[test]
    fn inline_replay_runs_every_task_once() {
        let g = random_graph(12, 30, 2);
        let s = ExecSchedule::for_graph(&g);
        let order = Mutex::new(Vec::new());
        let report = execute_seq_budgeted(
            &g,
            &s,
            |_| order.lock().unwrap().push(()),
            &RunBudget::default(),
        );
        assert_eq!(order.lock().unwrap().len(), g.len());
        assert!(report.panic.is_none() && report.interrupt.is_none());
        assert_eq!(report.stats.tasks_started, g.len() as u64);
        assert_eq!(report.stats.tasks_retired, g.len() as u64);
    }

    #[test]
    fn inline_replay_honours_cancellation_before_each_task() {
        let g = random_graph(12, 30, 3);
        let s = ExecSchedule::for_graph(&g);
        let token = CancelToken::new();
        token.cancel_after_checkpoints(3);
        let budget = RunBudget::default().with_token(token);
        let ran = AtomicUsize::new(0);
        let report = execute_seq_budgeted(
            &g,
            &s,
            |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            },
            &budget,
        );
        // Two checkpoints pass, the third trips before the third task.
        assert_eq!(ran.load(Ordering::Relaxed), 2);
        assert_eq!(
            report.interrupt,
            Some(Interrupt::Cancelled {
                tasks_pending: g.len() - 2
            })
        );
    }

    #[test]
    fn inline_replay_never_interrupts_a_finished_run() {
        let g = random_graph(10, 20, 4);
        let s = ExecSchedule::for_graph(&g);
        // Deadline in the past, but checked only before acquisitions: with
        // an exact trip budget of len+1 checkpoints the run finishes clean.
        let token = CancelToken::new();
        token.cancel_after_checkpoints(g.len() + 1);
        let budget = RunBudget::default().with_token(token);
        let report = execute_seq_budgeted(&g, &s, |_| {}, &budget);
        assert!(report.interrupt.is_none());
        assert_eq!(report.stats.tasks_retired, g.len() as u64);
    }

    #[test]
    fn inline_replay_expired_deadline_trips_and_cancels_token() {
        let g = random_graph(10, 20, 5);
        let s = ExecSchedule::for_graph(&g);
        let token = CancelToken::new();
        let budget = RunBudget::default()
            .with_token(token.clone())
            .with_deadline(Instant::now() - Duration::from_millis(1));
        let report = execute_seq_budgeted(&g, &s, |_| {}, &budget);
        assert_eq!(
            report.interrupt,
            Some(Interrupt::DeadlineExceeded {
                tasks_pending: g.len()
            })
        );
        assert!(token.is_cancelled());
    }

    #[test]
    fn inline_replay_contains_panics() {
        let g = random_graph(10, 20, 6);
        let s = ExecSchedule::for_graph(&g);
        let ran = AtomicUsize::new(0);
        let report = execute_seq_budgeted(
            &g,
            &s,
            |_| {
                if ran.fetch_add(1, Ordering::Relaxed) == 1 {
                    panic!("injected");
                }
            },
            &RunBudget::default(),
        );
        let p = report.panic.expect("panic reported");
        assert_eq!(p.worker, 0);
        assert!(p.message.contains("injected"));
        assert_eq!(report.stats.tasks_retired, 1);
    }

    #[test]
    fn cached_priorities_match_the_graph() {
        let g = random_graph(14, 35, 7);
        let s = ExecSchedule::for_graph(&g);
        assert_eq!(s.priorities(), g.bottom_levels().as_slice());
    }

    #[test]
    fn parallel_reuse_runs_every_task_once_under_both_mappings() {
        for (seed, mapping) in [(2u64, Mapping::Static1D), (3, Mapping::Dynamic)] {
            let g = random_graph(14, 35, seed);
            let s = ExecSchedule::for_graph(&g);
            let ran = AtomicUsize::new(0);
            let report = execute_traced_budgeted_with_priorities(
                &g,
                &s,
                4,
                mapping,
                |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                },
                &TraceConfig::counters(),
                &RunBudget::default(),
            );
            assert_eq!(ran.load(Ordering::Relaxed), g.len());
            assert!(report.panic.is_none() && report.interrupt.is_none());
            assert_eq!(report.stats.tasks_retired, g.len() as u64);
        }
    }
}
