//! The executors' hand-rolled synchronization primitives, extracted so
//! they can be model-checked.
//!
//! Everything the worker loops in [`crate::executor`] synchronize through
//! lives here: the sleep [`Gate`] (park/notify with the no-lost-wakeup
//! protocol), the legacy FIFO [`ReadyQueue`], the [`Countdown`] of
//! unretired tasks, and the [`AbortFlag`]. The module is public so the
//! loom harness (`tests/loom.rs`, built with `RUSTFLAGS="--cfg loom"`)
//! can drive the same types the production executors use.
//!
//! Under `cfg(loom)` the [`Mutex`]/[`Condvar`]/atomic backends swap from
//! `parking_lot`/`std` to the `loom` instrumented types, so every
//! synchronization operation becomes a model-checker schedule point; the
//! shim re-exposes parking_lot's ergonomics (guards without poison
//! results) either way, so the executor code is identical under both
//! configurations.

#[cfg(not(loom))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
#[cfg(loom)]
pub use loom_shim::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

/// parking_lot-style wrappers over the `loom` instrumented primitives:
/// `lock()` returns the guard directly and `wait` takes `&mut guard`, so
/// the executor source is byte-identical under `cfg(loom)`.
#[cfg(loom)]
mod loom_shim {
    use std::ops::{Deref, DerefMut};

    /// Instrumented mutex with parking_lot ergonomics.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized>(loom::sync::Mutex<T>);

    /// RAII guard of [`Mutex`]; holds an `Option` so [`Condvar::wait`] can
    /// move the inner guard out and back without unsafe code.
    #[derive(Debug)]
    pub struct MutexGuard<'a, T: ?Sized>(Option<loom::sync::MutexGuard<'a, T>>);

    impl<T> Mutex<T> {
        /// Creates a mutex protecting `value`.
        pub fn new(value: T) -> Self {
            Mutex(loom::sync::Mutex::new(value))
        }

        /// Consumes the mutex, returning the protected value.
        pub fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock, blocking the current thread.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.0.as_deref().expect("guard present outside wait")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.0.as_deref_mut().expect("guard present outside wait")
        }
    }

    /// Whether a [`Condvar::wait_for`] returned because of a timeout.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult(bool);

    impl WaitTimeoutResult {
        /// `true` when the wait ended because the timeout elapsed.
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// Instrumented condition variable compatible with [`Mutex`].
    #[derive(Debug, Default)]
    pub struct Condvar(loom::sync::Condvar);

    impl Condvar {
        /// Creates a condition variable.
        pub fn new() -> Self {
            Condvar(loom::sync::Condvar::new())
        }

        /// Blocks until notified, releasing `guard`'s mutex while parked.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            let inner = guard.0.take().expect("guard present before wait");
            let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
            guard.0 = Some(inner);
        }

        /// Blocks until notified or `timeout` elapses; returns whether the
        /// wait timed out.
        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: std::time::Duration,
        ) -> WaitTimeoutResult {
            let inner = guard.0.take().expect("guard present before wait");
            let (inner, result) = self
                .0
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            guard.0 = Some(inner);
            WaitTimeoutResult(result.timed_out())
        }

        /// Wakes one parked waiter.
        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        /// Wakes every parked waiter.
        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

/// What [`Gate::park_if`] decided under the gate lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Park {
    /// The run is over (all tasks retired, or aborted): exit the worker.
    Exit,
    /// Work appeared between the last pool scan and taking the gate lock:
    /// retry acquisition without waiting.
    Retry,
    /// The worker parked and has been woken: re-scan for work.
    Waited,
}

/// Sleep gate: pushers notify **under the gate lock**, parkers re-check
/// both termination and work availability under that same lock before
/// waiting.
///
/// The no-lost-wakeup argument: a pusher that makes work available
/// acquires the gate lock before notifying, so its notify cannot fall
/// into the window between a parker's emptiness re-check (done under the
/// lock, via [`Gate::park_if`]'s `has_work` closure) and its wait — the
/// pusher either notifies before the parker locks (and the parker's
/// re-check then sees the work) or after the parker waits (and the wait
/// receives the notify). The same protocol covers shutdown: the
/// last-retire and abort broadcasts go through [`Gate::notify_all`],
/// which also locks first, and parkers re-check `should_exit` under the
/// lock. This is the invariant the loom harness model-checks.
#[derive(Debug, Default)]
pub struct Gate {
    lock: Mutex<()>,
    cv: Condvar,
}

impl Gate {
    /// Creates a gate.
    pub fn new() -> Self {
        Gate {
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Wakes one parked worker (locking first — see the type docs).
    pub fn notify_one(&self) {
        let _guard = self.lock.lock();
        self.cv.notify_one();
    }

    /// Wakes every parked worker (locking first — see the type docs).
    pub fn notify_all(&self) {
        let _guard = self.lock.lock();
        self.cv.notify_all();
    }

    /// The park protocol: under the gate lock, first consult
    /// `should_exit`, then `has_work`; park only when the run is live and
    /// no work is visible. Both closures are evaluated while the lock is
    /// held, which is what makes the decision atomic against pushers.
    pub fn park_if<E, W>(&self, should_exit: E, has_work: W) -> Park
    where
        E: FnOnce() -> bool,
        W: FnOnce() -> bool,
    {
        let mut guard = self.lock.lock();
        if should_exit() {
            return Park::Exit;
        }
        if has_work() {
            return Park::Retry;
        }
        self.cv.wait(&mut guard);
        Park::Waited
    }
}

/// The legacy FIFO ready queue (one deque + condvar), extracted verbatim
/// from the pre-work-stealing executor.
///
/// [`ReadyQueue::wake_all`] locks the deque before broadcasting for the
/// same no-lost-wakeup reason as [`Gate`]: a waiter inside
/// [`ReadyQueue::pop`] checks the exit conditions while holding the deque
/// lock, so an unlocked broadcast could slip between that check and the
/// wait.
#[derive(Debug, Default)]
pub struct ReadyQueue {
    deque: Mutex<std::collections::VecDeque<usize>>,
    cv: Condvar,
}

impl ReadyQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReadyQueue {
            deque: Mutex::new(std::collections::VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    /// Enqueues a task and wakes one waiter.
    pub fn push(&self, t: usize) {
        self.deque.lock().push_back(t);
        self.cv.notify_one();
    }

    /// Tasks currently enqueued (watchdog stall reports).
    pub fn len(&self) -> usize {
        self.deque.lock().len()
    }

    /// `true` when no task is enqueued.
    pub fn is_empty(&self) -> bool {
        self.deque.lock().is_empty()
    }

    /// Pops a task, blocking until one arrives, `done` reports all work
    /// retired, or `exit_now` reports an abort. The check order under the
    /// deque lock is: abort → pop → done → wait. `parked(true)` /
    /// `parked(false)` bracket every wait (telemetry + heartbeats).
    pub fn pop<E, D, P>(&self, exit_now: E, done: D, mut parked: P) -> Option<usize>
    where
        E: Fn() -> bool,
        D: Fn() -> bool,
        P: FnMut(bool),
    {
        let mut q = self.deque.lock();
        loop {
            if exit_now() {
                return None;
            }
            if let Some(t) = q.pop_front() {
                return Some(t);
            }
            if done() {
                return None;
            }
            parked(true);
            self.cv.wait(&mut q);
            parked(false);
        }
    }

    /// Wakes every waiter (locking the deque first — see the type docs).
    pub fn wake_all(&self) {
        let _q = self.deque.lock();
        self.cv.notify_all();
    }
}

/// Count of unretired tasks; the retire path's `started == retired`
/// accounting hinges on [`Countdown::retire`] returning `true` exactly
/// once, for the last task.
#[derive(Debug)]
pub struct Countdown(AtomicUsize);

impl Countdown {
    /// Starts the countdown at `n` unretired tasks.
    pub fn new(n: usize) -> Self {
        Countdown(AtomicUsize::new(n))
    }

    /// Retires one task; `true` exactly for the last retirement.
    pub fn retire(&self) -> bool {
        self.0.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Tasks not yet retired.
    pub fn remaining(&self) -> usize {
        self.0.load(Ordering::Acquire)
    }

    /// `true` once every task has retired.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }
}

/// One-way abort latch: set once (panic, cancellation, deadline, stall),
/// observed by every worker at its next task boundary.
#[derive(Debug, Default)]
pub struct AbortFlag(AtomicBool);

impl AbortFlag {
    /// Creates an unset flag.
    pub fn new() -> Self {
        AbortFlag(AtomicBool::new(false))
    }

    /// Latches the abort.
    pub fn set(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the abort has been latched.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn countdown_retires_exactly_once() {
        let c = Countdown::new(3);
        assert!(!c.retire());
        assert!(!c.retire());
        assert_eq!(c.remaining(), 1);
        assert!(c.retire());
        assert!(c.is_done());
    }

    #[test]
    fn gate_park_if_prefers_exit_then_work() {
        let g = Gate::new();
        assert_eq!(g.park_if(|| true, || true), Park::Exit);
        assert_eq!(g.park_if(|| false, || true), Park::Retry);
    }

    #[test]
    fn ready_queue_pop_orders_checks() {
        let q = ReadyQueue::new();
        q.push(7);
        // Abort beats an available task.
        assert_eq!(q.pop(|| true, || false, |_| {}), None);
        assert_eq!(q.pop(|| false, || false, |_| {}), Some(7));
        assert!(q.is_empty());
        // Done beats waiting.
        assert_eq!(q.pop(|| false, || true, |_| {}), None);
    }

    #[test]
    fn gate_wakes_parked_thread() {
        let g = std::sync::Arc::new(Gate::new());
        let stop = std::sync::Arc::new(AbortFlag::new());
        let (g2, s2) = (g.clone(), stop.clone());
        let h = std::thread::spawn(move || loop {
            match g2.park_if(|| s2.is_set(), || false) {
                Park::Exit => return,
                _ => continue,
            }
        });
        stop.set();
        g.notify_all();
        h.join().unwrap();
    }
}
