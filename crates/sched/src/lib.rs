//! Task dependence graphs and runtimes for the parallel factorization
//! (Section 4 of the paper).
//!
//! The numerical factorization is expressed as tasks `Factor(k)` (factor
//! block column `k`, choosing its pivot sequence) and `Update(k, j)` (update
//! block column `j` by block column `k`), exactly as in S*. Two graph
//! builders are provided:
//!
//! * [`build_sstar_graph`] — the S* graph: all updates into a column are
//!   chained in ascending source order;
//! * [`build_eforest_graph`] — the paper's contribution: only the *least
//!   necessary* dependences, derived from the block-level LU elimination
//!   forest (rules 1–5 of Section 4). Updates from independent subtrees run
//!   concurrently.
//!
//! Two runtimes consume the graphs:
//!
//! * [`execute`] — a multithreaded work-stealing executor scheduling by
//!   critical-path (bottom-level) priority, with the paper's static 1D
//!   column-block mapping (owner-only, our RAPID substitute) or dynamic
//!   self-scheduling with stealing; the pre-work-stealing shared-FIFO
//!   executor survives as [`execute_fifo`] for baseline measurements;
//! * [`simulate`] — a deterministic list-scheduling simulator with a
//!   flops + latency cost model, used to evaluate processor counts beyond
//!   the physical cores of the host (DESIGN.md §5, substitution 2). Its
//!   static-order inspector and the executor share one priority source:
//!   [`TaskGraph::bottom_levels_with`].
//!
//! Both runtimes are observable through the telemetry layer (`trace`
//! module): the `*_traced`/`*_report` entry points record lock-free
//! per-worker event streams and steal/idle counters into an [`ExecReport`]
//! ([`SchedStats`] + Chrome-trace export via [`ExecTrace::chrome_json`]),
//! and [`simulate_dynamic_traced`] emits the comparable predicted schedule
//! ([`SimEvent`], exported by [`sim_chrome_json`]).
//!
//! Runs can be bounded by a [`RunBudget`] (the `*_budgeted` entry points):
//! a shareable [`CancelToken`], an absolute deadline, and an opt-in
//! liveness watchdog ([`WatchdogConfig`]) that converts a hung run into a
//! structured [`StallReport`]. The executors' synchronization primitives
//! live in the public [`sync`] module, whose `cfg(loom)` shim lets
//! `tests/loom.rs` model-check the park/notify and shutdown protocols.

// Index-based loops are the natural idiom for the numerical kernels and
// symbolic algorithms in this crate; iterator rewrites obscure the maths.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod control;
mod executor;
pub mod fine;
mod graph;
mod lane;
mod schedule;
mod simulate;
pub mod sync;
mod trace;

pub use control::{
    CancelToken, Interrupt, RunBudget, StallReport, WatchdogConfig, WorkerSnapshot, WorkerState,
};
pub use executor::{
    execute, execute_dag, execute_dag_fifo, execute_dag_fifo_report,
    execute_dag_fifo_report_budgeted, execute_dag_report, execute_dag_report_budgeted,
    execute_dag_with_priorities, execute_dag_with_priorities_report,
    execute_dag_with_priorities_report_budgeted, execute_fifo, execute_fifo_traced,
    execute_fifo_traced_budgeted, execute_traced, execute_traced_budgeted, Mapping,
};
pub use fine::{build_fine_graph, simulate_fine, FineGraph, FineTask, Grid};
pub use graph::{block_forest, build_eforest_graph, build_sstar_graph, Task, TaskGraph};
pub use lane::{Lane, LaneRejected};
pub use schedule::{execute_seq_budgeted, execute_traced_budgeted_with_priorities, ExecSchedule};
pub use simulate::{
    simulate, simulate_dynamic, simulate_dynamic_traced, simulate_static_order,
    simulate_static_order_fifo, CostModel, ReadyPolicy, SimEvent, SimResult, TaskCost,
};
pub use trace::{
    sim_chrome_json, EventKind, ExecReport, ExecTrace, FactorHealth, SchedStats, TaskPanic,
    TraceConfig, TraceEvent, TraceMode, WorkerStats,
};

// Re-exported so downstream crates can name the forest type the graph
// builders consume without an extra dependency edge.
pub use splu_symbolic::EliminationForest;
