//! Deterministic list-scheduling simulator.
//!
//! The paper's timings come from an 8-processor SGI Origin 2000; this host
//! has far fewer cores, so scaling experiments beyond the physical core
//! count run on this simulator instead (DESIGN.md §5, substitution 2). The
//! simulator executes the task DAG under the same mapping disciplines as the
//! real executor, with per-task costs derived from a flop + latency model
//! that the benchmark harness calibrates against measured serial time.

use crate::executor::Mapping;
use crate::graph::TaskGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Work attributed to one task.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TaskCost {
    /// Floating-point operations the task performs.
    pub flops: f64,
    /// Words moved from another processor's memory when the source block
    /// column lives on a different owner (1D mapping).
    pub comm_words: f64,
    /// `true` when the task reads a remote block column (i.e. it is an
    /// `Update(k, j)` with `k ≠ j`); `Factor` tasks read only local data.
    pub reads_remote: bool,
    /// Source block column (for ownership checks); ignored unless
    /// `reads_remote`.
    pub src_col: usize,
    /// Destination (home) block column.
    pub dst_col: usize,
}

/// Machine model: seconds per flop, per transferred word, fixed per-task
/// dispatch overhead, and the latency of a cross-processor dependence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds per floating point operation (calibrate from a measured
    /// serial factorization).
    pub seconds_per_flop: f64,
    /// Seconds per remote word (models the Origin's interconnect).
    pub seconds_per_word: f64,
    /// Fixed per-task overhead in seconds (dispatch + synchronization).
    pub task_overhead: f64,
    /// Latency added before a successor on a *different* processor sees a
    /// predecessor's completion (run-time message/dispatch latency). This is
    /// the term that penalizes long dependence chains that hop between
    /// processors — the false S* dependences the paper eliminates.
    pub edge_latency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // 195 MHz R10000-flavoured defaults: ~50 Mflop/s sustained on
        // supernodal kernels, ~100 MB/s effective remote bandwidth, ~10 µs
        // run-time messaging latency.
        CostModel {
            seconds_per_flop: 2.0e-8,
            seconds_per_word: 8.0e-8,
            task_overhead: 5.0e-6,
            edge_latency: 1.0e-5,
        }
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Wall-clock makespan in model seconds.
    pub makespan: f64,
    /// Sum of all task times (the one-processor lower bound under the same
    /// model, ignoring communication savings).
    pub total_work: f64,
    /// Busy time per processor.
    pub busy: Vec<f64>,
}

impl SimResult {
    /// Parallel efficiency: `total_work / (P · makespan)`.
    pub fn efficiency(&self) -> f64 {
        if self.makespan == 0.0 {
            1.0
        } else {
            self.total_work / (self.busy.len() as f64 * self.makespan)
        }
    }
}

/// f64 ordering key for the ready heap.
#[derive(PartialEq)]
struct Key(f64, usize);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

/// Simulates list-scheduled execution of `graph` on `nprocs` virtual
/// processors.
///
/// `costs[t]` describes task `t`. With [`Mapping::Static1D`] each task runs
/// on `home_column mod P` and pays the communication term whenever its
/// source column lives on a different owner; with [`Mapping::Dynamic`] tasks
/// go to the earliest-free processor and always pay communication for
/// remote-source updates (a dynamic schedule cannot guarantee locality).
pub fn simulate(
    graph: &TaskGraph,
    nprocs: usize,
    mapping: Mapping,
    costs: &[TaskCost],
    model: &CostModel,
) -> SimResult {
    assert_eq!(costs.len(), graph.len(), "one cost per task");
    let nprocs = nprocs.max(1);
    let task_time = |t: usize, proc_of_src_differs: bool| -> f64 {
        let c = &costs[t];
        let mut time = model.task_overhead + c.flops * model.seconds_per_flop;
        if c.reads_remote && proc_of_src_differs {
            time += c.comm_words * model.seconds_per_word;
        }
        time
    };

    let mut indeg: Vec<usize> = graph.pred_counts().to_vec();
    let mut ready_time = vec![0.0_f64; graph.len()];
    let mut proc_free = vec![0.0_f64; nprocs];
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
    for t in 0..graph.len() {
        if indeg[t] == 0 {
            heap.push(Reverse(Key(0.0, t)));
        }
    }
    let mut busy = vec![0.0_f64; nprocs];
    let mut total_work = 0.0;
    let mut makespan = 0.0_f64;
    let mut scheduled = 0usize;

    while let Some(Reverse(Key(ready, t))) = heap.pop() {
        scheduled += 1;
        let home = costs[t].dst_col % nprocs;
        let proc = match mapping {
            Mapping::Static1D => home,
            Mapping::Dynamic => {
                // Earliest-free processor.
                (0..nprocs)
                    .min_by(|&a, &b| proc_free[a].total_cmp(&proc_free[b]))
                    .expect("nprocs >= 1")
            }
        };
        let remote = match mapping {
            Mapping::Static1D => costs[t].src_col % nprocs != home,
            // Dynamic schedules give up locality; charge communication for
            // every remote-source read when more than one processor exists.
            Mapping::Dynamic => nprocs > 1,
        };
        let time = task_time(t, remote);
        let start = ready.max(proc_free[proc]);
        let finish = start + time;
        proc_free[proc] = finish;
        busy[proc] += time;
        total_work += time;
        makespan = makespan.max(finish);
        for &s in graph.successors(t) {
            // A successor homed on another processor learns of this
            // completion only after the messaging latency.
            let visible = if costs[s].dst_col % nprocs != home && nprocs > 1 {
                finish + model.edge_latency
            } else {
                finish
            };
            ready_time[s] = ready_time[s].max(visible);
            indeg[s] -= 1;
            if indeg[s] == 0 {
                heap.push(Reverse(Key(ready_time[s], s)));
            }
        }
    }
    assert_eq!(scheduled, graph.len(), "cycle in task graph");
    SimResult {
        makespan,
        total_work,
        busy,
    }
}

/// How a dynamic scheduler picks among the tasks whose predecessors have
/// all completed (see [`simulate_dynamic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyPolicy {
    /// First-come-first-served: tasks leave the ready pool in the order
    /// they became ready — the pre-rework shared-queue discipline
    /// (`execute_fifo`).
    Fifo,
    /// Highest unit bottom-level first (ties to the lower task id) — the
    /// rule of the work-stealing executor's priority pools.
    Priority,
}

/// One scheduled task interval of a simulation run — the simulator's
/// counterpart of the executor's `Task` trace event, so measured and
/// predicted schedules can be exported and compared in the same
/// Chrome-trace shape (see [`crate::sim_chrome_json`]). Times are model
/// seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEvent {
    /// Virtual processor the task ran on.
    pub proc: usize,
    /// Task id in the simulated graph.
    pub task: usize,
    /// Model time the task started.
    pub start: f64,
    /// Model time the task finished.
    pub finish: f64,
}

/// Discrete-event simulation of **dynamic self-scheduling**: whenever a
/// processor frees up, it takes a task from the shared ready pool under
/// `policy`, preferring tasks already released at that instant and
/// otherwise idling until the earliest release. This mirrors the real
/// executor's semantics (a task enters the pool only when its last
/// predecessor retires), so the FIFO-vs-priority gap measured here is the
/// scheduling-policy effect in isolation — observable at processor counts
/// the host does not physically have.
///
/// Communication follows [`Mapping::Dynamic`]'s pessimistic rule: with more
/// than one processor, every remote-reading task pays its word cost, and
/// every dependence crossing the (dynamic, hence unknowable) placement pays
/// the messaging latency.
pub fn simulate_dynamic(
    graph: &TaskGraph,
    nprocs: usize,
    costs: &[TaskCost],
    model: &CostModel,
    policy: ReadyPolicy,
) -> SimResult {
    simulate_dynamic_traced(graph, nprocs, costs, model, policy).0
}

/// [`simulate_dynamic`] additionally returning the per-processor schedule
/// as an event stream comparable with the real executor's trace.
pub fn simulate_dynamic_traced(
    graph: &TaskGraph,
    nprocs: usize,
    costs: &[TaskCost],
    model: &CostModel,
    policy: ReadyPolicy,
) -> (SimResult, Vec<SimEvent>) {
    assert_eq!(costs.len(), graph.len(), "one cost per task");
    let nprocs = nprocs.max(1);
    let time_of = |t: usize| -> f64 {
        let c = &costs[t];
        let mut time = model.task_overhead + c.flops * model.seconds_per_flop;
        if c.reads_remote && nprocs > 1 {
            time += c.comm_words * model.seconds_per_word;
        }
        time
    };
    // The executor's exact priority source: unit bottom levels.
    let unit_levels = graph.bottom_levels();

    let mut indeg: Vec<usize> = graph.pred_counts().to_vec();
    let mut release = vec![0.0_f64; graph.len()];
    // Ready pool: (task, arrival sequence number).
    let mut pool: Vec<(usize, usize)> = Vec::new();
    let mut arrivals = 0usize;
    for t in 0..graph.len() {
        if indeg[t] == 0 {
            pool.push((t, arrivals));
            arrivals += 1;
        }
    }
    let mut proc_free = vec![0.0_f64; nprocs];
    let mut busy = vec![0.0_f64; nprocs];
    let mut total_work = 0.0;
    let mut makespan = 0.0_f64;
    let mut scheduled = 0usize;
    let mut events: Vec<SimEvent> = Vec::with_capacity(graph.len());

    while !pool.is_empty() {
        // Earliest-free processor makes the next pick.
        let proc = (0..nprocs)
            .min_by(|&a, &b| proc_free[a].total_cmp(&proc_free[b]))
            .expect("nprocs >= 1");
        let now = proc_free[proc];
        // Candidates released by `now`; if the processor would idle, only
        // the earliest release(s) are up for grabs.
        let released: Vec<usize> = (0..pool.len())
            .filter(|&i| release[pool[i].0] <= now)
            .collect();
        let pick_from: Vec<usize> = if released.is_empty() {
            let earliest = pool
                .iter()
                .map(|&(t, _)| release[t])
                .fold(f64::INFINITY, f64::min);
            (0..pool.len())
                .filter(|&i| release[pool[i].0] <= earliest)
                .collect()
        } else {
            released
        };
        let chosen = *pick_from
            .iter()
            .min_by(|&&a, &&b| {
                let (ta, seq_a) = pool[a];
                let (tb, seq_b) = pool[b];
                match policy {
                    ReadyPolicy::Fifo => seq_a.cmp(&seq_b),
                    ReadyPolicy::Priority => unit_levels[tb]
                        .cmp(&unit_levels[ta])
                        .then_with(|| ta.cmp(&tb)),
                }
            })
            .expect("pool nonempty");
        let (t, _) = pool.swap_remove(chosen);
        scheduled += 1;
        let time = time_of(t);
        let start = now.max(release[t]);
        let finish = start + time;
        proc_free[proc] = finish;
        busy[proc] += time;
        total_work += time;
        makespan = makespan.max(finish);
        events.push(SimEvent {
            proc,
            task: t,
            start,
            finish,
        });
        for &s in graph.successors(t) {
            let visible = if nprocs > 1 {
                finish + model.edge_latency
            } else {
                finish
            };
            release[s] = release[s].max(visible);
            indeg[s] -= 1;
            if indeg[s] == 0 {
                pool.push((s, arrivals));
                arrivals += 1;
            }
        }
    }
    assert_eq!(scheduled, graph.len(), "cycle in task graph");
    (
        SimResult {
            makespan,
            total_work,
            busy,
        },
        events,
    )
}

/// Simulates a **static-order** schedule, emulating the RAPID run-time the
/// paper uses: an inspector phase fixes each processor's task order before
/// execution, and at run time every processor executes its list *in order*,
/// stalling whenever the next task's predecessors are not yet visible.
///
/// This is where the quality of the task dependence graph matters most:
/// false dependences (the S* chains) both inflate the critical-path
/// priorities the inspector schedules by and force stalls the executor
/// cannot reorder around — exactly the effect the paper measures in
/// Figures 5 and 6.
///
/// The inspector is classic critical-path list scheduling: tasks are laid
/// out in topological order, most-urgent first (longest time-to-sink,
/// including cross-processor edge latencies); the owner mapping is the
/// paper's static 1D `home_column mod P`. Execution times are then obtained
/// by a longest-path evaluation over the union of dependence edges and
/// per-processor sequence edges (acyclic because every sequence follows one
/// global topological order).
pub fn simulate_static_order(
    graph: &TaskGraph,
    nprocs: usize,
    costs: &[TaskCost],
    model: &CostModel,
) -> SimResult {
    assert_eq!(costs.len(), graph.len(), "one cost per task");
    let nprocs = nprocs.max(1);
    let owner = |t: usize| costs[t].dst_col % nprocs;
    let time_of = |t: usize| -> f64 {
        let c = &costs[t];
        let mut time = model.task_overhead + c.flops * model.seconds_per_flop;
        if c.reads_remote && costs[t].src_col % nprocs != owner(t) {
            time += c.comm_words * model.seconds_per_word;
        }
        time
    };

    // Priorities: longest time-to-sink — the same weighted bottom-level
    // sweep the executor uses (unit weights there).
    let priority = graph.bottom_levels_with(time_of, |t, s| {
        if owner(s) != owner(t) && nprocs > 1 {
            model.edge_latency
        } else {
            0.0
        }
    });

    // Inspector: global topological order, most-urgent ready task first.
    let mut indeg: Vec<usize> = graph.pred_counts().to_vec();
    let mut heap: BinaryHeap<Key> = (0..graph.len())
        .filter(|&t| indeg[t] == 0)
        .map(|t| Key(priority[t], t))
        .collect();
    let mut schedule: Vec<usize> = Vec::with_capacity(graph.len());
    while let Some(Key(_, t)) = heap.pop() {
        schedule.push(t);
        for &s in graph.successors(t) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                heap.push(Key(priority[s], s));
            }
        }
    }
    assert_eq!(schedule.len(), graph.len(), "cycle in task graph");
    run_static_schedule(graph, nprocs, costs, model, &schedule)
}

/// Like [`simulate_static_order`], but the inspector lays tasks out in plain
/// breadth-first (Kahn queue) topological order instead of by critical-path
/// priority — the pre-priority FIFO discipline, kept as the baseline the
/// scheduling rework is measured against on processor counts beyond the
/// physical cores of the host.
pub fn simulate_static_order_fifo(
    graph: &TaskGraph,
    nprocs: usize,
    costs: &[TaskCost],
    model: &CostModel,
) -> SimResult {
    assert_eq!(costs.len(), graph.len(), "one cost per task");
    let mut indeg: Vec<usize> = graph.pred_counts().to_vec();
    let mut queue: std::collections::VecDeque<usize> =
        (0..graph.len()).filter(|&t| indeg[t] == 0).collect();
    let mut schedule: Vec<usize> = Vec::with_capacity(graph.len());
    while let Some(t) = queue.pop_front() {
        schedule.push(t);
        for &s in graph.successors(t) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    assert_eq!(schedule.len(), graph.len(), "cycle in task graph");
    run_static_schedule(graph, nprocs.max(1), costs, model, &schedule)
}

/// Evaluates a fixed global task order on `nprocs` owner-mapped processors:
/// every processor executes its subsequence in order, stalling until each
/// task's predecessors are visible (cross-processor edges pay the messaging
/// latency).
fn run_static_schedule(
    graph: &TaskGraph,
    nprocs: usize,
    costs: &[TaskCost],
    model: &CostModel,
    schedule: &[usize],
) -> SimResult {
    let owner = |t: usize| costs[t].dst_col % nprocs;
    let time_of = |t: usize| -> f64 {
        let c = &costs[t];
        let mut time = model.task_overhead + c.flops * model.seconds_per_flop;
        if c.reads_remote && costs[t].src_col % nprocs != owner(t) {
            time += c.comm_words * model.seconds_per_word;
        }
        time
    };
    // Executor: longest-path evaluation with per-processor sequencing.
    let mut finish = vec![0.0_f64; graph.len()];
    let mut start = vec![0.0_f64; graph.len()];
    let mut proc_free = vec![0.0_f64; nprocs];
    let mut busy = vec![0.0_f64; nprocs];
    let mut total_work = 0.0;
    let mut makespan = 0.0_f64;
    // Dependence constraints must be looked up from predecessors; gather
    // reverse edges once.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
    for t in 0..graph.len() {
        for &s in graph.successors(t) {
            preds[s].push(t);
        }
    }
    for &t in schedule {
        let p = owner(t);
        let mut ready = proc_free[p];
        for &q in &preds[t] {
            let lat = if owner(q) != p && nprocs > 1 {
                model.edge_latency
            } else {
                0.0
            };
            ready = ready.max(finish[q] + lat);
        }
        let time = time_of(t);
        start[t] = ready;
        finish[t] = ready + time;
        proc_free[p] = finish[t];
        busy[p] += time;
        total_work += time;
        makespan = makespan.max(finish[t]);
    }
    SimResult {
        makespan,
        total_work,
        busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build_eforest_graph, build_sstar_graph, Task};
    use splu_sparse::SparsityPattern;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::BlockStructure;
    use splu_symbolic::Partition;

    fn unit_costs(graph: &TaskGraph) -> Vec<TaskCost> {
        graph
            .tasks()
            .iter()
            .map(|t| match *t {
                Task::Factor(k) => TaskCost {
                    flops: 1.0,
                    comm_words: 0.0,
                    reads_remote: false,
                    src_col: k,
                    dst_col: k,
                },
                Task::Update { src, dst } => TaskCost {
                    flops: 1.0,
                    comm_words: 0.0,
                    reads_remote: true,
                    src_col: src,
                    dst_col: dst,
                },
            })
            .collect()
    }

    fn unit_model() -> CostModel {
        CostModel {
            seconds_per_flop: 1.0,
            seconds_per_word: 0.0,
            task_overhead: 0.0,
            edge_latency: 0.0,
        }
    }

    fn graph_from(n: usize, extra: usize, seed: u64, eforest: bool) -> TaskGraph {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for _ in 0..extra {
            entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        let p = SparsityPattern::from_entries(n, n, entries).unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(n));
        if eforest {
            build_eforest_graph(&bs)
        } else {
            build_sstar_graph(&bs)
        }
    }

    #[test]
    fn one_proc_makespan_equals_total_work() {
        let g = graph_from(12, 25, 1, true);
        let costs = unit_costs(&g);
        let r = simulate(&g, 1, Mapping::Static1D, &costs, &unit_model());
        assert!((r.makespan - r.total_work).abs() < 1e-9);
        assert!((r.makespan - g.len() as f64).abs() < 1e-9);
        assert!((r.efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_bounded_by_critical_path_and_work() {
        for seed in 0..6 {
            let g = graph_from(15, 30, seed, seed % 2 == 0);
            let costs = unit_costs(&g);
            for p in [1usize, 2, 4, 8] {
                let r = simulate(&g, p, Mapping::Dynamic, &costs, &unit_model());
                let cp = g.critical_path_len() as f64;
                assert!(r.makespan >= cp - 1e-9, "below critical path");
                assert!(r.makespan <= g.len() as f64 + 1e-9, "above serial time");
                // Greedy list scheduling ≤ work/P + critical path.
                assert!(
                    r.makespan <= g.len() as f64 / p as f64 + cp + 1e-9,
                    "violates Graham bound (p={p}, seed={seed})"
                );
            }
        }
    }

    #[test]
    fn more_processors_never_hurt_much_and_help_wide_graphs() {
        let g = graph_from(25, 40, 3, true);
        let costs = unit_costs(&g);
        let r1 = simulate(&g, 1, Mapping::Dynamic, &costs, &unit_model());
        let r4 = simulate(&g, 4, Mapping::Dynamic, &costs, &unit_model());
        assert!(r4.makespan <= r1.makespan + 1e-9);
        if g.critical_path_len() * 2 < g.len() {
            assert!(
                r4.makespan < r1.makespan,
                "parallelism should shorten a wide DAG"
            );
        }
    }

    /// The eforest graph usually schedules faster than the S* graph; list
    /// scheduling anomalies (Graham) allow occasional per-instance losses,
    /// so the assertion is statistical, like the paper's Figures 5–6.
    #[test]
    fn eforest_graph_usually_simulates_faster_than_sstar() {
        let mut ratio_sum = 0.0;
        let mut count = 0usize;
        let mut wins_or_ties = 0usize;
        for seed in 0..10 {
            let ge = graph_from(20, 45, seed, true);
            let gs = graph_from(20, 45, seed, false);
            let ce = unit_costs(&ge);
            let cs = unit_costs(&gs);
            for p in [2usize, 4, 8] {
                let re = simulate(&ge, p, Mapping::Static1D, &ce, &unit_model());
                let rs = simulate(&gs, p, Mapping::Static1D, &cs, &unit_model());
                ratio_sum += re.makespan / rs.makespan;
                count += 1;
                if re.makespan <= rs.makespan + 1e-9 {
                    wins_or_ties += 1;
                }
            }
        }
        // Under unit costs and singleton partitions the two graphs are close
        // and Graham anomalies dominate individual instances, so the mean is
        // held to a small tolerance and the win rate to a majority rather
        // than demanding a strict average win on this tiny ensemble.
        let mean_ratio = ratio_sum / count as f64;
        assert!(
            mean_ratio <= 1.01,
            "eforest graph slower on average: mean ratio {mean_ratio}"
        );
        assert!(
            wins_or_ties * 2 >= count,
            "eforest graph lost too often: {wins_or_ties}/{count}"
        );
    }

    #[test]
    fn communication_term_charges_remote_updates_only() {
        let g = graph_from(10, 15, 7, true);
        let mut costs = unit_costs(&g);
        for c in &mut costs {
            c.comm_words = 100.0;
        }
        let model = CostModel {
            seconds_per_flop: 1.0,
            seconds_per_word: 1.0,
            task_overhead: 0.0,
            edge_latency: 0.0,
        };
        // One processor: everything local, no communication charge.
        let r1 = simulate(&g, 1, Mapping::Static1D, &costs, &model);
        assert!((r1.makespan - g.len() as f64).abs() < 1e-9);
        // Many processors: remote updates pay the 100-word charge.
        let r4 = simulate(&g, 4, Mapping::Static1D, &costs, &model);
        assert!(r4.total_work > r1.total_work);
    }

    #[test]
    fn static_order_one_proc_equals_serial_work() {
        let g = graph_from(14, 28, 4, true);
        let costs = unit_costs(&g);
        let r = simulate_static_order(&g, 1, &costs, &unit_model());
        assert!((r.makespan - g.len() as f64).abs() < 1e-9);
        assert!((r.total_work - r.makespan).abs() < 1e-9);
    }

    /// Dynamic self-scheduling with priority selection satisfies the same
    /// validity bounds as FIFO and does not lose to it on average — the
    /// scheduling claim of the executor rework, checked in the model where
    /// processor counts beyond the host's cores are observable.
    #[test]
    fn dynamic_priority_policy_beats_fifo_on_average() {
        let model = CostModel {
            seconds_per_flop: 1.0,
            seconds_per_word: 0.0,
            task_overhead: 0.1,
            edge_latency: 2.0,
        };
        let mut ratio_sum = 0.0;
        let mut count = 0usize;
        for seed in 0..10 {
            let g = graph_from(22, 48, seed, seed % 2 == 0);
            let costs = unit_costs(&g);
            for p in [2usize, 4, 8] {
                let rp = simulate_dynamic(&g, p, &costs, &model, ReadyPolicy::Priority);
                let rf = simulate_dynamic(&g, p, &costs, &model, ReadyPolicy::Fifo);
                let cp = g.critical_path_len() as f64;
                assert!(rp.makespan >= cp - 1e-9, "below critical path");
                assert!(rf.makespan >= cp - 1e-9, "below critical path");
                ratio_sum += rp.makespan / rf.makespan;
                count += 1;
            }
        }
        let mean = ratio_sum / count as f64;
        assert!(
            mean <= 1.0 + 1e-9,
            "priority policy lost to FIFO on average: {mean}"
        );
    }

    #[test]
    fn dynamic_sim_one_proc_equals_serial_work() {
        let g = graph_from(14, 28, 4, true);
        let costs = unit_costs(&g);
        for policy in [ReadyPolicy::Fifo, ReadyPolicy::Priority] {
            let r = simulate_dynamic(&g, 1, &costs, &unit_model(), policy);
            assert!((r.makespan - g.len() as f64).abs() < 1e-9, "{policy:?}");
            assert!((r.total_work - r.makespan).abs() < 1e-9, "{policy:?}");
        }
    }

    /// The FIFO inspector is a valid schedule (same bounds) and the
    /// priority inspector never loses to it on average — the scheduling
    /// claim of the executor rework, checked in the model where processor
    /// counts beyond the host's cores are observable.
    #[test]
    fn priority_order_beats_fifo_order_on_average() {
        let model = CostModel {
            seconds_per_flop: 1.0,
            seconds_per_word: 0.0,
            task_overhead: 0.1,
            edge_latency: 2.0,
        };
        let mut ratio_sum = 0.0;
        let mut count = 0usize;
        for seed in 0..10 {
            let g = graph_from(22, 48, seed, seed % 2 == 0);
            let costs = unit_costs(&g);
            for p in [2usize, 4, 8] {
                let rp = simulate_static_order(&g, p, &costs, &model);
                let rf = simulate_static_order_fifo(&g, p, &costs, &model);
                let cp = g.critical_path_len() as f64;
                assert!(rf.makespan >= cp - 1e-9, "below critical path");
                ratio_sum += rp.makespan / rf.makespan;
                count += 1;
            }
        }
        let mean = ratio_sum / count as f64;
        assert!(
            mean <= 1.0 + 1e-9,
            "priority inspector lost to FIFO on average: {mean}"
        );
    }

    #[test]
    fn static_order_respects_dependences_and_graham_bound() {
        for seed in 0..6 {
            let g = graph_from(16, 32, seed, seed % 2 == 0);
            let costs = unit_costs(&g);
            for p in [2usize, 4, 8] {
                let r = simulate_static_order(&g, p, &costs, &unit_model());
                let cp = g.critical_path_len() as f64;
                assert!(r.makespan >= cp - 1e-9);
                assert!(r.makespan <= g.len() as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn dynamic_scheduling_rewards_the_eforest_graph_under_latency() {
        // With messaging latency and a scheduler free to place tasks (the
        // RAPID emulation used for Figures 5-6), the least-dependence graph
        // must win on average: its shorter chains let ready work spread.
        let model = CostModel {
            seconds_per_flop: 1.0,
            seconds_per_word: 0.0,
            task_overhead: 0.1,
            edge_latency: 5.0,
        };
        let mut ratio_sum = 0.0;
        let mut count = 0;
        for seed in 0..8 {
            let ge = graph_from(22, 48, seed, true);
            let gs = graph_from(22, 48, seed, false);
            // The structural advantage is deterministic: the least-dependence
            // graph never carries more edges than the S* chains.
            assert!(
                ge.num_edges() <= gs.num_edges(),
                "eforest graph has more edges than S* (seed {seed})"
            );
            let ce = unit_costs(&ge);
            let cs = unit_costs(&gs);
            for p in [4usize, 8] {
                let re = simulate(&ge, p, Mapping::Dynamic, &ce, &model);
                let rs = simulate(&gs, p, Mapping::Dynamic, &cs, &model);
                ratio_sum += re.makespan / rs.makespan;
                count += 1;
            }
        }
        // List-scheduling anomalies keep individual ratios noisy; on average
        // the fewer-edge graph must at least break even under latency.
        let mean = ratio_sum / count as f64;
        assert!(
            mean <= 1.01,
            "eforest graph should not lose on average: {mean}"
        );
    }

    /// The simulator's event stream covers every task exactly once, stays
    /// within the makespan, and is non-overlapping per processor — the
    /// properties that make it comparable with the executor's trace.
    #[test]
    fn dynamic_sim_event_stream_is_a_valid_schedule() {
        let g = graph_from(18, 36, 5, true);
        let costs = unit_costs(&g);
        for policy in [ReadyPolicy::Fifo, ReadyPolicy::Priority] {
            let (r, events) = simulate_dynamic_traced(&g, 3, &costs, &unit_model(), policy);
            assert_eq!(events.len(), g.len(), "one event per task");
            let mut seen = vec![false; g.len()];
            for e in &events {
                assert!(!seen[e.task], "task scheduled twice");
                seen[e.task] = true;
                assert!(e.finish <= r.makespan + 1e-9);
                assert!(e.start <= e.finish);
            }
            for p in 0..3 {
                let mut free = 0.0;
                for e in events.iter().filter(|e| e.proc == p) {
                    assert!(e.start >= free - 1e-9, "overlap on proc {p}");
                    free = e.finish;
                }
            }
        }
    }

    #[test]
    fn busy_times_sum_to_total_work() {
        let g = graph_from(18, 35, 9, false);
        let costs = unit_costs(&g);
        let r = simulate(&g, 3, Mapping::Static1D, &costs, &unit_model());
        let busy_sum: f64 = r.busy.iter().sum();
        assert!((busy_sum - r.total_work).abs() < 1e-9);
        assert_eq!(r.busy.len(), 3);
    }
}
