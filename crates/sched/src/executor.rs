//! Multithreaded DAG executor — the RAPID substitute (DESIGN.md §5).
//!
//! Tasks are dispatched from per-worker **ready pools ordered by
//! bottom-level priority**: the priority of a task is the length of the
//! longest dependence path from it to a sink of the DAG (its *bottom
//! level*, [`TaskGraph::bottom_levels`]), so workers always prefer the task
//! deepest on the critical path. This is the same rule the static-order
//! simulator's inspector uses ([`crate::simulate_static_order`]); both get
//! their priorities from the shared [`TaskGraph::bottom_levels_with`]
//! sweep.
//!
//! Two mapping disciplines are supported:
//!
//! - [`Mapping::Static1D`] reproduces the paper's static 1D column-block
//!   mapping: every task writing block column `j` (its `Factor(j)` and all
//!   `Update(·, j)`) runs on worker `j mod P`. Each worker pops **only its
//!   own pool** — no stealing — because the mapping is what serializes all
//!   writers of a column on one worker; a stolen task could race another
//!   writer of the same column. Callers relying on Static1D for mutual
//!   exclusion (e.g. lock-free column updates) keep that guarantee.
//! - [`Mapping::Dynamic`] is the work-stealing mode: a worker pushes newly
//!   ready tasks into its own pool (locality: the successor usually reads
//!   what the worker just wrote) and, when its pool runs dry, steals the
//!   highest-priority task from the first non-empty victim pool. Tasks of
//!   one column may then run on different workers, which is safe for the
//!   numeric factorization because block columns are `RwLock`-guarded and
//!   Gilbert's disjoint-row-structure property makes concurrent updates of
//!   one column commute bitwise.
//!
//! The synchronization primitives the worker loops are built on — the
//! sleep [`Gate`], the legacy FIFO [`ReadyQueue`], the [`Countdown`] of
//! unretired tasks and the abort latch — live in [`crate::sync`], where a
//! `cfg(loom)` shim lets the loom harness model-check them (no lost
//! wakeup, abort broadcast terminates every worker, `started == retired`).
//!
//! Shutdown uses a gate (mutex + condvar) per pool owner: a pusher acquires
//! the gate lock before notifying, and a parking worker re-checks both the
//! pools and the remaining-task count under that same lock before waiting,
//! so the park/push race cannot lose a wakeup. When the last task retires,
//! the retiring worker locks every gate and broadcasts once — each parked
//! worker wakes exactly once, observes `remaining == 0`, and exits. A
//! panicking task is **contained**: the worker records a [`TaskPanic`]
//! (first panic wins), sets the abort flag, and broadcasts the same way, so
//! the remaining workers drain and exit instead of deadlocking. The
//! `_report` entry points return the panic in [`ExecReport::panic`] — no
//! unwind escapes them and no lock is poisoned; the fire-and-forget entry
//! points ([`execute`], [`execute_dag`], …) re-raise it, preserving their
//! historical semantics.
//!
//! The same abort-broadcast path also serves the **run budget**
//! ([`crate::RunBudget`]): the `_budgeted` entry points check a
//! cancellation token and a deadline at every task-acquisition boundary,
//! and can spawn a watchdog monitor that reads the per-worker heartbeat
//! epochs and aborts a run that makes no progress for
//! a full stall window. An interrupted run **drains** — workers exit at
//! their next boundary, parked workers are woken — and the reason lands in
//! [`ExecReport::interrupt`]. All checks are cooperative: a task body is
//! never killed mid-flight, so enforcement latency is bounded by the
//! longest single task.
//!
//! The previous executor — one shared FIFO queue, no priorities — is kept
//! verbatim as [`execute_dag_fifo`]/[`execute_fifo`] so benchmarks can
//! measure the scheduling improvement against an unchanged baseline.

use crate::control::{RunBudget, Supervisor};
use crate::graph::TaskGraph;
use crate::sync::{AtomicUsize, Gate, Mutex, Ordering, Park, ReadyQueue};
use crate::trace::{assemble_report, ExecReport, TaskPanic, TraceConfig, WorkerRecorder};
use crate::Task;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Best-effort extraction of a panic payload's message (the `&str`/`String`
/// cases `panic!` produces).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Task-to-worker assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// The paper's static 1D column-block mapping: `owner(j) = j mod P`.
    /// Owner-only execution — no stealing — so all writers of a column are
    /// serialized on one worker.
    Static1D,
    /// Work-stealing self-scheduling: any worker may run any task. Callers
    /// must guard shared per-column state themselves.
    Dynamic,
}

/// Ready-pool entry: max-heap by bottom-level priority, ties broken toward
/// the lower task id so pool order is reproducible.
#[derive(PartialEq, Eq)]
struct Ready {
    prio: u64,
    tid: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.prio
            .cmp(&other.prio)
            .then_with(|| other.tid.cmp(&self.tid))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Unit-weight bottom levels computed from a successor closure — the
/// priority source for [`execute_dag`], whose callers have no [`TaskGraph`].
fn unit_bottom_levels<'a, S>(n_tasks: usize, pred_counts: &[usize], successors: &S) -> Vec<u64>
where
    S: Fn(usize) -> &'a [usize],
{
    let mut indeg = pred_counts.to_vec();
    let mut queue: VecDeque<usize> = (0..n_tasks).filter(|&t| indeg[t] == 0).collect();
    let mut order = Vec::with_capacity(n_tasks);
    while let Some(t) = queue.pop_front() {
        order.push(t);
        for &s in successors(t) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    assert_eq!(order.len(), n_tasks, "task graph contains a cycle");
    let mut level = vec![1u64; n_tasks];
    for &t in order.iter().rev() {
        for &s in successors(t) {
            level[t] = level[t].max(1 + level[s]);
        }
    }
    level
}

/// Generic DAG execution core with caller-supplied scheduling priorities:
/// runs `n_tasks` tasks on `nthreads` workers, honouring the dependence
/// edges given by `successors`/`pred_counts`, always preferring the ready
/// task with the largest `priority`.
///
/// `nqueues == nthreads` selects owner-mapped execution: task `t` runs on
/// worker `queue_of(t)`, workers never steal. `nqueues == 1` selects
/// work-stealing execution: `queue_of` is ignored, newly ready tasks join
/// the discovering worker's pool, and idle workers steal.
#[allow(clippy::too_many_arguments)]
pub fn execute_dag_with_priorities<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    priority: &[u64],
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
) where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    let report = execute_dag_with_priorities_report(
        n_tasks,
        pred_counts,
        successors,
        priority,
        nthreads,
        nqueues,
        queue_of,
        runner,
        &TraceConfig::off(),
    );
    // The `_report` entry points contain worker panics; the fire-and-forget
    // entry points have no report to carry one, so re-raise.
    if let Some(p) = report.panic {
        panic!("{p}");
    }
}

/// [`execute_dag_with_priorities`] with telemetry: per-worker busy/idle/steal
/// timing, task and steal counters, and (in [`crate::TraceMode::Full`]) the
/// raw event streams for Chrome-trace export. With [`TraceConfig::off`] the
/// recorder calls reduce to a dead branch per task and the returned report
/// is empty — this is the path every untraced entry point takes.
#[allow(clippy::too_many_arguments)]
pub fn execute_dag_with_priorities_report<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    priority: &[u64],
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
    config: &TraceConfig,
) -> ExecReport
where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    execute_dag_with_priorities_report_budgeted(
        n_tasks,
        pred_counts,
        successors,
        priority,
        nthreads,
        nqueues,
        queue_of,
        runner,
        config,
        &RunBudget::default(),
    )
}

/// [`execute_dag_with_priorities_report`] bounded by a [`RunBudget`]:
/// cancellation token and deadline are checked at every task-acquisition
/// boundary, and `budget.watchdog` spawns a monitor thread that aborts the
/// run (with a [`crate::StallReport`]) when no worker makes progress for a
/// stall window. An interrupted run returns with
/// [`ExecReport::interrupt`] set; the default budget is free.
#[allow(clippy::too_many_arguments)]
pub fn execute_dag_with_priorities_report_budgeted<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    priority: &[u64],
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
    config: &TraceConfig,
    budget: &RunBudget,
) -> ExecReport
where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    let nthreads = nthreads.max(1);
    // Event timestamps measure from the shared epoch when the caller set
    // one (pipeline-aligned traces); wall-clock always from executor start.
    let start = Instant::now();
    let epoch = config.epoch.unwrap_or(start);
    if n_tasks == 0 {
        return assemble_report(0, nthreads, 0.0, config, Vec::new(), None, None);
    }
    assert!(nqueues == 1 || nqueues == nthreads, "queue/worker mismatch");
    assert_eq!(priority.len(), n_tasks, "one priority per task");
    let owner_mode = nqueues == nthreads && nthreads > 1;
    let pools: Vec<Mutex<BinaryHeap<Ready>>> = (0..nthreads)
        .map(|_| Mutex::new(BinaryHeap::new()))
        .collect();
    let gates: Vec<Gate> = (0..if owner_mode { nthreads } else { 1 })
        .map(|_| Gate::new())
        .collect();
    let indeg: Vec<AtomicUsize> = pred_counts.iter().map(|&c| AtomicUsize::new(c)).collect();
    let sup = Supervisor::new(n_tasks, nthreads, budget);
    // Drained worker recorders; locked once per worker, at exit.
    let drained = Mutex::new(Vec::with_capacity(nthreads));
    // First caught worker panic; reported through `ExecReport::panic`
    // instead of unwinding out of the scope.
    let panicked: Mutex<Option<TaskPanic>> = Mutex::new(None);
    // The run-wide wake broadcast: last retire, panic containment, and
    // budget interrupts all go through it so no worker stays parked.
    let wake_all = || {
        for g in &gates {
            g.notify_all();
        }
    };

    // Seed the pools: owners get their own roots; in stealing mode roots are
    // dealt round-robin so all workers start busy.
    for (i, (t, _)) in pred_counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == 0)
        .enumerate()
    {
        let pool = if owner_mode {
            queue_of(t)
        } else {
            i % nthreads
        };
        pools[pool].lock().push(Ready {
            prio: priority[t],
            tid: t,
        });
    }

    crossbeam::thread::scope(|scope| {
        if let Some(cfg) = budget.watchdog {
            let sup = &sup;
            let wake_all = &wake_all;
            let pools = &pools;
            scope.spawn(move |_| {
                sup.monitor(cfg, wake_all, &|| {
                    pools.iter().map(|p| p.lock().len()).collect()
                });
            });
        }
        for w in 0..nthreads {
            let pools = &pools;
            let gates = &gates;
            let indeg = &indeg;
            let sup = &sup;
            let runner = &runner;
            let successors = &successors;
            let queue_of = &queue_of;
            let priority = &priority;
            let drained = &drained;
            let panicked = &panicked;
            let wake_all = &wake_all;
            scope.spawn(move |_| {
                let mut rec = WorkerRecorder::new(w, nthreads, config, epoch);
                let my_gate = &gates[if owner_mode { w } else { 0 }];
                // The worker body proper; a closure so the recorder is
                // drained on every exit path, panicked or clean.
                let mut body = || {
                    'work: loop {
                        // Acquire a task: own pool first, then (Dynamic only)
                        // steal from the first non-empty victim. The budget
                        // check runs first, outside every lock.
                        let tid = 'acquire: loop {
                            if sup.check_budget(wake_all) {
                                return;
                            }
                            if let Some(r) = pools[w].lock().pop() {
                                break 'acquire r.tid;
                            }
                            if !owner_mode && nthreads > 1 {
                                sup.beat_scan(w);
                                let t0 = rec.begin();
                                let mut hit = None;
                                for i in 1..nthreads {
                                    let victim = (w + i) % nthreads;
                                    if let Some(r) = pools[victim].lock().pop() {
                                        hit = Some((r.tid, victim));
                                        break;
                                    }
                                }
                                match hit {
                                    Some((tid, victim)) => {
                                        rec.end_steal(t0, victim, true);
                                        break 'acquire tid;
                                    }
                                    None => rec.end_steal(t0, w, false),
                                }
                            }
                            // Park. The gate lock makes the emptiness
                            // re-check and the wait atomic against pushers
                            // and retirement — see `sync::Gate`.
                            let t0 = rec.begin();
                            sup.beat_park(w);
                            match my_gate.park_if(
                                || sup.remaining.is_done() || sup.is_aborted(),
                                || {
                                    if owner_mode {
                                        !pools[w].lock().is_empty()
                                    } else {
                                        pools.iter().any(|p| !p.lock().is_empty())
                                    }
                                },
                            ) {
                                Park::Exit => return,
                                Park::Retry => sup.beat_unpark(w),
                                Park::Waited => {
                                    rec.end_park(t0);
                                    sup.beat_unpark(w);
                                }
                            }
                        };

                        let t0 = rec.begin();
                        sup.beat_task(w, tid);
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| runner(tid))) {
                            // Containment: record the first panic for the
                            // report, then abort so no worker stays parked
                            // behind a task that will never retire. Nothing
                            // unwinds out of the scope.
                            let mut slot = panicked.lock();
                            if slot.is_none() {
                                *slot = Some(TaskPanic {
                                    worker: w,
                                    task: tid,
                                    message: panic_message(payload.as_ref()),
                                });
                            }
                            drop(slot);
                            sup.abort_for_panic(wake_all);
                            return;
                        }
                        rec.end_task(t0, tid);

                        for &s in successors(tid) {
                            if indeg[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                                let pool = if owner_mode { queue_of(s) } else { w };
                                pools[pool].lock().push(Ready {
                                    prio: priority[s],
                                    tid: s,
                                });
                                gates[if owner_mode { pool } else { 0 }].notify_one();
                            }
                        }
                        rec.count_retired();
                        if sup.remaining.retire() {
                            // Last task retired: broadcast once on every gate
                            // so each parked worker wakes exactly once and
                            // exits, and release the watchdog monitor.
                            wake_all();
                            sup.on_last_retire();
                            return;
                        }
                        continue 'work;
                    }
                };
                body();
                sup.mark_exited(w);
                drained.lock().push(rec.finish());
            });
        }
    })
    .expect("executor scope failed");
    let leftover = sup.remaining.remaining();
    let interrupt = sup.finish();
    let panicked = panicked.into_inner();
    debug_assert!(
        panicked.is_some() || interrupt.is_some() || leftover == 0,
        "clean shutdown must retire every task"
    );
    assemble_report(
        n_tasks,
        nthreads,
        start.elapsed().as_secs_f64(),
        config,
        drained.into_inner(),
        panicked,
        interrupt,
    )
}

/// [`execute_dag_with_priorities`] with priorities computed internally as
/// unit-weight bottom levels of the given DAG. Callers that already hold a
/// [`TaskGraph`] should use [`execute`], which shares the graph's own
/// [`TaskGraph::bottom_levels`].
pub fn execute_dag<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
) where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    if n_tasks == 0 {
        return;
    }
    let priority = unit_bottom_levels(n_tasks, pred_counts, &successors);
    execute_dag_with_priorities(
        n_tasks,
        pred_counts,
        successors,
        &priority,
        nthreads,
        nqueues,
        queue_of,
        runner,
    );
}

/// [`execute_dag`] with telemetry — see
/// [`execute_dag_with_priorities_report`].
#[allow(clippy::too_many_arguments)]
pub fn execute_dag_report<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
    config: &TraceConfig,
) -> ExecReport
where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    execute_dag_report_budgeted(
        n_tasks,
        pred_counts,
        successors,
        nthreads,
        nqueues,
        queue_of,
        runner,
        config,
        &RunBudget::default(),
    )
}

/// [`execute_dag_report`] bounded by a [`RunBudget`] — see
/// [`execute_dag_with_priorities_report_budgeted`].
#[allow(clippy::too_many_arguments)]
pub fn execute_dag_report_budgeted<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
    config: &TraceConfig,
    budget: &RunBudget,
) -> ExecReport
where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    if n_tasks == 0 {
        return ExecReport::default();
    }
    let priority = unit_bottom_levels(n_tasks, pred_counts, &successors);
    execute_dag_with_priorities_report_budgeted(
        n_tasks,
        pred_counts,
        successors,
        &priority,
        nthreads,
        nqueues,
        queue_of,
        runner,
        config,
        budget,
    )
}

/// Executes every task of `graph` on `nthreads` workers, honouring all
/// dependence edges, scheduling by critical-path (bottom-level) priority.
/// `runner` is invoked once per task; with [`Mapping::Static1D`] all tasks
/// with the same [`Task::home_column`] run on the same worker
/// (sequentially), matching the paper's distribution, while
/// [`Mapping::Dynamic`] lets idle workers steal ready tasks.
pub fn execute<F>(graph: &TaskGraph, nthreads: usize, mapping: Mapping, runner: F)
where
    F: Fn(Task) + Sync,
{
    let report = execute_traced(graph, nthreads, mapping, runner, &TraceConfig::off());
    if let Some(p) = report.panic {
        panic!("{p}");
    }
}

/// [`execute`] with telemetry: returns the run's [`ExecReport`] (per-worker
/// busy/idle/steal breakdown, steal/task counters, and — under
/// [`crate::TraceMode::Full`] — the raw event streams for Chrome-trace
/// export). [`TraceConfig::off`] makes this identical to [`execute`].
pub fn execute_traced<F>(
    graph: &TaskGraph,
    nthreads: usize,
    mapping: Mapping,
    runner: F,
    config: &TraceConfig,
) -> ExecReport
where
    F: Fn(Task) + Sync,
{
    execute_traced_budgeted(
        graph,
        nthreads,
        mapping,
        runner,
        config,
        &RunBudget::default(),
    )
}

/// [`execute_traced`] bounded by a [`RunBudget`]: the graph-level budgeted
/// entry point the numeric driver uses. Cancellation/deadline are observed
/// at task boundaries, the optional watchdog at its poll cadence; an
/// interrupted run drains and reports through [`ExecReport::interrupt`].
pub fn execute_traced_budgeted<F>(
    graph: &TaskGraph,
    nthreads: usize,
    mapping: Mapping,
    runner: F,
    config: &TraceConfig,
    budget: &RunBudget,
) -> ExecReport
where
    F: Fn(Task) + Sync,
{
    let nthreads = nthreads.max(1);
    if graph.is_empty() {
        return ExecReport::default();
    }
    let priority = graph.bottom_levels();
    let nqueues = match mapping {
        Mapping::Static1D => nthreads,
        Mapping::Dynamic => 1,
    };
    execute_dag_with_priorities_report_budgeted(
        graph.len(),
        graph.pred_counts(),
        |t| graph.successors(t),
        &priority,
        nthreads,
        nqueues,
        |t| match mapping {
            Mapping::Static1D => graph.task(t).home_column() % nthreads,
            Mapping::Dynamic => 0,
        },
        |t| runner(graph.task(t)),
        config,
        budget,
    )
}

// ---------------------------------------------------------------------------
// Legacy shared-FIFO executor, kept as the measurement baseline.
// ---------------------------------------------------------------------------

/// The pre-work-stealing executor: plain FIFO ready queues (one shared
/// queue for `nqueues == 1`, one per worker for `nqueues == nthreads`), no
/// scheduling priorities. Kept only so `bench/scaling` can quantify the
/// work-stealing, critical-path-priority scheduler against the original
/// design; new callers should use [`execute_dag`].
pub fn execute_dag_fifo<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
) where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    let report = execute_dag_fifo_report(
        n_tasks,
        pred_counts,
        successors,
        nthreads,
        nqueues,
        queue_of,
        runner,
        &TraceConfig::off(),
    );
    if let Some(p) = report.panic {
        panic!("{p}");
    }
}

/// [`execute_dag_fifo`] with telemetry, so the baseline's busy/idle profile
/// is measurable with the same instruments as the work-stealing executor
/// (steal counters stay zero — the FIFO discipline never steals).
#[allow(clippy::too_many_arguments)]
pub fn execute_dag_fifo_report<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
    config: &TraceConfig,
) -> ExecReport
where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    execute_dag_fifo_report_budgeted(
        n_tasks,
        pred_counts,
        successors,
        nthreads,
        nqueues,
        queue_of,
        runner,
        config,
        &RunBudget::default(),
    )
}

/// [`execute_dag_fifo_report`] bounded by a [`RunBudget`] — the baseline
/// executor honours the same cancellation/deadline/watchdog contract as the
/// work-stealing one, so robustness tests can cover both.
#[allow(clippy::too_many_arguments)]
pub fn execute_dag_fifo_report_budgeted<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
    config: &TraceConfig,
    budget: &RunBudget,
) -> ExecReport
where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    let nthreads = nthreads.max(1);
    // Event timestamps measure from the shared epoch when the caller set
    // one (pipeline-aligned traces); wall-clock always from executor start.
    let start = Instant::now();
    let epoch = config.epoch.unwrap_or(start);
    if n_tasks == 0 {
        return assemble_report(0, nthreads, 0.0, config, Vec::new(), None, None);
    }
    assert!(nqueues == 1 || nqueues == nthreads, "queue/worker mismatch");
    let queues: Vec<ReadyQueue> = (0..nqueues).map(|_| ReadyQueue::new()).collect();
    let indeg: Vec<AtomicUsize> = pred_counts.iter().map(|&c| AtomicUsize::new(c)).collect();
    let sup = Supervisor::new(n_tasks, nthreads, budget);
    let drained = Mutex::new(Vec::with_capacity(nthreads));
    let panicked: Mutex<Option<TaskPanic>> = Mutex::new(None);
    let wake_all = || {
        for q in &queues {
            q.wake_all();
        }
    };

    for (t, &c) in pred_counts.iter().enumerate() {
        if c == 0 {
            queues[queue_of(t)].push(t);
        }
    }

    crossbeam::thread::scope(|scope| {
        if let Some(cfg) = budget.watchdog {
            let sup = &sup;
            let wake_all = &wake_all;
            let queues = &queues;
            scope.spawn(move |_| {
                sup.monitor(cfg, wake_all, &|| queues.iter().map(|q| q.len()).collect());
            });
        }
        for w in 0..nthreads {
            let queues = &queues;
            let indeg = &indeg;
            let sup = &sup;
            let runner = &runner;
            let successors = &successors;
            let queue_of = &queue_of;
            let drained = &drained;
            let panicked = &panicked;
            let wake_all = &wake_all;
            let my_queue = &queues[if nqueues == 1 { 0 } else { w }];
            scope.spawn(move |_| {
                let mut rec = WorkerRecorder::new(w, nthreads, config, epoch);
                loop {
                    // Budget check first, outside the deque lock: the trip
                    // path's wake broadcast locks the deque, so checking
                    // inside `pop` would deadlock.
                    if sup.check_budget(wake_all) {
                        break;
                    }
                    let mut park_t0 = None;
                    let popped = my_queue.pop(
                        || sup.is_aborted(),
                        || sup.remaining.is_done(),
                        |parking| {
                            if parking {
                                sup.beat_park(w);
                                park_t0 = Some(rec.begin());
                            } else {
                                if let Some(t0) = park_t0.take() {
                                    rec.end_park(t0);
                                }
                                sup.beat_unpark(w);
                            }
                        },
                    );
                    let Some(tid) = popped else { break };
                    let t0 = rec.begin();
                    sup.beat_task(w, tid);
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| runner(tid))) {
                        // Same containment contract as the priority
                        // executor: record, abort, wake everyone, exit.
                        let mut slot = panicked.lock();
                        if slot.is_none() {
                            *slot = Some(TaskPanic {
                                worker: w,
                                task: tid,
                                message: panic_message(payload.as_ref()),
                            });
                        }
                        drop(slot);
                        sup.abort_for_panic(wake_all);
                        break;
                    }
                    rec.end_task(t0, tid);
                    for &s in successors(tid) {
                        if indeg[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                            queues[queue_of(s)].push(s);
                        }
                    }
                    rec.count_retired();
                    if sup.remaining.retire() {
                        wake_all();
                        sup.on_last_retire();
                    }
                }
                sup.mark_exited(w);
                drained.lock().push(rec.finish());
            });
        }
    })
    .expect("executor scope failed");
    let leftover = sup.remaining.remaining();
    let interrupt = sup.finish();
    let panicked = panicked.into_inner();
    debug_assert!(
        panicked.is_some() || interrupt.is_some() || leftover == 0,
        "clean shutdown must retire every task"
    );
    assemble_report(
        n_tasks,
        nthreads,
        start.elapsed().as_secs_f64(),
        config,
        drained.into_inner(),
        panicked,
        interrupt,
    )
}

/// [`execute`] on the legacy FIFO executor ([`execute_dag_fifo`]) — the
/// benchmark baseline for the work-stealing scheduler.
pub fn execute_fifo<F>(graph: &TaskGraph, nthreads: usize, mapping: Mapping, runner: F)
where
    F: Fn(Task) + Sync,
{
    let report = execute_fifo_traced(graph, nthreads, mapping, runner, &TraceConfig::off());
    if let Some(p) = report.panic {
        panic!("{p}");
    }
}

/// [`execute_fifo`] with telemetry — the baseline counterpart of
/// [`execute_traced`].
pub fn execute_fifo_traced<F>(
    graph: &TaskGraph,
    nthreads: usize,
    mapping: Mapping,
    runner: F,
    config: &TraceConfig,
) -> ExecReport
where
    F: Fn(Task) + Sync,
{
    execute_fifo_traced_budgeted(
        graph,
        nthreads,
        mapping,
        runner,
        config,
        &RunBudget::default(),
    )
}

/// [`execute_fifo_traced`] bounded by a [`RunBudget`] — the baseline
/// counterpart of [`execute_traced_budgeted`].
pub fn execute_fifo_traced_budgeted<F>(
    graph: &TaskGraph,
    nthreads: usize,
    mapping: Mapping,
    runner: F,
    config: &TraceConfig,
    budget: &RunBudget,
) -> ExecReport
where
    F: Fn(Task) + Sync,
{
    let nthreads = nthreads.max(1);
    if graph.is_empty() {
        return ExecReport::default();
    }
    let nqueues = match mapping {
        Mapping::Static1D => nthreads,
        Mapping::Dynamic => 1,
    };
    execute_dag_fifo_report_budgeted(
        graph.len(),
        graph.pred_counts(),
        |t| graph.successors(t),
        nthreads,
        nqueues,
        |t| match mapping {
            Mapping::Static1D => graph.task(t).home_column() % nthreads,
            Mapping::Dynamic => 0,
        },
        |t| runner(graph.task(t)),
        config,
        budget,
    )
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::control::{CancelToken, Interrupt, WatchdogConfig};
    use crate::graph::{build_eforest_graph, build_sstar_graph};
    use parking_lot::Mutex as PlMutex;
    use splu_sparse::SparsityPattern;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::BlockStructure;
    use splu_symbolic::Partition;
    use std::time::Duration;

    fn random_graph(n: usize, extra: usize, seed: u64) -> TaskGraph {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for _ in 0..extra {
            entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        let p = SparsityPattern::from_entries(n, n, entries).unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(n));
        if seed.is_multiple_of(2) {
            build_eforest_graph(&bs)
        } else {
            build_sstar_graph(&bs)
        }
    }

    /// Runs a graph and records the completion order; asserts every task ran
    /// exactly once, no task ran before a predecessor, and the telemetry
    /// counters are consistent (started == retired == n_tasks).
    fn run_and_check(graph: &TaskGraph, nthreads: usize, mapping: Mapping) {
        let log = PlMutex::new(Vec::<Task>::new());
        let report = execute_traced(
            graph,
            nthreads,
            mapping,
            |t| {
                log.lock().push(t);
            },
            &crate::trace::TraceConfig::counters(),
        );
        report.stats.assert_consistent();
        assert_eq!(report.stats.nthreads, nthreads);
        assert!(report.trace.is_none(), "counters mode keeps no events");
        assert!(
            report.interrupt.is_none(),
            "unbudgeted runs never interrupt"
        );
        let log = log.into_inner();
        assert_eq!(log.len(), graph.len(), "every task runs exactly once");
        let mut pos = std::collections::HashMap::new();
        for (i, t) in log.iter().enumerate() {
            assert!(pos.insert(*t, i).is_none(), "task ran twice: {t:?}");
        }
        for tid in 0..graph.len() {
            for &s in graph.successors(tid) {
                assert!(
                    pos[&graph.task(tid)] < pos[&graph.task(s)],
                    "dependence violated: {:?} after {:?}",
                    graph.task(tid),
                    graph.task(s)
                );
            }
        }
    }

    #[test]
    fn executes_all_tasks_in_dependence_order_static() {
        for seed in 0..6 {
            let g = random_graph(15, 30, seed);
            for p in [1, 2, 4] {
                run_and_check(&g, p, Mapping::Static1D);
            }
        }
    }

    #[test]
    fn executes_all_tasks_in_dependence_order_dynamic() {
        for seed in 0..6 {
            let g = random_graph(15, 30, seed);
            for p in [1, 2, 4] {
                run_and_check(&g, p, Mapping::Dynamic);
            }
        }
    }

    #[test]
    fn fifo_baseline_still_executes_in_dependence_order() {
        for seed in 0..4 {
            let g = random_graph(15, 30, seed);
            for (p, mapping) in [(2, Mapping::Static1D), (4, Mapping::Dynamic)] {
                let log = PlMutex::new(Vec::<Task>::new());
                let report = execute_fifo_traced(
                    &g,
                    p,
                    mapping,
                    |t| {
                        log.lock().push(t);
                    },
                    &crate::trace::TraceConfig::counters(),
                );
                report.stats.assert_consistent();
                assert_eq!(
                    report.stats.steals_total(),
                    0,
                    "the FIFO discipline never steals"
                );
                assert_eq!(log.into_inner().len(), g.len());
            }
        }
    }

    /// Full tracing yields one Task event per task with monotone per-worker
    /// timestamps, and the busy total matches the sum of task durations.
    #[test]
    fn full_tracing_yields_consistent_event_streams() {
        use crate::trace::{EventKind, TraceConfig};
        let g = random_graph(18, 40, 4);
        for mapping in [Mapping::Static1D, Mapping::Dynamic] {
            let report = execute_traced(
                &g,
                4,
                mapping,
                |_| std::thread::sleep(std::time::Duration::from_micros(20)),
                &TraceConfig::full(g.len(), 4),
            );
            report.stats.assert_consistent();
            let trace = report.trace.expect("full mode keeps events");
            let task_events: Vec<_> = trace
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Task { .. }))
                .collect();
            assert_eq!(task_events.len(), g.len(), "one Task event per task");
            for w in 0..4 {
                let mut last = 0u64;
                for e in trace.events.iter().filter(|e| e.worker == w) {
                    assert!(e.start_ns >= last, "worker {w} timestamps not monotone");
                    assert!(e.end_ns >= e.start_ns);
                    last = e.start_ns;
                }
            }
            let busy_from_events: f64 = task_events
                .iter()
                .map(|e| (e.end_ns - e.start_ns) as f64 / 1e9)
                .sum();
            assert!(
                (busy_from_events - report.stats.busy_total()).abs() < 1e-6,
                "busy aggregate disagrees with the event stream"
            );
        }
    }

    /// In Dynamic mode at several threads with serialized tasks, at least
    /// one steal is observed and in/out counts balance per victim.
    #[test]
    fn steals_are_counted_and_balanced() {
        use crate::trace::TraceConfig;
        // A wide graph (many roots) so workers contend for seeded pools.
        let g = random_graph(30, 20, 6);
        let report = execute_traced(
            &g,
            4,
            Mapping::Dynamic,
            |_| std::thread::sleep(std::time::Duration::from_micros(50)),
            &TraceConfig::counters(),
        );
        report.stats.assert_consistent();
        let in_total: u64 = report.stats.workers.iter().map(|w| w.steals_in).sum();
        let out_total: u64 = report.stats.workers.iter().map(|w| w.steals_out).sum();
        assert_eq!(in_total, out_total);
        let attempts: u64 = report.stats.workers.iter().map(|w| w.steal_attempts).sum();
        assert!(attempts >= in_total);
    }

    #[test]
    fn static_mapping_serializes_columns() {
        // All tasks with the same home column must run on the same worker:
        // observable as: per column, completions are totally ordered even
        // with many threads. We verify via a per-column reentrancy flag.
        let g = random_graph(20, 50, 2);
        let ncols = g.num_block_cols();
        let in_flight: Vec<AtomicUsize> = (0..ncols).map(|_| AtomicUsize::new(0)).collect();
        execute(&g, 4, Mapping::Static1D, |t| {
            let c = t.home_column();
            let prev = in_flight[c].fetch_add(1, Ordering::SeqCst);
            assert_eq!(prev, 0, "two tasks of column {c} ran concurrently");
            std::thread::sleep(std::time::Duration::from_micros(50));
            in_flight[c].fetch_sub(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let p = SparsityPattern::empty(0, 0);
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::from_starts(vec![0]));
        let g = build_eforest_graph(&bs);
        execute(&g, 3, Mapping::Static1D, |_| panic!("no tasks expected"));
    }

    #[test]
    fn more_threads_than_tasks() {
        let g = random_graph(3, 2, 5);
        run_and_check(&g, 16, Mapping::Static1D);
        run_and_check(&g, 16, Mapping::Dynamic);
    }

    #[test]
    fn higher_priority_root_runs_first_on_one_worker() {
        // Chain F(0) → U(0,1) → F(1) plus isolated F(2): on one worker the
        // chain head (bottom level 3) must be taken before the isolated
        // task (bottom level 1), whatever the seeding order.
        let p = SparsityPattern::from_entries(3, 3, vec![(0, 0), (1, 0), (1, 1), (2, 2)]).unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(3));
        let g = build_eforest_graph(&bs);
        let levels = g.bottom_levels();
        let log = PlMutex::new(Vec::<usize>::new());
        execute_dag_with_priorities(
            g.len(),
            g.pred_counts(),
            |t| g.successors(t),
            &levels,
            1,
            1,
            |_| 0,
            |t| log.lock().push(t),
        );
        let order = log.into_inner();
        let pos = |tid: usize| order.iter().position(|&t| t == tid).unwrap();
        // The deepest root (F(0), level 3) precedes the shallow root (F(2)).
        assert!(pos(g.factor_id(0)) < pos(g.factor_id(2)));
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let g = random_graph(12, 24, 3);
        let hit = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            execute(&g, 4, Mapping::Dynamic, |_| {
                if hit.fetch_add(1, Ordering::SeqCst) == 2 {
                    panic!("injected task failure");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
    }

    /// Tentpole contract: the `_report` entry points contain worker panics —
    /// the run returns normally with [`ExecReport::panic`] set to the first
    /// caught panic, at every thread count and mapping, with no hang.
    #[test]
    fn contained_panic_is_reported_not_raised() {
        let g = random_graph(12, 24, 3);
        for mapping in [Mapping::Static1D, Mapping::Dynamic] {
            for p in [1, 2, 4, 8] {
                let hit = AtomicUsize::new(0);
                let report = execute_traced(
                    &g,
                    p,
                    mapping,
                    |_| {
                        if hit.fetch_add(1, Ordering::SeqCst) == 2 {
                            panic!("injected task failure");
                        }
                    },
                    &crate::trace::TraceConfig::counters(),
                );
                let tp = report.panic.expect("panic must land in the report");
                assert_eq!(tp.message, "injected task failure");
                assert!(tp.worker < p, "worker id in range");
                assert!(tp.task < g.len(), "task id in range");
            }
        }
    }

    /// Same containment contract on the legacy FIFO executor, plus the
    /// re-raising void wrapper.
    #[test]
    fn fifo_contained_panic_is_reported_not_raised() {
        let g = random_graph(12, 24, 3);
        for mapping in [Mapping::Static1D, Mapping::Dynamic] {
            for p in [1, 2, 4, 8] {
                let hit = AtomicUsize::new(0);
                let report = execute_fifo_traced(
                    &g,
                    p,
                    mapping,
                    |_| {
                        if hit.fetch_add(1, Ordering::SeqCst) == 2 {
                            panic!("injected task failure");
                        }
                    },
                    &crate::trace::TraceConfig::counters(),
                );
                let tp = report.panic.expect("panic must land in the report");
                assert_eq!(tp.message, "injected task failure");
            }
        }
        let hit = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            execute_fifo(&g, 4, Mapping::Dynamic, |_| {
                if hit.fetch_add(1, Ordering::SeqCst) == 2 {
                    panic!("injected task failure");
                }
            });
        }));
        assert!(result.is_err(), "void wrapper must re-raise");
    }

    /// A panic on the very first task must not hang workers that are
    /// parked waiting for successors that will never become ready — stress
    /// both executors' abort/broadcast path.
    #[test]
    fn panic_on_first_task_leaves_no_parked_worker() {
        // A chain graph: only one task is ever ready, so 7 of 8 workers
        // are parked when the panic fires.
        let n = 8;
        let entries: Vec<(usize, usize)> = (0..n)
            .map(|i| (i, i))
            .chain((1..n).map(|i| (i, i - 1)))
            .collect();
        let p = SparsityPattern::from_entries(n, n, entries).unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(n));
        let g = build_eforest_graph(&bs);
        for _ in 0..50 {
            let report = execute_traced(
                &g,
                8,
                Mapping::Dynamic,
                |_| panic!("first task fails"),
                &crate::trace::TraceConfig::off(),
            );
            assert!(report.panic.is_some());
            let report = execute_fifo_traced(
                &g,
                8,
                Mapping::Dynamic,
                |_| panic!("first task fails"),
                &crate::trace::TraceConfig::off(),
            );
            assert!(report.panic.is_some());
        }
    }

    /// After a contained panic the same executor state types are reusable —
    /// nothing is poisoned (parking_lot locks never poison; this guards the
    /// contract against a future std-Mutex regression).
    #[test]
    fn executor_is_reusable_after_contained_panic() {
        let g = random_graph(12, 24, 3);
        let report = execute_traced(
            &g,
            4,
            Mapping::Dynamic,
            |_| panic!("boom"),
            &crate::trace::TraceConfig::off(),
        );
        assert!(report.panic.is_some());
        // A clean run right after must still retire every task.
        run_and_check(&g, 4, Mapping::Dynamic);
    }

    /// Satellite regression: shutdown must wake a parked worker exactly once
    /// — looping tiny and empty graphs at 8 threads would hang (or panic on
    /// a double-wake use-after-retire) if the last-retire broadcast raced
    /// the park re-check.
    #[test]
    fn shutdown_stress_one_column_and_empty_graphs_at_8_threads() {
        let one = {
            let p = SparsityPattern::from_entries(1, 1, vec![(0, 0)]).unwrap();
            let f = static_symbolic_factorization(&p).unwrap();
            let bs = BlockStructure::new(&f, Partition::singletons(1));
            build_eforest_graph(&bs)
        };
        assert_eq!(one.len(), 1, "one Factor task");
        let empty = {
            let p = SparsityPattern::empty(0, 0);
            let f = static_symbolic_factorization(&p).unwrap();
            let bs = BlockStructure::new(&f, Partition::from_starts(vec![0]));
            build_eforest_graph(&bs)
        };
        for round in 0..200 {
            let ran = AtomicUsize::new(0);
            let mapping = if round % 2 == 0 {
                Mapping::Dynamic
            } else {
                Mapping::Static1D
            };
            execute(&one, 8, mapping, |_| {
                ran.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(ran.load(Ordering::SeqCst), 1, "round {round}");
            execute(&empty, 8, mapping, |_| panic!("no tasks expected"));
        }
    }

    // -- run-budget coverage (cancellation / deadline / watchdog) --

    /// A token armed to trip at the very first checkpoint stops the run
    /// before any task starts: the interrupt carries the full pending
    /// count, no task runs, nothing hangs — at every thread count, both
    /// mappings, both executors.
    #[test]
    fn pre_tripped_token_interrupts_before_any_task() {
        let g = random_graph(12, 24, 3);
        for mapping in [Mapping::Static1D, Mapping::Dynamic] {
            for p in [1, 2, 4, 8] {
                for fifo in [false, true] {
                    let token = CancelToken::new();
                    token.cancel_after_checkpoints(0);
                    let budget = RunBudget::unbounded().with_token(token.clone());
                    let ran = AtomicUsize::new(0);
                    let runner = |_t: Task| {
                        ran.fetch_add(1, Ordering::SeqCst);
                    };
                    let report = if fifo {
                        execute_fifo_traced_budgeted(
                            &g,
                            p,
                            mapping,
                            runner,
                            &TraceConfig::off(),
                            &budget,
                        )
                    } else {
                        execute_traced_budgeted(
                            &g,
                            p,
                            mapping,
                            runner,
                            &TraceConfig::off(),
                            &budget,
                        )
                    };
                    assert_eq!(
                        report.interrupt,
                        Some(Interrupt::Cancelled {
                            tasks_pending: g.len()
                        }),
                        "fifo={fifo} p={p} {mapping:?}"
                    );
                    assert_eq!(ran.load(Ordering::SeqCst), 0, "no task may start");
                    assert!(report.panic.is_none());
                    assert!(token.is_cancelled());
                }
            }
        }
    }

    /// An already-expired deadline interrupts the same way.
    #[test]
    fn expired_deadline_interrupts_before_any_task() {
        let g = random_graph(12, 24, 3);
        let budget = RunBudget::unbounded().with_deadline(Instant::now() - Duration::from_secs(1));
        let report = execute_traced_budgeted(
            &g,
            4,
            Mapping::Dynamic,
            |_| {},
            &TraceConfig::off(),
            &budget,
        );
        assert_eq!(
            report.interrupt,
            Some(Interrupt::DeadlineExceeded {
                tasks_pending: g.len()
            })
        );
    }

    /// A token cancelled midway through the run still drains cleanly: the
    /// run returns (no hang), reports the interrupt, and the retired count
    /// never exceeds the DAG size.
    #[test]
    fn mid_run_cancellation_drains() {
        let g = random_graph(20, 40, 2);
        for trip_at in [1, 3, 7, 100] {
            let token = CancelToken::new();
            token.cancel_after_checkpoints(trip_at);
            let budget = RunBudget::unbounded().with_token(token);
            let report = execute_traced_budgeted(
                &g,
                4,
                Mapping::Dynamic,
                |_| std::thread::sleep(Duration::from_micros(20)),
                &TraceConfig::counters(),
                &budget,
            );
            assert!(report.panic.is_none());
            assert!(report.stats.tasks_retired <= g.len() as u64);
            match report.interrupt {
                Some(Interrupt::Cancelled { tasks_pending }) => {
                    assert!(tasks_pending >= 1 && tasks_pending <= g.len());
                }
                // With a large trip count the run may finish first.
                None => assert_eq!(report.stats.tasks_retired, g.len() as u64),
                other => panic!("unexpected interrupt {other:?}"),
            }
        }
    }

    /// A completed run is never stamped with a late cancellation: cancel
    /// the token from the runner of the last task — by the time any worker
    /// re-checks the budget, `remaining == 0` and the check is inert.
    #[test]
    fn cancel_during_last_task_yields_clean_run() {
        let one = {
            let p = SparsityPattern::from_entries(1, 1, vec![(0, 0)]).unwrap();
            let f = static_symbolic_factorization(&p).unwrap();
            let bs = BlockStructure::new(&f, Partition::singletons(1));
            build_eforest_graph(&bs)
        };
        for _ in 0..100 {
            let token = CancelToken::new();
            let t2 = token.clone();
            let budget = RunBudget::unbounded().with_token(token);
            let report = execute_traced_budgeted(
                &one,
                4,
                Mapping::Dynamic,
                move |_| t2.cancel(),
                &TraceConfig::counters(),
                &budget,
            );
            assert!(report.interrupt.is_none(), "finished run must stay clean");
            report.stats.assert_consistent();
        }
    }

    /// Watchdog: a task that never returns on its own (it spins until the
    /// run's token is cancelled) freezes the progress signature; the
    /// monitor must declare a stall, trip the abort — which cancels the
    /// token, releasing the spinning task — and the report must carry the
    /// per-worker snapshots.
    #[test]
    fn watchdog_reports_stall_and_releases_cooperative_task() {
        let n = 6;
        let entries: Vec<(usize, usize)> = (0..n)
            .map(|i| (i, i))
            .chain((1..n).map(|i| (i, i - 1)))
            .collect();
        let p = SparsityPattern::from_entries(n, n, entries).unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(n));
        let g = build_eforest_graph(&bs);
        for fifo in [false, true] {
            let token = CancelToken::new();
            let t2 = token.clone();
            let budget = RunBudget::unbounded()
                .with_token(token.clone())
                .with_watchdog(WatchdogConfig::new(Duration::from_millis(50)));
            // First task stalls until cancelled; the rest are instant.
            let first = AtomicUsize::new(0);
            let runner = move |_t: Task| {
                if first.fetch_add(1, Ordering::SeqCst) == 0 {
                    while !t2.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            };
            let report = if fifo {
                execute_fifo_traced_budgeted(
                    &g,
                    2,
                    Mapping::Dynamic,
                    runner,
                    &TraceConfig::off(),
                    &budget,
                )
            } else {
                execute_traced_budgeted(
                    &g,
                    2,
                    Mapping::Dynamic,
                    runner,
                    &TraceConfig::off(),
                    &budget,
                )
            };
            match report.interrupt {
                Some(Interrupt::Stalled(r)) => {
                    assert!(r.stalled_for >= Duration::from_millis(50));
                    assert!(r.tasks_pending >= 1);
                    assert_eq!(r.workers.len(), 2);
                    assert!(!r.queue_depths.is_empty());
                }
                other => panic!("fifo={fifo}: expected stall, got {other:?}"),
            }
            assert!(token.is_cancelled(), "stall trip must cancel the token");
        }
    }

    /// Watchdog overhead sanity: with the monitor armed but the run
    /// healthy, every task retires and no interrupt is reported.
    #[test]
    fn watchdog_stays_quiet_on_a_healthy_run() {
        let g = random_graph(15, 30, 0);
        let budget =
            RunBudget::unbounded().with_watchdog(WatchdogConfig::new(Duration::from_secs(5)));
        let report = execute_traced_budgeted(
            &g,
            4,
            Mapping::Dynamic,
            |_| {},
            &TraceConfig::counters(),
            &budget,
        );
        assert!(report.interrupt.is_none());
        report.stats.assert_consistent();
    }
}
