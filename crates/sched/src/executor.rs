//! Multithreaded DAG executor — the RAPID substitute (DESIGN.md §5).
//!
//! The paper schedules the task graph with the RAPID run-time system using a
//! static 1D column-block mapping: every task writing block column `j`
//! (its `Factor(j)` and all `Update(·, j)`) runs on processor
//! `j mod P`. [`Mapping::Static1D`] reproduces that discipline with one
//! ready-queue per worker; because all writers of a column share a worker,
//! no two tasks ever race on the same column data. [`Mapping::Dynamic`]
//! (shared ready queue, any worker takes any task) is provided as the
//! ablation the paper's future-work section hints at — callers must then
//! guard per-column state themselves.

use crate::graph::TaskGraph;
use crate::Task;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Task-to-worker assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// The paper's static 1D column-block mapping: `owner(j) = j mod P`.
    Static1D,
    /// A single shared ready queue; workers self-schedule.
    Dynamic,
}

struct ReadyQueue {
    deque: Mutex<VecDeque<usize>>,
    cv: Condvar,
}

impl ReadyQueue {
    fn new() -> Self {
        ReadyQueue {
            deque: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, t: usize) {
        self.deque.lock().push_back(t);
        self.cv.notify_one();
    }

    /// Pops a task, blocking until one arrives or all work is done.
    fn pop(&self, remaining: &AtomicUsize) -> Option<usize> {
        let mut q = self.deque.lock();
        loop {
            if let Some(t) = q.pop_front() {
                return Some(t);
            }
            if remaining.load(Ordering::Acquire) == 0 {
                return None;
            }
            self.cv.wait(&mut q);
        }
    }

    fn wake_all(&self) {
        self.cv.notify_all();
    }
}

/// Generic DAG execution core: runs `n_tasks` tasks on `nthreads` workers,
/// honouring the dependence edges given by `successors`/`pred_counts`.
/// Tasks are dispatched by id; `queue_of(tid)` selects the ready queue
/// (and thereby the worker) a task runs on, with `nqueues == nthreads` for
/// owner-mapped execution or `nqueues == 1` for a shared queue.
pub fn execute_dag<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
) where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    let nthreads = nthreads.max(1);
    if n_tasks == 0 {
        return;
    }
    assert!(nqueues == 1 || nqueues == nthreads, "queue/worker mismatch");
    let queues: Vec<ReadyQueue> = (0..nqueues).map(|_| ReadyQueue::new()).collect();
    let indeg: Vec<AtomicUsize> = pred_counts.iter().map(|&c| AtomicUsize::new(c)).collect();
    let remaining = AtomicUsize::new(n_tasks);

    for (t, &c) in pred_counts.iter().enumerate() {
        if c == 0 {
            queues[queue_of(t)].push(t);
        }
    }

    crossbeam::thread::scope(|scope| {
        for w in 0..nthreads {
            let queues = &queues;
            let indeg = &indeg;
            let remaining = &remaining;
            let runner = &runner;
            let successors = &successors;
            let queue_of = &queue_of;
            let my_queue = &queues[if nqueues == 1 { 0 } else { w }];
            scope.spawn(move |_| {
                while let Some(tid) = my_queue.pop(remaining) {
                    runner(tid);
                    for &s in successors(tid) {
                        if indeg[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                            queues[queue_of(s)].push(s);
                        }
                    }
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        for q in queues {
                            q.wake_all();
                        }
                    }
                }
            });
        }
    })
    .expect("executor worker panicked");
    debug_assert_eq!(remaining.load(Ordering::Acquire), 0);
}

/// Executes every task of `graph` on `nthreads` workers, honouring all
/// dependence edges. `runner` is invoked once per task; with
/// [`Mapping::Static1D`] all tasks with the same
/// [`Task::home_column`] run on the same worker (sequentially), matching the
/// paper's distribution.
pub fn execute<F>(graph: &TaskGraph, nthreads: usize, mapping: Mapping, runner: F)
where
    F: Fn(Task) + Sync,
{
    let nthreads = nthreads.max(1);
    let nqueues = match mapping {
        Mapping::Static1D => nthreads,
        Mapping::Dynamic => 1,
    };
    execute_dag(
        graph.len(),
        graph.pred_counts(),
        |t| graph.successors(t),
        nthreads,
        nqueues,
        |t| match mapping {
            Mapping::Static1D => graph.task(t).home_column() % nthreads,
            Mapping::Dynamic => 0,
        },
        |t| runner(graph.task(t)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build_eforest_graph, build_sstar_graph};
    use parking_lot::Mutex as PlMutex;
    use splu_sparse::SparsityPattern;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::BlockStructure;
    use splu_symbolic::Partition;

    fn random_graph(n: usize, extra: usize, seed: u64) -> TaskGraph {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for _ in 0..extra {
            entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        let p = SparsityPattern::from_entries(n, n, entries).unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(n));
        if seed.is_multiple_of(2) {
            build_eforest_graph(&bs)
        } else {
            build_sstar_graph(&bs)
        }
    }

    /// Runs a graph and records the completion order; asserts every task ran
    /// exactly once and no task ran before a predecessor.
    fn run_and_check(graph: &TaskGraph, nthreads: usize, mapping: Mapping) {
        let log = PlMutex::new(Vec::<Task>::new());
        execute(graph, nthreads, mapping, |t| {
            log.lock().push(t);
        });
        let log = log.into_inner();
        assert_eq!(log.len(), graph.len(), "every task runs exactly once");
        let mut pos = std::collections::HashMap::new();
        for (i, t) in log.iter().enumerate() {
            assert!(pos.insert(*t, i).is_none(), "task ran twice: {t:?}");
        }
        for tid in 0..graph.len() {
            for &s in graph.successors(tid) {
                assert!(
                    pos[&graph.task(tid)] < pos[&graph.task(s)],
                    "dependence violated: {:?} after {:?}",
                    graph.task(tid),
                    graph.task(s)
                );
            }
        }
    }

    #[test]
    fn executes_all_tasks_in_dependence_order_static() {
        for seed in 0..6 {
            let g = random_graph(15, 30, seed);
            for p in [1, 2, 4] {
                run_and_check(&g, p, Mapping::Static1D);
            }
        }
    }

    #[test]
    fn executes_all_tasks_in_dependence_order_dynamic() {
        for seed in 0..6 {
            let g = random_graph(15, 30, seed);
            for p in [1, 2, 4] {
                run_and_check(&g, p, Mapping::Dynamic);
            }
        }
    }

    #[test]
    fn static_mapping_serializes_columns() {
        // All tasks with the same home column must run on the same worker:
        // observable as: per column, completions are totally ordered even
        // with many threads. We verify via a per-column reentrancy flag.
        let g = random_graph(20, 50, 2);
        let ncols = g.num_block_cols();
        let in_flight: Vec<AtomicUsize> = (0..ncols).map(|_| AtomicUsize::new(0)).collect();
        execute(&g, 4, Mapping::Static1D, |t| {
            let c = t.home_column();
            let prev = in_flight[c].fetch_add(1, Ordering::SeqCst);
            assert_eq!(prev, 0, "two tasks of column {c} ran concurrently");
            std::thread::sleep(std::time::Duration::from_micros(50));
            in_flight[c].fetch_sub(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let p = SparsityPattern::empty(0, 0);
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::from_starts(vec![0]));
        let g = build_eforest_graph(&bs);
        execute(&g, 3, Mapping::Static1D, |_| panic!("no tasks expected"));
    }

    #[test]
    fn more_threads_than_tasks() {
        let g = random_graph(3, 2, 5);
        run_and_check(&g, 16, Mapping::Static1D);
        run_and_check(&g, 16, Mapping::Dynamic);
    }
}
