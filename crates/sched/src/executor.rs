//! Multithreaded DAG executor — the RAPID substitute (DESIGN.md §5).
//!
//! Tasks are dispatched from per-worker **ready pools ordered by
//! bottom-level priority**: the priority of a task is the length of the
//! longest dependence path from it to a sink of the DAG (its *bottom
//! level*, [`TaskGraph::bottom_levels`]), so workers always prefer the task
//! deepest on the critical path. This is the same rule the static-order
//! simulator's inspector uses ([`crate::simulate_static_order`]); both get
//! their priorities from the shared [`TaskGraph::bottom_levels_with`]
//! sweep.
//!
//! Two mapping disciplines are supported:
//!
//! - [`Mapping::Static1D`] reproduces the paper's static 1D column-block
//!   mapping: every task writing block column `j` (its `Factor(j)` and all
//!   `Update(·, j)`) runs on worker `j mod P`. Each worker pops **only its
//!   own pool** — no stealing — because the mapping is what serializes all
//!   writers of a column on one worker; a stolen task could race another
//!   writer of the same column. Callers relying on Static1D for mutual
//!   exclusion (e.g. lock-free column updates) keep that guarantee.
//! - [`Mapping::Dynamic`] is the work-stealing mode: a worker pushes newly
//!   ready tasks into its own pool (locality: the successor usually reads
//!   what the worker just wrote) and, when its pool runs dry, steals the
//!   highest-priority task from the first non-empty victim pool. Tasks of
//!   one column may then run on different workers, which is safe for the
//!   numeric factorization because block columns are `RwLock`-guarded and
//!   Gilbert's disjoint-row-structure property makes concurrent updates of
//!   one column commute bitwise.
//!
//! Shutdown uses a gate (mutex + condvar) per pool owner: a pusher acquires
//! the gate lock before notifying, and a parking worker re-checks both the
//! pools and the remaining-task count under that same lock before waiting,
//! so the park/push race cannot lose a wakeup. When the last task retires,
//! the retiring worker locks every gate and broadcasts once — each parked
//! worker wakes exactly once, observes `remaining == 0`, and exits. A
//! panicking task is **contained**: the worker records a [`TaskPanic`]
//! (first panic wins), sets the abort flag, and broadcasts the same way, so
//! the remaining workers drain and exit instead of deadlocking. The
//! `_report` entry points return the panic in [`ExecReport::panic`] — no
//! unwind escapes them and no lock is poisoned; the fire-and-forget entry
//! points ([`execute`], [`execute_dag`], …) re-raise it, preserving their
//! historical semantics.
//!
//! The previous executor — one shared FIFO queue, no priorities — is kept
//! verbatim as [`execute_dag_fifo`]/[`execute_fifo`] so benchmarks can
//! measure the scheduling improvement against an unchanged baseline.

use crate::graph::TaskGraph;
use crate::trace::{assemble_report, ExecReport, TaskPanic, TraceConfig, WorkerRecorder};
use crate::Task;
use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Best-effort extraction of a panic payload's message (the `&str`/`String`
/// cases `panic!` produces).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Task-to-worker assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// The paper's static 1D column-block mapping: `owner(j) = j mod P`.
    /// Owner-only execution — no stealing — so all writers of a column are
    /// serialized on one worker.
    Static1D,
    /// Work-stealing self-scheduling: any worker may run any task. Callers
    /// must guard shared per-column state themselves.
    Dynamic,
}

/// Ready-pool entry: max-heap by bottom-level priority, ties broken toward
/// the lower task id so pool order is reproducible.
#[derive(PartialEq, Eq)]
struct Ready {
    prio: u64,
    tid: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.prio
            .cmp(&other.prio)
            .then_with(|| other.tid.cmp(&self.tid))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Sleep gate: pushers notify under the lock; parkers re-check work and
/// termination under the lock before waiting. See the module docs for the
/// lost-wakeup argument.
struct Gate {
    lock: Mutex<()>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Gate {
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn notify_one(&self) {
        let _guard = self.lock.lock();
        self.cv.notify_one();
    }

    fn notify_all(&self) {
        let _guard = self.lock.lock();
        self.cv.notify_all();
    }
}

/// Unit-weight bottom levels computed from a successor closure — the
/// priority source for [`execute_dag`], whose callers have no [`TaskGraph`].
fn unit_bottom_levels<'a, S>(n_tasks: usize, pred_counts: &[usize], successors: &S) -> Vec<u64>
where
    S: Fn(usize) -> &'a [usize],
{
    let mut indeg = pred_counts.to_vec();
    let mut queue: VecDeque<usize> = (0..n_tasks).filter(|&t| indeg[t] == 0).collect();
    let mut order = Vec::with_capacity(n_tasks);
    while let Some(t) = queue.pop_front() {
        order.push(t);
        for &s in successors(t) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push_back(s);
            }
        }
    }
    assert_eq!(order.len(), n_tasks, "task graph contains a cycle");
    let mut level = vec![1u64; n_tasks];
    for &t in order.iter().rev() {
        for &s in successors(t) {
            level[t] = level[t].max(1 + level[s]);
        }
    }
    level
}

/// Generic DAG execution core with caller-supplied scheduling priorities:
/// runs `n_tasks` tasks on `nthreads` workers, honouring the dependence
/// edges given by `successors`/`pred_counts`, always preferring the ready
/// task with the largest `priority`.
///
/// `nqueues == nthreads` selects owner-mapped execution: task `t` runs on
/// worker `queue_of(t)`, workers never steal. `nqueues == 1` selects
/// work-stealing execution: `queue_of` is ignored, newly ready tasks join
/// the discovering worker's pool, and idle workers steal.
#[allow(clippy::too_many_arguments)]
pub fn execute_dag_with_priorities<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    priority: &[u64],
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
) where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    let report = execute_dag_with_priorities_report(
        n_tasks,
        pred_counts,
        successors,
        priority,
        nthreads,
        nqueues,
        queue_of,
        runner,
        &TraceConfig::off(),
    );
    // The `_report` entry points contain worker panics; the fire-and-forget
    // entry points have no report to carry one, so re-raise.
    if let Some(p) = report.panic {
        panic!("{p}");
    }
}

/// [`execute_dag_with_priorities`] with telemetry: per-worker busy/idle/steal
/// timing, task and steal counters, and (in [`crate::TraceMode::Full`]) the
/// raw event streams for Chrome-trace export. With [`TraceConfig::off`] the
/// recorder calls reduce to a dead branch per task and the returned report
/// is empty — this is the path every untraced entry point takes.
#[allow(clippy::too_many_arguments)]
pub fn execute_dag_with_priorities_report<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    priority: &[u64],
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
    config: &TraceConfig,
) -> ExecReport
where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    let nthreads = nthreads.max(1);
    let epoch = Instant::now();
    if n_tasks == 0 {
        return assemble_report(0, nthreads, 0.0, config, Vec::new(), None);
    }
    assert!(nqueues == 1 || nqueues == nthreads, "queue/worker mismatch");
    assert_eq!(priority.len(), n_tasks, "one priority per task");
    let owner_mode = nqueues == nthreads && nthreads > 1;
    let pools: Vec<Mutex<BinaryHeap<Ready>>> = (0..nthreads)
        .map(|_| Mutex::new(BinaryHeap::new()))
        .collect();
    let gates: Vec<Gate> = (0..if owner_mode { nthreads } else { 1 })
        .map(|_| Gate::new())
        .collect();
    let indeg: Vec<AtomicUsize> = pred_counts.iter().map(|&c| AtomicUsize::new(c)).collect();
    let remaining = AtomicUsize::new(n_tasks);
    let aborted = AtomicBool::new(false);
    // Drained worker recorders; locked once per worker, at exit.
    let drained = Mutex::new(Vec::with_capacity(nthreads));
    // First caught worker panic; reported through `ExecReport::panic`
    // instead of unwinding out of the scope.
    let panicked: Mutex<Option<TaskPanic>> = Mutex::new(None);

    // Seed the pools: owners get their own roots; in stealing mode roots are
    // dealt round-robin so all workers start busy.
    for (i, (t, _)) in pred_counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == 0)
        .enumerate()
    {
        let pool = if owner_mode {
            queue_of(t)
        } else {
            i % nthreads
        };
        pools[pool].lock().push(Ready {
            prio: priority[t],
            tid: t,
        });
    }

    crossbeam::thread::scope(|scope| {
        for w in 0..nthreads {
            let pools = &pools;
            let gates = &gates;
            let indeg = &indeg;
            let remaining = &remaining;
            let aborted = &aborted;
            let runner = &runner;
            let successors = &successors;
            let queue_of = &queue_of;
            let priority = &priority;
            let drained = &drained;
            let panicked = &panicked;
            scope.spawn(move |_| {
                let mut rec = WorkerRecorder::new(w, nthreads, config, epoch);
                let my_gate = &gates[if owner_mode { w } else { 0 }];
                // The worker body proper; a closure so the recorder is
                // drained on every exit path, panicked or clean.
                let mut body = || {
                    'work: loop {
                        // Acquire a task: own pool first, then (Dynamic only)
                        // steal from the first non-empty victim.
                        let tid = 'acquire: loop {
                            if aborted.load(Ordering::Acquire) {
                                return;
                            }
                            if let Some(r) = pools[w].lock().pop() {
                                break 'acquire r.tid;
                            }
                            if !owner_mode && nthreads > 1 {
                                let t0 = rec.begin();
                                let mut hit = None;
                                for i in 1..nthreads {
                                    let victim = (w + i) % nthreads;
                                    if let Some(r) = pools[victim].lock().pop() {
                                        hit = Some((r.tid, victim));
                                        break;
                                    }
                                }
                                match hit {
                                    Some((tid, victim)) => {
                                        rec.end_steal(t0, victim, true);
                                        break 'acquire tid;
                                    }
                                    None => rec.end_steal(t0, w, false),
                                }
                            }
                            // Park. The gate lock makes the emptiness re-check
                            // and the wait atomic against pushers and
                            // retirement.
                            let mut guard = my_gate.lock.lock();
                            if remaining.load(Ordering::Acquire) == 0
                                || aborted.load(Ordering::Acquire)
                            {
                                return;
                            }
                            let has_work = if owner_mode {
                                !pools[w].lock().is_empty()
                            } else {
                                pools.iter().any(|p| !p.lock().is_empty())
                            };
                            if !has_work {
                                let t0 = rec.begin();
                                my_gate.cv.wait(&mut guard);
                                rec.end_park(t0);
                            }
                        };

                        let t0 = rec.begin();
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| runner(tid))) {
                            // Containment: record the first panic for the
                            // report, then abort so no worker stays parked
                            // behind a task that will never retire. Nothing
                            // unwinds out of the scope.
                            let mut slot = panicked.lock();
                            if slot.is_none() {
                                *slot = Some(TaskPanic {
                                    worker: w,
                                    task: tid,
                                    message: panic_message(payload.as_ref()),
                                });
                            }
                            drop(slot);
                            aborted.store(true, Ordering::Release);
                            for g in gates {
                                g.notify_all();
                            }
                            return;
                        }
                        rec.end_task(t0, tid);

                        for &s in successors(tid) {
                            if indeg[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                                let pool = if owner_mode { queue_of(s) } else { w };
                                pools[pool].lock().push(Ready {
                                    prio: priority[s],
                                    tid: s,
                                });
                                gates[if owner_mode { pool } else { 0 }].notify_one();
                            }
                        }
                        rec.count_retired();
                        if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            // Last task retired: broadcast once on every gate
                            // so each parked worker wakes exactly once and
                            // exits.
                            for g in gates {
                                g.notify_all();
                            }
                            return;
                        }
                        continue 'work;
                    }
                };
                body();
                drained.lock().push(rec.finish());
            });
        }
    })
    .expect("executor scope failed");
    let panicked = panicked.into_inner();
    debug_assert!(
        panicked.is_some() || remaining.load(Ordering::Acquire) == 0,
        "clean shutdown must retire every task"
    );
    assemble_report(
        n_tasks,
        nthreads,
        epoch.elapsed().as_secs_f64(),
        config,
        drained.into_inner(),
        panicked,
    )
}

/// [`execute_dag_with_priorities`] with priorities computed internally as
/// unit-weight bottom levels of the given DAG. Callers that already hold a
/// [`TaskGraph`] should use [`execute`], which shares the graph's own
/// [`TaskGraph::bottom_levels`].
pub fn execute_dag<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
) where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    if n_tasks == 0 {
        return;
    }
    let priority = unit_bottom_levels(n_tasks, pred_counts, &successors);
    execute_dag_with_priorities(
        n_tasks,
        pred_counts,
        successors,
        &priority,
        nthreads,
        nqueues,
        queue_of,
        runner,
    );
}

/// [`execute_dag`] with telemetry — see
/// [`execute_dag_with_priorities_report`].
#[allow(clippy::too_many_arguments)]
pub fn execute_dag_report<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
    config: &TraceConfig,
) -> ExecReport
where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    if n_tasks == 0 {
        return ExecReport::default();
    }
    let priority = unit_bottom_levels(n_tasks, pred_counts, &successors);
    execute_dag_with_priorities_report(
        n_tasks,
        pred_counts,
        successors,
        &priority,
        nthreads,
        nqueues,
        queue_of,
        runner,
        config,
    )
}

/// Executes every task of `graph` on `nthreads` workers, honouring all
/// dependence edges, scheduling by critical-path (bottom-level) priority.
/// `runner` is invoked once per task; with [`Mapping::Static1D`] all tasks
/// with the same [`Task::home_column`] run on the same worker
/// (sequentially), matching the paper's distribution, while
/// [`Mapping::Dynamic`] lets idle workers steal ready tasks.
pub fn execute<F>(graph: &TaskGraph, nthreads: usize, mapping: Mapping, runner: F)
where
    F: Fn(Task) + Sync,
{
    let report = execute_traced(graph, nthreads, mapping, runner, &TraceConfig::off());
    if let Some(p) = report.panic {
        panic!("{p}");
    }
}

/// [`execute`] with telemetry: returns the run's [`ExecReport`] (per-worker
/// busy/idle/steal breakdown, steal/task counters, and — under
/// [`crate::TraceMode::Full`] — the raw event streams for Chrome-trace
/// export). [`TraceConfig::off`] makes this identical to [`execute`].
pub fn execute_traced<F>(
    graph: &TaskGraph,
    nthreads: usize,
    mapping: Mapping,
    runner: F,
    config: &TraceConfig,
) -> ExecReport
where
    F: Fn(Task) + Sync,
{
    let nthreads = nthreads.max(1);
    if graph.is_empty() {
        return ExecReport::default();
    }
    let priority = graph.bottom_levels();
    let nqueues = match mapping {
        Mapping::Static1D => nthreads,
        Mapping::Dynamic => 1,
    };
    execute_dag_with_priorities_report(
        graph.len(),
        graph.pred_counts(),
        |t| graph.successors(t),
        &priority,
        nthreads,
        nqueues,
        |t| match mapping {
            Mapping::Static1D => graph.task(t).home_column() % nthreads,
            Mapping::Dynamic => 0,
        },
        |t| runner(graph.task(t)),
        config,
    )
}

// ---------------------------------------------------------------------------
// Legacy shared-FIFO executor, kept as the measurement baseline.
// ---------------------------------------------------------------------------

struct ReadyQueue {
    deque: Mutex<VecDeque<usize>>,
    cv: Condvar,
}

impl ReadyQueue {
    fn new() -> Self {
        ReadyQueue {
            deque: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, t: usize) {
        self.deque.lock().push_back(t);
        self.cv.notify_one();
    }

    /// Pops a task, blocking until one arrives, all work is done, or the
    /// run is aborted. Waits are recorded as idle (park) intervals on
    /// `rec`.
    fn pop(
        &self,
        remaining: &AtomicUsize,
        aborted: &AtomicBool,
        rec: &mut WorkerRecorder,
    ) -> Option<usize> {
        let mut q = self.deque.lock();
        loop {
            if aborted.load(Ordering::Acquire) {
                return None;
            }
            if let Some(t) = q.pop_front() {
                return Some(t);
            }
            if remaining.load(Ordering::Acquire) == 0 {
                return None;
            }
            let t0 = rec.begin();
            self.cv.wait(&mut q);
            rec.end_park(t0);
        }
    }

    fn wake_all(&self) {
        // Taken under the deque lock: a waiter checks `remaining`/`aborted`
        // while holding it, so an unlocked broadcast could slip between that
        // check and the wait and lose the wakeup.
        let _q = self.deque.lock();
        self.cv.notify_all();
    }
}

/// The pre-work-stealing executor: plain FIFO ready queues (one shared
/// queue for `nqueues == 1`, one per worker for `nqueues == nthreads`), no
/// scheduling priorities. Kept only so `bench/scaling` can quantify the
/// work-stealing, critical-path-priority scheduler against the original
/// design; new callers should use [`execute_dag`].
pub fn execute_dag_fifo<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
) where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    let report = execute_dag_fifo_report(
        n_tasks,
        pred_counts,
        successors,
        nthreads,
        nqueues,
        queue_of,
        runner,
        &TraceConfig::off(),
    );
    if let Some(p) = report.panic {
        panic!("{p}");
    }
}

/// [`execute_dag_fifo`] with telemetry, so the baseline's busy/idle profile
/// is measurable with the same instruments as the work-stealing executor
/// (steal counters stay zero — the FIFO discipline never steals).
#[allow(clippy::too_many_arguments)]
pub fn execute_dag_fifo_report<'a, S, Q, F>(
    n_tasks: usize,
    pred_counts: &[usize],
    successors: S,
    nthreads: usize,
    nqueues: usize,
    queue_of: Q,
    runner: F,
    config: &TraceConfig,
) -> ExecReport
where
    S: Fn(usize) -> &'a [usize] + Sync,
    Q: Fn(usize) -> usize + Sync,
    F: Fn(usize) + Sync,
{
    let nthreads = nthreads.max(1);
    let epoch = Instant::now();
    if n_tasks == 0 {
        return assemble_report(0, nthreads, 0.0, config, Vec::new(), None);
    }
    assert!(nqueues == 1 || nqueues == nthreads, "queue/worker mismatch");
    let queues: Vec<ReadyQueue> = (0..nqueues).map(|_| ReadyQueue::new()).collect();
    let indeg: Vec<AtomicUsize> = pred_counts.iter().map(|&c| AtomicUsize::new(c)).collect();
    let remaining = AtomicUsize::new(n_tasks);
    let aborted = AtomicBool::new(false);
    let drained = Mutex::new(Vec::with_capacity(nthreads));
    let panicked: Mutex<Option<TaskPanic>> = Mutex::new(None);

    for (t, &c) in pred_counts.iter().enumerate() {
        if c == 0 {
            queues[queue_of(t)].push(t);
        }
    }

    crossbeam::thread::scope(|scope| {
        for w in 0..nthreads {
            let queues = &queues;
            let indeg = &indeg;
            let remaining = &remaining;
            let runner = &runner;
            let successors = &successors;
            let queue_of = &queue_of;
            let drained = &drained;
            let aborted = &aborted;
            let panicked = &panicked;
            let my_queue = &queues[if nqueues == 1 { 0 } else { w }];
            scope.spawn(move |_| {
                let mut rec = WorkerRecorder::new(w, nthreads, config, epoch);
                while let Some(tid) = my_queue.pop(remaining, aborted, &mut rec) {
                    let t0 = rec.begin();
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| runner(tid))) {
                        // Same containment contract as the priority
                        // executor: record, abort, wake everyone, exit.
                        let mut slot = panicked.lock();
                        if slot.is_none() {
                            *slot = Some(TaskPanic {
                                worker: w,
                                task: tid,
                                message: panic_message(payload.as_ref()),
                            });
                        }
                        drop(slot);
                        aborted.store(true, Ordering::Release);
                        for q in queues {
                            q.wake_all();
                        }
                        break;
                    }
                    rec.end_task(t0, tid);
                    for &s in successors(tid) {
                        if indeg[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                            queues[queue_of(s)].push(s);
                        }
                    }
                    rec.count_retired();
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        for q in queues {
                            q.wake_all();
                        }
                    }
                }
                drained.lock().push(rec.finish());
            });
        }
    })
    .expect("executor scope failed");
    let panicked = panicked.into_inner();
    debug_assert!(
        panicked.is_some() || remaining.load(Ordering::Acquire) == 0,
        "clean shutdown must retire every task"
    );
    assemble_report(
        n_tasks,
        nthreads,
        epoch.elapsed().as_secs_f64(),
        config,
        drained.into_inner(),
        panicked,
    )
}

/// [`execute`] on the legacy FIFO executor ([`execute_dag_fifo`]) — the
/// benchmark baseline for the work-stealing scheduler.
pub fn execute_fifo<F>(graph: &TaskGraph, nthreads: usize, mapping: Mapping, runner: F)
where
    F: Fn(Task) + Sync,
{
    let report = execute_fifo_traced(graph, nthreads, mapping, runner, &TraceConfig::off());
    if let Some(p) = report.panic {
        panic!("{p}");
    }
}

/// [`execute_fifo`] with telemetry — the baseline counterpart of
/// [`execute_traced`].
pub fn execute_fifo_traced<F>(
    graph: &TaskGraph,
    nthreads: usize,
    mapping: Mapping,
    runner: F,
    config: &TraceConfig,
) -> ExecReport
where
    F: Fn(Task) + Sync,
{
    let nthreads = nthreads.max(1);
    if graph.is_empty() {
        return ExecReport::default();
    }
    let nqueues = match mapping {
        Mapping::Static1D => nthreads,
        Mapping::Dynamic => 1,
    };
    execute_dag_fifo_report(
        graph.len(),
        graph.pred_counts(),
        |t| graph.successors(t),
        nthreads,
        nqueues,
        |t| match mapping {
            Mapping::Static1D => graph.task(t).home_column() % nthreads,
            Mapping::Dynamic => 0,
        },
        |t| runner(graph.task(t)),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build_eforest_graph, build_sstar_graph};
    use parking_lot::Mutex as PlMutex;
    use splu_sparse::SparsityPattern;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::BlockStructure;
    use splu_symbolic::Partition;

    fn random_graph(n: usize, extra: usize, seed: u64) -> TaskGraph {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for _ in 0..extra {
            entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        let p = SparsityPattern::from_entries(n, n, entries).unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(n));
        if seed.is_multiple_of(2) {
            build_eforest_graph(&bs)
        } else {
            build_sstar_graph(&bs)
        }
    }

    /// Runs a graph and records the completion order; asserts every task ran
    /// exactly once, no task ran before a predecessor, and the telemetry
    /// counters are consistent (started == retired == n_tasks).
    fn run_and_check(graph: &TaskGraph, nthreads: usize, mapping: Mapping) {
        let log = PlMutex::new(Vec::<Task>::new());
        let report = execute_traced(
            graph,
            nthreads,
            mapping,
            |t| {
                log.lock().push(t);
            },
            &crate::trace::TraceConfig::counters(),
        );
        report.stats.assert_consistent();
        assert_eq!(report.stats.nthreads, nthreads);
        assert!(report.trace.is_none(), "counters mode keeps no events");
        let log = log.into_inner();
        assert_eq!(log.len(), graph.len(), "every task runs exactly once");
        let mut pos = std::collections::HashMap::new();
        for (i, t) in log.iter().enumerate() {
            assert!(pos.insert(*t, i).is_none(), "task ran twice: {t:?}");
        }
        for tid in 0..graph.len() {
            for &s in graph.successors(tid) {
                assert!(
                    pos[&graph.task(tid)] < pos[&graph.task(s)],
                    "dependence violated: {:?} after {:?}",
                    graph.task(tid),
                    graph.task(s)
                );
            }
        }
    }

    #[test]
    fn executes_all_tasks_in_dependence_order_static() {
        for seed in 0..6 {
            let g = random_graph(15, 30, seed);
            for p in [1, 2, 4] {
                run_and_check(&g, p, Mapping::Static1D);
            }
        }
    }

    #[test]
    fn executes_all_tasks_in_dependence_order_dynamic() {
        for seed in 0..6 {
            let g = random_graph(15, 30, seed);
            for p in [1, 2, 4] {
                run_and_check(&g, p, Mapping::Dynamic);
            }
        }
    }

    #[test]
    fn fifo_baseline_still_executes_in_dependence_order() {
        for seed in 0..4 {
            let g = random_graph(15, 30, seed);
            for (p, mapping) in [(2, Mapping::Static1D), (4, Mapping::Dynamic)] {
                let log = PlMutex::new(Vec::<Task>::new());
                let report = execute_fifo_traced(
                    &g,
                    p,
                    mapping,
                    |t| {
                        log.lock().push(t);
                    },
                    &crate::trace::TraceConfig::counters(),
                );
                report.stats.assert_consistent();
                assert_eq!(
                    report.stats.steals_total(),
                    0,
                    "the FIFO discipline never steals"
                );
                assert_eq!(log.into_inner().len(), g.len());
            }
        }
    }

    /// Full tracing yields one Task event per task with monotone per-worker
    /// timestamps, and the busy total matches the sum of task durations.
    #[test]
    fn full_tracing_yields_consistent_event_streams() {
        use crate::trace::{EventKind, TraceConfig};
        let g = random_graph(18, 40, 4);
        for mapping in [Mapping::Static1D, Mapping::Dynamic] {
            let report = execute_traced(
                &g,
                4,
                mapping,
                |_| std::thread::sleep(std::time::Duration::from_micros(20)),
                &TraceConfig::full(g.len(), 4),
            );
            report.stats.assert_consistent();
            let trace = report.trace.expect("full mode keeps events");
            let task_events: Vec<_> = trace
                .events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Task { .. }))
                .collect();
            assert_eq!(task_events.len(), g.len(), "one Task event per task");
            for w in 0..4 {
                let mut last = 0u64;
                for e in trace.events.iter().filter(|e| e.worker == w) {
                    assert!(e.start_ns >= last, "worker {w} timestamps not monotone");
                    assert!(e.end_ns >= e.start_ns);
                    last = e.start_ns;
                }
            }
            let busy_from_events: f64 = task_events
                .iter()
                .map(|e| (e.end_ns - e.start_ns) as f64 / 1e9)
                .sum();
            assert!(
                (busy_from_events - report.stats.busy_total()).abs() < 1e-6,
                "busy aggregate disagrees with the event stream"
            );
        }
    }

    /// In Dynamic mode at several threads with serialized tasks, at least
    /// one steal is observed and in/out counts balance per victim.
    #[test]
    fn steals_are_counted_and_balanced() {
        use crate::trace::TraceConfig;
        // A wide graph (many roots) so workers contend for seeded pools.
        let g = random_graph(30, 20, 6);
        let report = execute_traced(
            &g,
            4,
            Mapping::Dynamic,
            |_| std::thread::sleep(std::time::Duration::from_micros(50)),
            &TraceConfig::counters(),
        );
        report.stats.assert_consistent();
        let in_total: u64 = report.stats.workers.iter().map(|w| w.steals_in).sum();
        let out_total: u64 = report.stats.workers.iter().map(|w| w.steals_out).sum();
        assert_eq!(in_total, out_total);
        let attempts: u64 = report.stats.workers.iter().map(|w| w.steal_attempts).sum();
        assert!(attempts >= in_total);
    }

    #[test]
    fn static_mapping_serializes_columns() {
        // All tasks with the same home column must run on the same worker:
        // observable as: per column, completions are totally ordered even
        // with many threads. We verify via a per-column reentrancy flag.
        let g = random_graph(20, 50, 2);
        let ncols = g.num_block_cols();
        let in_flight: Vec<AtomicUsize> = (0..ncols).map(|_| AtomicUsize::new(0)).collect();
        execute(&g, 4, Mapping::Static1D, |t| {
            let c = t.home_column();
            let prev = in_flight[c].fetch_add(1, Ordering::SeqCst);
            assert_eq!(prev, 0, "two tasks of column {c} ran concurrently");
            std::thread::sleep(std::time::Duration::from_micros(50));
            in_flight[c].fetch_sub(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let p = SparsityPattern::empty(0, 0);
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::from_starts(vec![0]));
        let g = build_eforest_graph(&bs);
        execute(&g, 3, Mapping::Static1D, |_| panic!("no tasks expected"));
    }

    #[test]
    fn more_threads_than_tasks() {
        let g = random_graph(3, 2, 5);
        run_and_check(&g, 16, Mapping::Static1D);
        run_and_check(&g, 16, Mapping::Dynamic);
    }

    #[test]
    fn higher_priority_root_runs_first_on_one_worker() {
        // Chain F(0) → U(0,1) → F(1) plus isolated F(2): on one worker the
        // chain head (bottom level 3) must be taken before the isolated
        // task (bottom level 1), whatever the seeding order.
        let p = SparsityPattern::from_entries(3, 3, vec![(0, 0), (1, 0), (1, 1), (2, 2)]).unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(3));
        let g = build_eforest_graph(&bs);
        let levels = g.bottom_levels();
        let log = PlMutex::new(Vec::<usize>::new());
        execute_dag_with_priorities(
            g.len(),
            g.pred_counts(),
            |t| g.successors(t),
            &levels,
            1,
            1,
            |_| 0,
            |t| log.lock().push(t),
        );
        let order = log.into_inner();
        let pos = |tid: usize| order.iter().position(|&t| t == tid).unwrap();
        // The deepest root (F(0), level 3) precedes the shallow root (F(2)).
        assert!(pos(g.factor_id(0)) < pos(g.factor_id(2)));
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let g = random_graph(12, 24, 3);
        let hit = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            execute(&g, 4, Mapping::Dynamic, |_| {
                if hit.fetch_add(1, Ordering::SeqCst) == 2 {
                    panic!("injected task failure");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
    }

    /// Tentpole contract: the `_report` entry points contain worker panics —
    /// the run returns normally with [`ExecReport::panic`] set to the first
    /// caught panic, at every thread count and mapping, with no hang.
    #[test]
    fn contained_panic_is_reported_not_raised() {
        let g = random_graph(12, 24, 3);
        for mapping in [Mapping::Static1D, Mapping::Dynamic] {
            for p in [1, 2, 4, 8] {
                let hit = AtomicUsize::new(0);
                let report = execute_traced(
                    &g,
                    p,
                    mapping,
                    |_| {
                        if hit.fetch_add(1, Ordering::SeqCst) == 2 {
                            panic!("injected task failure");
                        }
                    },
                    &crate::trace::TraceConfig::counters(),
                );
                let tp = report.panic.expect("panic must land in the report");
                assert_eq!(tp.message, "injected task failure");
                assert!(tp.worker < p, "worker id in range");
                assert!(tp.task < g.len(), "task id in range");
            }
        }
    }

    /// Same containment contract on the legacy FIFO executor, plus the
    /// re-raising void wrapper.
    #[test]
    fn fifo_contained_panic_is_reported_not_raised() {
        let g = random_graph(12, 24, 3);
        for mapping in [Mapping::Static1D, Mapping::Dynamic] {
            for p in [1, 2, 4, 8] {
                let hit = AtomicUsize::new(0);
                let report = execute_fifo_traced(
                    &g,
                    p,
                    mapping,
                    |_| {
                        if hit.fetch_add(1, Ordering::SeqCst) == 2 {
                            panic!("injected task failure");
                        }
                    },
                    &crate::trace::TraceConfig::counters(),
                );
                let tp = report.panic.expect("panic must land in the report");
                assert_eq!(tp.message, "injected task failure");
            }
        }
        let hit = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            execute_fifo(&g, 4, Mapping::Dynamic, |_| {
                if hit.fetch_add(1, Ordering::SeqCst) == 2 {
                    panic!("injected task failure");
                }
            });
        }));
        assert!(result.is_err(), "void wrapper must re-raise");
    }

    /// A panic on the very first task must not hang workers that are
    /// parked waiting for successors that will never become ready — stress
    /// both executors' abort/broadcast path.
    #[test]
    fn panic_on_first_task_leaves_no_parked_worker() {
        // A chain graph: only one task is ever ready, so 7 of 8 workers
        // are parked when the panic fires.
        let n = 8;
        let entries: Vec<(usize, usize)> = (0..n)
            .map(|i| (i, i))
            .chain((1..n).map(|i| (i, i - 1)))
            .collect();
        let p = SparsityPattern::from_entries(n, n, entries).unwrap();
        let f = static_symbolic_factorization(&p).unwrap();
        let bs = BlockStructure::new(&f, Partition::singletons(n));
        let g = build_eforest_graph(&bs);
        for _ in 0..50 {
            let report = execute_traced(
                &g,
                8,
                Mapping::Dynamic,
                |_| panic!("first task fails"),
                &crate::trace::TraceConfig::off(),
            );
            assert!(report.panic.is_some());
            let report = execute_fifo_traced(
                &g,
                8,
                Mapping::Dynamic,
                |_| panic!("first task fails"),
                &crate::trace::TraceConfig::off(),
            );
            assert!(report.panic.is_some());
        }
    }

    /// After a contained panic the same executor state types are reusable —
    /// nothing is poisoned (parking_lot locks never poison; this guards the
    /// contract against a future std-Mutex regression).
    #[test]
    fn executor_is_reusable_after_contained_panic() {
        let g = random_graph(12, 24, 3);
        let report = execute_traced(
            &g,
            4,
            Mapping::Dynamic,
            |_| panic!("boom"),
            &crate::trace::TraceConfig::off(),
        );
        assert!(report.panic.is_some());
        // A clean run right after must still retire every task.
        run_and_check(&g, 4, Mapping::Dynamic);
    }

    /// Satellite regression: shutdown must wake a parked worker exactly once
    /// — looping tiny and empty graphs at 8 threads would hang (or panic on
    /// a double-wake use-after-retire) if the last-retire broadcast raced
    /// the park re-check.
    #[test]
    fn shutdown_stress_one_column_and_empty_graphs_at_8_threads() {
        let one = {
            let p = SparsityPattern::from_entries(1, 1, vec![(0, 0)]).unwrap();
            let f = static_symbolic_factorization(&p).unwrap();
            let bs = BlockStructure::new(&f, Partition::singletons(1));
            build_eforest_graph(&bs)
        };
        assert_eq!(one.len(), 1, "one Factor task");
        let empty = {
            let p = SparsityPattern::empty(0, 0);
            let f = static_symbolic_factorization(&p).unwrap();
            let bs = BlockStructure::new(&f, Partition::from_starts(vec![0]));
            build_eforest_graph(&bs)
        };
        for round in 0..200 {
            let ran = AtomicUsize::new(0);
            let mapping = if round % 2 == 0 {
                Mapping::Dynamic
            } else {
                Mapping::Static1D
            };
            execute(&one, 8, mapping, |_| {
                ran.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(ran.load(Ordering::SeqCst), 1, "round {round}");
            execute(&empty, 8, mapping, |_| panic!("no tasks expected"));
        }
    }
}
