//! Task dependence graph construction (Section 4).

use splu_symbolic::supernode::BlockStructure;
use splu_symbolic::EliminationForest;

/// A unit of work in the block factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// `Factor(k)`: factorize block column `k`, including its pivot search.
    Factor(usize),
    /// `Update(k, j)`: update block column `j` by the factored column `k`
    /// (`k < j`, block `B̄(k, j)` structurally nonzero).
    Update {
        /// Source (factored) block column.
        src: usize,
        /// Destination block column.
        dst: usize,
    },
}

impl Task {
    /// The block column whose data this task writes — the key of the 1D
    /// mapping (`Factor(k)` and every `Update(·, k)` live on `owner(k)`).
    pub fn home_column(&self) -> usize {
        match *self {
            Task::Factor(k) => k,
            Task::Update { dst, .. } => dst,
        }
    }
}

/// An immutable task DAG.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    succ: Vec<Vec<usize>>,
    pred_count: Vec<usize>,
    /// Task id of `Factor(k)` per block column.
    factor_ids: Vec<usize>,
    num_block_cols: usize,
}

impl TaskGraph {
    fn new(num_block_cols: usize) -> Self {
        TaskGraph {
            tasks: Vec::new(),
            succ: Vec::new(),
            pred_count: Vec::new(),
            factor_ids: Vec::new(),
            num_block_cols,
        }
    }

    fn add_task(&mut self, t: Task) -> usize {
        let id = self.tasks.len();
        self.tasks.push(t);
        self.succ.push(Vec::new());
        self.pred_count.push(0);
        id
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        debug_assert_ne!(from, to);
        self.succ[from].push(to);
        self.pred_count[to] += 1;
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` for a graph with no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of dependence edges.
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// The task with id `id`.
    pub fn task(&self, id: usize) -> Task {
        self.tasks[id]
    }

    /// All tasks, indexable by id.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Successor ids of task `id`.
    pub fn successors(&self, id: usize) -> &[usize] {
        &self.succ[id]
    }

    /// In-degree of each task.
    pub fn pred_counts(&self) -> &[usize] {
        &self.pred_count
    }

    /// Task id of `Factor(k)`.
    pub fn factor_id(&self, k: usize) -> usize {
        self.factor_ids[k]
    }

    /// Number of block columns the graph factorizes.
    pub fn num_block_cols(&self) -> usize {
        self.num_block_cols
    }

    /// A topological order of the task ids (Kahn). Panics on cycles, which
    /// would indicate a builder bug.
    pub fn topo_order(&self) -> Vec<usize> {
        let mut indeg = self.pred_count.clone();
        let mut queue: std::collections::VecDeque<usize> =
            (0..self.len()).filter(|&t| indeg[t] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(t) = queue.pop_front() {
            order.push(t);
            for &s in &self.succ[t] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        assert_eq!(order.len(), self.len(), "task graph contains a cycle");
        order
    }

    /// Length of the longest path in tasks (unit task weights) — the
    /// height of the DAG, a parallelism indicator used by the experiments.
    pub fn critical_path_len(&self) -> usize {
        self.bottom_levels().into_iter().max().unwrap_or(0) as usize
    }

    /// Unit-weight **bottom level** of every task: the number of tasks on
    /// the longest dependence path from the task to a sink, inclusive (so
    /// sinks have level 1 and `max = critical_path_len`). This is the
    /// scheduling priority of the work-stealing executor
    /// ([`crate::execute`]): always prefer the ready task deepest on the
    /// critical path.
    pub fn bottom_levels(&self) -> Vec<u64> {
        let mut level = vec![1u64; self.len()];
        for &t in self.topo_order().iter().rev() {
            for &s in &self.succ[t] {
                level[t] = level[t].max(1 + level[s]);
            }
        }
        level
    }

    /// Weighted bottom levels: `level(t) = time_of(t) + max over successors
    /// s of (level(s) + edge_latency(t, s))`, computed by one reverse
    /// topological sweep. Shared by the static-order simulator's inspector
    /// ([`crate::simulate_static_order`]) and the executor's priority rule
    /// (unit weights, [`Self::bottom_levels`]).
    pub fn bottom_levels_with<T, E>(&self, time_of: T, edge_latency: E) -> Vec<f64>
    where
        T: Fn(usize) -> f64,
        E: Fn(usize, usize) -> f64,
    {
        let mut level = vec![0.0_f64; self.len()];
        for &t in self.topo_order().iter().rev() {
            let mut best = 0.0_f64;
            for &s in &self.succ[t] {
                best = best.max(level[s] + edge_latency(t, s));
            }
            level[t] = best + time_of(t);
        }
        level
    }

    /// Graphviz DOT rendering of the task graph (Figure 4 style).
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let label = |t: Task| match t {
            Task::Factor(k) => format!("\"F({k})\""),
            Task::Update { src, dst } => format!("\"U({src},{dst})\""),
        };
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  node [shape=box, fontsize=10];");
        for t in 0..self.len() {
            if let Task::Factor(_) = self.task(t) {
                let _ = writeln!(out, "  {} [style=bold];", label(self.task(t)));
            }
            for &s in self.successors(t) {
                let _ = writeln!(out, "  {} -> {};", label(self.task(t)), label(self.task(s)));
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// `true` when `a` reaches `b` through dependence edges (BFS; test &
    /// diagnostics helper, not used on the hot path).
    pub fn reaches(&self, a: usize, b: usize) -> bool {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![a];
        seen[a] = true;
        while let Some(t) = stack.pop() {
            if t == b {
                return true;
            }
            for &s in &self.succ[t] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }
}

/// Computes the **block-level** LU elimination forest of a block structure:
/// Definition 1 applied to the quotient (block) matrix `B̄`.
///
/// `parent(I) = min{ K > I : B̄(I, K) ≠ 0 }` when block column `I` of `L̄`
/// has an off-diagonal block.
pub fn block_forest(bs: &BlockStructure) -> EliminationForest {
    let nb = bs.num_blocks();
    let mut parent = vec![usize::MAX; nb];
    for i in 0..nb {
        if bs.l_blocks[i].len() > 1 {
            if let Some(&p) = bs.u_blocks[i].get(1) {
                parent[i] = p;
            }
        }
    }
    EliminationForest::from_parent_vec(parent)
}

/// Creates the task set shared by both builders: one `Factor` per block
/// column, one `Update(k, j)` per off-diagonal `Ū` block, plus the
/// `F(k) → U(k, j)` edges (rule 3).
///
/// Returns `(graph, update_ids)` with `update_ids[k]` listing
/// `(j, task_id)` pairs in ascending `j`.
fn base_graph(bs: &BlockStructure) -> (TaskGraph, Vec<Vec<(usize, usize)>>) {
    let nb = bs.num_blocks();
    let mut g = TaskGraph::new(nb);
    for k in 0..nb {
        let id = g.add_task(Task::Factor(k));
        g.factor_ids.push(id);
    }
    let mut update_ids: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nb];
    for k in 0..nb {
        for &j in bs.u_blocks[k].iter().skip(1) {
            let id = g.add_task(Task::Update { src: k, dst: j });
            g.add_edge(g.factor_ids[k], id);
            update_ids[k].push((j, id));
        }
    }
    (g, update_ids)
}

/// Builds the S* task dependence graph: for each destination column `j`,
/// the updates `U(k, j)` are chained in ascending `k`, and the last one
/// precedes `F(j)`.
pub fn build_sstar_graph(bs: &BlockStructure) -> TaskGraph {
    let (mut g, update_ids) = base_graph(bs);
    let nb = bs.num_blocks();
    // Collect updates per destination column.
    let mut per_dst: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nb];
    for k in 0..nb {
        for &(j, id) in &update_ids[k] {
            per_dst[j].push((k, id));
        }
    }
    for j in 0..nb {
        per_dst[j].sort_unstable();
        for w in per_dst[j].windows(2) {
            g.add_edge(w[0].1, w[1].1);
        }
        if let Some(&(_, last)) = per_dst[j].last() {
            g.add_edge(last, g.factor_ids[j]);
        }
    }
    g
}

/// Builds the paper's eforest-guided task dependence graph (Section 4,
/// rules 1–5): `U(i, k) → U(i', k)` only when `i' = parent(i)` in the block
/// eforest, and `U(i, k) → F(k)` only when `k = parent(i)`.
///
/// Updates from independent subtrees carry no mutual dependence — their
/// source columns have disjoint row structures (the row-branch
/// characterization of Section 2), so they touch disjoint data.
pub fn build_eforest_graph(bs: &BlockStructure) -> TaskGraph {
    let forest = block_forest(bs);
    build_eforest_graph_with(bs, &forest)
}

/// [`build_eforest_graph`] with a precomputed block forest.
pub fn build_eforest_graph_with(bs: &BlockStructure, forest: &EliminationForest) -> TaskGraph {
    let (mut g, update_ids) = base_graph(bs);
    // Fast lookup: id of U(k, j).
    let find_update = |ids: &Vec<Vec<(usize, usize)>>, k: usize, j: usize| -> Option<usize> {
        ids[k]
            .binary_search_by_key(&j, |&(jj, _)| jj)
            .ok()
            .map(|pos| ids[k][pos].1)
    };
    let nb = bs.num_blocks();
    for i in 0..nb {
        for &(k, id) in &update_ids[i] {
            match forest.parent(i) {
                Some(p) if p == k => {
                    // Rule 5: U(i, k) → F(k) when k = parent(i).
                    g.add_edge(id, g.factor_ids[k]);
                }
                Some(p) => {
                    debug_assert!(p < k, "parent(i) = min of Ū row i, so p ≤ k");
                    // Rule 4: U(i, k) → U(parent(i), k). Theorem 1
                    // guarantees the target exists.
                    let target = find_update(&update_ids, p, k).unwrap_or_else(|| {
                        panic!("Theorem 1 violated: U({p},{k}) missing for child {i}")
                    });
                    g.add_edge(id, target);
                }
                None => {
                    // i is a root with U(i, k) ≠ 0: by Theorem 2 this means
                    // i's tree lies entirely left of k; the update touches
                    // rows no other task shares, so no outgoing edge.
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use splu_sparse::SparsityPattern;
    use splu_symbolic::fixtures::fig1_pattern;
    use splu_symbolic::static_fact::static_symbolic_factorization;
    use splu_symbolic::supernode::{supernode_partition, BlockStructure};
    use splu_symbolic::Partition;

    fn fig1_blocks() -> BlockStructure {
        let f = static_symbolic_factorization(&fig1_pattern()).unwrap();
        let part = supernode_partition(&f);
        BlockStructure::new(&f, part)
    }

    fn singleton_blocks(p: &SparsityPattern) -> BlockStructure {
        let f = static_symbolic_factorization(p).unwrap();
        let n = f.n();
        BlockStructure::new(&f, Partition::singletons(n))
    }

    fn random_blocks(n: usize, extra: usize, seed: u64) -> BlockStructure {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for _ in 0..extra {
            entries.push((rng.gen_range(0..n), rng.gen_range(0..n)));
        }
        let p = SparsityPattern::from_entries(n, n, entries).unwrap();
        singleton_blocks(&p)
    }

    #[test]
    fn both_graphs_have_identical_task_sets() {
        let bs = fig1_blocks();
        let s = build_sstar_graph(&bs);
        let e = build_eforest_graph(&bs);
        assert_eq!(s.len(), e.len());
        assert_eq!(s.tasks(), e.tasks());
        assert!(!s.is_empty());
    }

    #[test]
    fn eforest_graph_never_has_more_edges() {
        for seed in 0..10 {
            let bs = random_blocks(20, 40, seed);
            let s = build_sstar_graph(&bs);
            let e = build_eforest_graph(&bs);
            assert!(
                e.num_edges() <= s.num_edges(),
                "eforest graph denser than S* (seed {seed}): {} vs {}",
                e.num_edges(),
                s.num_edges()
            );
        }
    }

    #[test]
    fn eforest_graph_exposes_at_least_as_much_parallelism() {
        for seed in 0..10 {
            let bs = random_blocks(20, 40, seed);
            let s = build_sstar_graph(&bs);
            let e = build_eforest_graph(&bs);
            assert!(
                e.critical_path_len() <= s.critical_path_len(),
                "eforest critical path longer (seed {seed})"
            );
        }
    }

    /// The correctness core: in the eforest graph, every ordering the S*
    /// graph imposes between two updates writing overlapping data must be
    /// preserved. Overlap happens exactly when one source column is an
    /// ancestor of the other (disjoint subtrees have disjoint row
    /// structures).
    #[test]
    fn eforest_graph_orders_all_ancestor_related_updates() {
        for seed in 0..8 {
            let bs = random_blocks(16, 30, seed);
            let e = build_eforest_graph(&bs);
            let forest = block_forest(&bs);
            // Gather update ids by (src, dst).
            let mut updates: Vec<(usize, usize, usize)> = Vec::new();
            for (id, t) in e.tasks().iter().enumerate() {
                if let Task::Update { src, dst } = *t {
                    updates.push((src, dst, id));
                }
            }
            for &(i1, k1, id1) in &updates {
                for &(i2, k2, id2) in &updates {
                    if k1 != k2 || i1 >= i2 {
                        continue;
                    }
                    if forest.is_ancestor(i2, i1) {
                        assert!(
                            e.reaches(id1, id2),
                            "missing order U({i1},{k1}) → U({i2},{k2}) (seed {seed})"
                        );
                    }
                }
            }
            // Every update with dst = k whose source is in T[k] must
            // precede F(k).
            for &(i, k, id) in &updates {
                if forest.is_ancestor(k, i) {
                    assert!(
                        e.reaches(id, e.factor_id(k)),
                        "U({i},{k}) does not precede F({k}) (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn sstar_serializes_each_destination_column() {
        let bs = fig1_blocks();
        let s = build_sstar_graph(&bs);
        let mut per_dst: Vec<Vec<(usize, usize)>> = vec![Vec::new(); s.num_block_cols()];
        for (id, t) in s.tasks().iter().enumerate() {
            if let Task::Update { src, dst } = *t {
                per_dst[dst].push((src, id));
            }
        }
        for (dst, mut ups) in per_dst.into_iter().enumerate() {
            ups.sort_unstable();
            for w in ups.windows(2) {
                assert!(s.reaches(w[0].1, w[1].1));
            }
            if let Some(&(_, last)) = ups.last() {
                assert!(s.reaches(last, s.factor_id(dst)));
            }
        }
    }

    #[test]
    fn topo_order_is_valid_for_both() {
        let bs = fig1_blocks();
        for g in [build_sstar_graph(&bs), build_eforest_graph(&bs)] {
            let order = g.topo_order();
            let mut pos = vec![0usize; g.len()];
            for (p, &t) in order.iter().enumerate() {
                pos[t] = p;
            }
            for t in 0..g.len() {
                for &s in g.successors(t) {
                    assert!(pos[t] < pos[s], "edge violates topological order");
                }
            }
        }
    }

    #[test]
    fn block_forest_matches_scalar_forest_on_singleton_partition() {
        let p = fig1_pattern();
        let f = static_symbolic_factorization(&p).unwrap();
        let scalar = EliminationForest::from_filled(&f);
        let bs = singleton_blocks(&p);
        let blockf = block_forest(&bs);
        for j in 0..p.ncols() {
            assert_eq!(blockf.parent(j), scalar.parent(j), "node {j}");
        }
    }

    #[test]
    fn home_column_is_destination() {
        assert_eq!(Task::Factor(3).home_column(), 3);
        assert_eq!(Task::Update { src: 1, dst: 5 }.home_column(), 5);
    }

    #[test]
    fn dot_export_shows_tasks_and_edges() {
        let bs = fig1_blocks();
        let g = build_eforest_graph(&bs);
        let dot = g.to_dot("fig4");
        assert!(dot.starts_with("digraph fig4 {"));
        assert!(dot.contains("\"F(0)\""));
        // At least one dependence edge rendered.
        assert!(dot.contains("->"));
        assert_eq!(dot.matches("->").count(), g.num_edges());
    }

    #[test]
    fn diagonal_matrix_has_factor_tasks_only() {
        let bs = singleton_blocks(&SparsityPattern::identity(4));
        let g = build_eforest_graph(&bs);
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.critical_path_len(), 1);
    }
}
