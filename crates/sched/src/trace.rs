//! Scheduler telemetry: lock-free per-worker event tracing, steal/idle
//! counters, and Chrome-trace export for the DAG executors.
//!
//! The executors in this crate barely scale on real threads while the
//! calibrated simulator predicts large speedups; this module is the
//! measurement substrate that says *where executor time actually goes* —
//! steal contention, idle workers, or critical-path serialization.
//!
//! Design (hot-path budget: one `Instant::now()` pair plus a `Vec` push per
//! recorded interval):
//!
//! * Every worker owns a private [`WorkerRecorder`] — a plain `Vec` of
//!   fixed-size [`TraceEvent`] entries plus a counter block. Nothing on the
//!   hot path takes a lock or touches shared memory; recorders are drained
//!   once, after the worker joins.
//! * Recording is gated by [`TraceConfig`]: [`TraceMode::Off`] short-circuits
//!   every recorder method before it reads the clock, so the untraced entry
//!   points ([`crate::execute`], [`crate::execute_dag`], …) pay only a dead
//!   branch per task. [`TraceMode::Counters`] keeps the timing/counter
//!   aggregates but drops the event list; [`TraceMode::Full`] keeps both.
//! * After `execute` the recorders are assembled into an [`ExecReport`]:
//!   a [`SchedStats`] aggregate (per-worker busy/idle/steal time, tasks run,
//!   steals in/out, load imbalance) and, in full mode, an [`ExecTrace`]
//!   whose [`ExecTrace::chrome_json`] renders the run as a Gantt chart in
//!   `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).
//!
//! The simulator emits the same shape of data ([`crate::SimEvent`], exported
//! by [`sim_chrome_json`]) so a measured run and its model prediction can be
//! compared side by side.

use std::fmt::Write as _;
use std::time::Instant;

/// How much telemetry the executor records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No instrumentation: recorder calls compile down to a dead branch.
    #[default]
    Off,
    /// Per-worker timing aggregates and counters, no event list.
    Counters,
    /// Counters plus the full per-worker event list (Chrome-trace export).
    Full,
}

/// Telemetry configuration handed to the traced executor entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// What to record.
    pub mode: TraceMode,
    /// Per-worker event buffer pre-allocation (events, [`TraceMode::Full`]
    /// only). A worker whose run outgrows the hint reallocates; sizing it to
    /// `2 × n_tasks / nthreads` keeps the hot path push amortized O(1) with
    /// no reallocation in the common case.
    pub events_capacity: usize,
    /// Timestamp origin for recorded events. `None` (the default) uses the
    /// moment the executor starts — timestamps are then run-relative, as
    /// before. Setting a shared epoch aligns this run's events with spans
    /// recorded elsewhere in the pipeline (the `splu-obs` phase trace), so
    /// the numeric executor, the symbolic fill executor, and the driver
    /// phases all land on one Chrome-trace timeline. Wall-clock accounting
    /// ([`SchedStats::wall_s`]) always measures from executor start,
    /// independent of the epoch.
    pub epoch: Option<Instant>,
}

impl TraceConfig {
    /// Zero-instrumentation configuration (the default).
    pub fn off() -> Self {
        TraceConfig::default()
    }

    /// Counters and timing aggregates only.
    pub fn counters() -> Self {
        TraceConfig {
            mode: TraceMode::Counters,
            ..TraceConfig::default()
        }
    }

    /// Full event recording with a buffer hint for `n_tasks` tasks on
    /// `nthreads` workers.
    pub fn full(n_tasks: usize, nthreads: usize) -> Self {
        TraceConfig {
            mode: TraceMode::Full,
            events_capacity: 2 * n_tasks / nthreads.max(1) + 16,
            ..TraceConfig::default()
        }
    }

    /// Pins the timestamp origin to `epoch` (see [`TraceConfig::epoch`]).
    pub fn with_epoch(mut self, epoch: Instant) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// `true` unless the mode is [`TraceMode::Off`].
    pub fn is_on(&self) -> bool {
        self.mode != TraceMode::Off
    }
}

/// What a recorded interval was spent on. Fixed-size — no allocation per
/// event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The runner executed task `tid` (executor task id; map through
    /// `TaskGraph::task` for the Factor/Update labels).
    Task {
        /// Executor task id.
        tid: usize,
    },
    /// A victim-scan over other workers' pools. `success` means a task was
    /// taken from `victim`'s pool; on a dry scan `victim` is the scanning
    /// worker itself.
    Steal {
        /// Pool the task was taken from (= the scanning worker on a miss).
        victim: usize,
        /// Whether the scan yielded a task.
        success: bool,
    },
    /// The worker parked on its sleep gate waiting for work.
    Park,
}

/// One fixed-size event interval recorded by a worker. Timestamps are
/// nanoseconds since the run epoch (the moment the executor started), so
/// they are directly comparable across workers of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Worker that recorded the event.
    pub worker: usize,
    /// What the interval was spent on.
    pub kind: EventKind,
    /// Interval start, nanoseconds since the run epoch.
    pub start_ns: u64,
    /// Interval end, nanoseconds since the run epoch.
    pub end_ns: u64,
}

/// Per-worker counter block, updated worker-locally (no atomics: each worker
/// owns its block exclusively until the run ends).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Seconds spent inside task runners.
    pub busy_s: f64,
    /// Seconds spent scanning victim pools (successful or not).
    pub steal_s: f64,
    /// Seconds spent parked on the sleep gate.
    pub idle_s: f64,
    /// Tasks this worker executed.
    pub tasks_run: u64,
    /// Tasks this worker retired (ran + released successors). Equals
    /// `tasks_run` on a clean run.
    pub tasks_retired: u64,
    /// Victim scans that yielded a task (tasks stolen *by* this worker).
    pub steals_in: u64,
    /// Tasks other workers took from this worker's pool. Filled during
    /// assembly from the thieves' per-victim counts.
    pub steals_out: u64,
    /// Victim scans attempted (hits + misses).
    pub steal_attempts: u64,
    /// Times the worker parked.
    pub parks: u64,
    /// Steal hits by victim id (length = nthreads), the source of every
    /// worker's `steals_out`.
    pub steals_by_victim: Vec<u64>,
}

/// Aggregate scheduler statistics for one executor run — the single home of
/// the counters previously scattered over ad-hoc atomics, plus the numeric
/// layer's zero-copy counter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedStats {
    /// Worker threads the run used.
    pub nthreads: usize,
    /// Tasks the DAG contained.
    pub n_tasks: usize,
    /// Wall-clock seconds from executor start to the last worker joining.
    pub wall_s: f64,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerStats>,
    /// Tasks handed to runners, summed over workers.
    pub tasks_started: u64,
    /// Tasks fully retired (successors released), summed over workers.
    pub tasks_retired: u64,
    /// Panel gather/scatter copies the numeric layer performed
    /// (`BlockMatrix::panel_copy_count`; zero for the zero-copy layout).
    /// Left 0 by the raw executor — the numeric drivers fill it.
    pub panel_copies: usize,
    /// Dense kernel implementation the numeric layer ran through
    /// (`"portable"`, `"simd-avx2"`, `"simd-chunked"`). Left `""` by the
    /// raw executor — the numeric drivers fill it.
    pub kernel: &'static str,
}

impl SchedStats {
    /// Total busy seconds across workers.
    pub fn busy_total(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_s).sum()
    }

    /// Total steal-scan seconds across workers.
    pub fn steal_total(&self) -> f64 {
        self.workers.iter().map(|w| w.steal_s).sum()
    }

    /// Total parked seconds across workers.
    pub fn idle_total(&self) -> f64 {
        self.workers.iter().map(|w| w.idle_s).sum()
    }

    /// Successful steals across workers.
    pub fn steals_total(&self) -> u64 {
        self.workers.iter().map(|w| w.steals_in).sum()
    }

    /// Load-imbalance factor: max over workers of busy time divided by the
    /// mean busy time (1.0 = perfectly balanced). 1.0 for degenerate runs.
    pub fn load_imbalance(&self) -> f64 {
        let mean = self.busy_total() / self.workers.len().max(1) as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        let max = self.workers.iter().map(|w| w.busy_s).fold(0.0, f64::max);
        max / mean
    }

    /// Parallel efficiency: `busy_total / (nthreads × wall)`.
    pub fn parallel_efficiency(&self) -> f64 {
        let denom = self.nthreads as f64 * self.wall_s;
        if denom <= 0.0 {
            1.0
        } else {
            self.busy_total() / denom
        }
    }

    /// Every scheduler counter as uniform `(name, value)` pairs — the
    /// single enumeration the run report serializes, replacing ad-hoc
    /// field-by-field plumbing. Names are stable snake_case JSON keys.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("tasks_started", self.tasks_started),
            ("tasks_retired", self.tasks_retired),
            ("steals", self.steals_total()),
            (
                "steal_attempts",
                self.workers.iter().map(|w| w.steal_attempts).sum(),
            ),
            ("parks", self.workers.iter().map(|w| w.parks).sum()),
            ("panel_copies", self.panel_copies as u64),
        ]
    }

    /// Panics unless `tasks_started == tasks_retired == n_tasks` — the
    /// counter-consistency invariant of a clean (panic-free) run.
    pub fn assert_consistent(&self) {
        assert_eq!(
            self.tasks_started, self.n_tasks as u64,
            "tasks started != tasks in DAG"
        );
        assert_eq!(
            self.tasks_retired, self.n_tasks as u64,
            "tasks retired != tasks in DAG"
        );
        let run: u64 = self.workers.iter().map(|w| w.tasks_run).sum();
        assert_eq!(run, self.tasks_started, "per-worker run counts disagree");
        let in_: u64 = self.workers.iter().map(|w| w.steals_in).sum();
        let out: u64 = self.workers.iter().map(|w| w.steals_out).sum();
        assert_eq!(in_, out, "steals_in and steals_out must balance");
    }

    /// One row per worker: busy / idle / steal seconds, task and steal
    /// counts — the table `perf_report` prints.
    pub fn table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:>6} {:>10} {:>10} {:>10} {:>7} {:>9} {:>10} {:>8}",
            "worker", "busy_s", "idle_s", "steal_s", "tasks", "steals_in", "steals_out", "parks"
        );
        for (i, w) in self.workers.iter().enumerate() {
            let _ = writeln!(
                s,
                "{:>6} {:>10.6} {:>10.6} {:>10.6} {:>7} {:>9} {:>10} {:>8}",
                i, w.busy_s, w.idle_s, w.steal_s, w.tasks_run, w.steals_in, w.steals_out, w.parks
            );
        }
        let _ = writeln!(
            s,
            "{:>6} {:>10.6} {:>10.6} {:>10.6} {:>7} {:>9} {:>10}   wall {:.6}s  imbalance {:.2}  efficiency {:.2}",
            "total",
            self.busy_total(),
            self.idle_total(),
            self.steal_total(),
            self.tasks_started,
            self.steals_total(),
            self.workers.iter().map(|w| w.steals_out).sum::<u64>(),
            self.wall_s,
            self.load_imbalance(),
            self.parallel_efficiency()
        );
        s
    }
}

/// The raw event streams of one run ([`TraceMode::Full`] only).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecTrace {
    /// Worker count of the run (Chrome `tid` range).
    pub nthreads: usize,
    /// All recorded events, grouped by worker in recording order (each
    /// worker's subsequence has monotone non-decreasing timestamps).
    pub events: Vec<TraceEvent>,
}

impl ExecTrace {
    /// Renders the event streams as Chrome `trace_event` JSON (the
    /// `{"traceEvents": [...]}` envelope), loadable in `chrome://tracing`
    /// and Perfetto. `label` maps an executor task id to a display name
    /// (e.g. `F(3)` / `U(2,5)`); workers become Chrome threads.
    pub fn chrome_json(&self, label: &dyn Fn(usize) -> String) -> String {
        let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        for w in 0..self.nthreads {
            let _ = writeln!(
                out,
                "  {{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 0, \"tid\": {w}, \
                 \"args\": {{\"name\": \"worker {w}\"}}}},"
            );
        }
        for (i, e) in self.events.iter().enumerate() {
            let (name, cat, args) = match e.kind {
                EventKind::Task { tid } => (label(tid), "task", format!("{{\"task\": {tid}}}")),
                EventKind::Steal { victim, success } => (
                    if success {
                        format!("steal<-{victim}")
                    } else {
                        "steal-miss".to_string()
                    },
                    "steal",
                    format!("{{\"victim\": {victim}, \"success\": {success}}}"),
                ),
                EventKind::Park => ("idle".to_string(), "idle", "{}".to_string()),
            };
            let sep = if i + 1 == self.events.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "  {{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"{cat}\", \"pid\": 0, \
                 \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {args}}}{sep}",
                escape_json(&name),
                e.worker,
                e.start_ns as f64 / 1e3,
                (e.end_ns - e.start_ns) as f64 / 1e3,
            );
        }
        out.push_str("]}\n");
        out
    }
}

/// A worker panic caught and contained by the executor. The run is aborted
/// (remaining tasks drain without executing) but every worker joins cleanly
/// and the caller gets a report instead of an unwinding panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Worker that caught the panic.
    pub worker: usize,
    /// Executor task id of the panicking task (map through the graph for a
    /// `Factor`/`Update` label).
    pub task: usize,
    /// The panic payload, when it was a string (the usual `panic!` case).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} panicked running task {}: {}",
            self.worker, self.task, self.message
        )
    }
}

/// Numeric-layer health report of one factorization. Like
/// [`SchedStats::panel_copies`], this is left at its default by the raw
/// executor — the numeric drivers fill it (and [`splu-core`'s `SparseLu`]
/// adds the condition estimate).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FactorHealth {
    /// Global columns (factorization order) whose diagonal was replaced by
    /// a static-pivoting perturbation, ascending. Empty on a clean run.
    pub perturbed_columns: Vec<usize>,
    /// Largest perturbation magnitude applied (0.0 on a clean run).
    pub max_perturbation: f64,
    /// Element-growth estimate `max|factor| / max|A|`; filled when a
    /// perturbing breakdown policy is active, 0.0 otherwise.
    pub growth: f64,
    /// Hager–Higham estimate of `‖A⁻¹‖₁`, filled by `SparseLu` for
    /// perturbed factorizations (refinement quality depends on it).
    pub condest: Option<f64>,
}

impl FactorHealth {
    /// `true` when at least one column was perturbed.
    pub fn is_perturbed(&self) -> bool {
        !self.perturbed_columns.is_empty()
    }
}

/// Everything a traced executor run produces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Aggregate statistics (always filled when tracing is on).
    pub stats: SchedStats,
    /// Raw event streams ([`TraceMode::Full`] only).
    pub trace: Option<ExecTrace>,
    /// First worker panic caught by the executor, if any. When set, the run
    /// aborted early: `stats` covers only the tasks that actually ran and
    /// [`SchedStats::assert_consistent`] does not apply.
    pub panic: Option<TaskPanic>,
    /// Why the run was interrupted (cancellation, deadline, watchdog stall),
    /// if it was. Like `panic`, an interrupted run aborted early and
    /// [`SchedStats::assert_consistent`] does not apply.
    pub interrupt: Option<crate::Interrupt>,
    /// Numeric-layer health report (perturbed columns, growth); left at its
    /// default by the raw executor — the numeric drivers fill it.
    pub health: FactorHealth,
}

impl ExecReport {
    /// Every counter this run produced, uniformly: the scheduler counters
    /// ([`SchedStats::counters`]) plus the numeric-health counts. One flat
    /// `(name, value)` list so reports and tools never reach into
    /// individual fields.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out = self.stats.counters();
        out.push((
            "perturbed_columns",
            self.health.perturbed_columns.len() as u64,
        ));
        out
    }
}

/// Renders a simulator schedule ([`crate::SimEvent`] stream, model seconds)
/// in the same Chrome `trace_event` JSON shape as [`ExecTrace::chrome_json`]
/// so predicted and measured Gantt charts load side by side.
pub fn sim_chrome_json(
    events: &[crate::SimEvent],
    nprocs: usize,
    label: &dyn Fn(usize) -> String,
) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    for p in 0..nprocs {
        let _ = writeln!(
            out,
            "  {{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 0, \"tid\": {p}, \
             \"args\": {{\"name\": \"sim proc {p}\"}}}},"
        );
    }
    for (i, e) in events.iter().enumerate() {
        let sep = if i + 1 == events.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  {{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"task\", \"pid\": 0, \
             \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"task\": {}}}}}{sep}",
            escape_json(&label(e.task)),
            e.proc,
            e.start * 1e6,
            (e.finish - e.start) * 1e6,
            e.task,
        );
    }
    out.push_str("]}\n");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Worker-side recording (crate-internal).
// ---------------------------------------------------------------------------

/// Worker-local recorder: owned exclusively by one worker thread for the
/// duration of the run, so every method is lock-free and race-free by
/// construction. Drained once via [`WorkerRecorder::finish`].
pub(crate) struct WorkerRecorder {
    worker: usize,
    mode: TraceMode,
    epoch: Instant,
    events: Vec<TraceEvent>,
    stats: WorkerStats,
}

impl WorkerRecorder {
    pub(crate) fn new(
        worker: usize,
        nthreads: usize,
        config: &TraceConfig,
        epoch: Instant,
    ) -> Self {
        let events = if config.mode == TraceMode::Full {
            Vec::with_capacity(config.events_capacity)
        } else {
            Vec::new()
        };
        let stats = WorkerStats {
            steals_by_victim: if config.is_on() {
                vec![0; nthreads]
            } else {
                Vec::new()
            },
            ..WorkerStats::default()
        };
        WorkerRecorder {
            worker,
            mode: config.mode,
            epoch,
            events,
            stats,
        }
    }

    /// Start an interval. `None` (no clock read) when tracing is off.
    #[inline]
    pub(crate) fn begin(&self) -> Option<Instant> {
        if self.mode == TraceMode::Off {
            None
        } else {
            Some(Instant::now())
        }
    }

    #[inline]
    fn interval_ns(&self, t0: Instant) -> (u64, u64) {
        let start = t0.duration_since(self.epoch).as_nanos() as u64;
        let end = self.epoch.elapsed().as_nanos() as u64;
        (start, end.max(start))
    }

    #[inline]
    fn push(&mut self, kind: EventKind, start_ns: u64, end_ns: u64) {
        if self.mode == TraceMode::Full {
            self.events.push(TraceEvent {
                worker: self.worker,
                kind,
                start_ns,
                end_ns,
            });
        }
    }

    /// Close a task interval opened by [`Self::begin`].
    #[inline]
    pub(crate) fn end_task(&mut self, t0: Option<Instant>, tid: usize) {
        let Some(t0) = t0 else { return };
        let (s, e) = self.interval_ns(t0);
        self.stats.busy_s += (e - s) as f64 / 1e9;
        self.stats.tasks_run += 1;
        self.push(EventKind::Task { tid }, s, e);
    }

    /// Close a victim-scan interval opened by [`Self::begin`].
    #[inline]
    pub(crate) fn end_steal(&mut self, t0: Option<Instant>, victim: usize, success: bool) {
        let Some(t0) = t0 else { return };
        let (s, e) = self.interval_ns(t0);
        self.stats.steal_s += (e - s) as f64 / 1e9;
        self.stats.steal_attempts += 1;
        if success {
            self.stats.steals_in += 1;
            self.stats.steals_by_victim[victim] += 1;
        }
        self.push(EventKind::Steal { victim, success }, s, e);
    }

    /// Close a park interval opened by [`Self::begin`].
    #[inline]
    pub(crate) fn end_park(&mut self, t0: Option<Instant>) {
        let Some(t0) = t0 else { return };
        let (s, e) = self.interval_ns(t0);
        self.stats.idle_s += (e - s) as f64 / 1e9;
        self.stats.parks += 1;
        self.push(EventKind::Park, s, e);
    }

    /// Count a retired task (cheap: no clock).
    #[inline]
    pub(crate) fn count_retired(&mut self) {
        if self.mode != TraceMode::Off {
            self.stats.tasks_retired += 1;
        }
    }

    pub(crate) fn finish(self) -> (usize, WorkerStats, Vec<TraceEvent>) {
        (self.worker, self.stats, self.events)
    }
}

/// Assembles drained worker recorders into an [`ExecReport`].
pub(crate) fn assemble_report(
    n_tasks: usize,
    nthreads: usize,
    wall_s: f64,
    config: &TraceConfig,
    drained: Vec<(usize, WorkerStats, Vec<TraceEvent>)>,
    panic: Option<TaskPanic>,
    interrupt: Option<crate::Interrupt>,
) -> ExecReport {
    let mut workers = vec![WorkerStats::default(); nthreads];
    let mut all_events: Vec<TraceEvent> = Vec::new();
    for (w, stats, events) in drained {
        workers[w] = stats;
        all_events.extend(events);
    }
    // steals_out: credit each victim from the thieves' per-victim hit counts.
    let mut outs = vec![0u64; nthreads];
    for w in &workers {
        for (v, &hits) in w.steals_by_victim.iter().enumerate() {
            outs[v] += hits;
        }
    }
    for (w, &o) in workers.iter_mut().zip(&outs) {
        w.steals_out = o;
    }
    let tasks_started: u64 = workers.iter().map(|w| w.tasks_run).sum();
    let tasks_retired: u64 = workers.iter().map(|w| w.tasks_retired).sum();
    let stats = SchedStats {
        nthreads,
        n_tasks,
        wall_s,
        workers,
        tasks_started,
        tasks_retired,
        panel_copies: 0,
        kernel: "",
    };
    let trace = (config.mode == TraceMode::Full).then_some(ExecTrace {
        nthreads,
        events: all_events,
    });
    ExecReport {
        stats,
        trace,
        panic,
        interrupt,
        health: FactorHealth::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_records_nothing() {
        let cfg = TraceConfig::off();
        let mut rec = WorkerRecorder::new(0, 2, &cfg, Instant::now());
        let t0 = rec.begin();
        assert!(t0.is_none());
        rec.end_task(t0, 3);
        rec.end_steal(t0, 1, true);
        rec.end_park(t0);
        rec.count_retired();
        let (_, stats, events) = rec.finish();
        assert_eq!(stats, WorkerStats::default());
        assert!(events.is_empty());
    }

    #[test]
    fn full_mode_records_intervals_and_counts() {
        let cfg = TraceConfig::full(4, 2);
        let epoch = Instant::now();
        let mut rec = WorkerRecorder::new(1, 2, &cfg, epoch);
        let t0 = rec.begin();
        rec.end_task(t0, 7);
        let t1 = rec.begin();
        rec.end_steal(t1, 0, true);
        let t2 = rec.begin();
        rec.end_park(t2);
        rec.count_retired();
        let (w, stats, events) = rec.finish();
        assert_eq!(w, 1);
        assert_eq!(stats.tasks_run, 1);
        assert_eq!(stats.tasks_retired, 1);
        assert_eq!(stats.steals_in, 1);
        assert_eq!(stats.steals_by_victim, vec![1, 0]);
        assert_eq!(events.len(), 3);
        for pair in events.windows(2) {
            assert!(pair[0].start_ns <= pair[1].start_ns, "monotone per worker");
        }
        assert!(matches!(events[0].kind, EventKind::Task { tid: 7 }));
    }

    #[test]
    fn chrome_json_escapes_and_closes() {
        let trace = ExecTrace {
            nthreads: 1,
            events: vec![TraceEvent {
                worker: 0,
                kind: EventKind::Task { tid: 0 },
                start_ns: 10,
                end_ns: 1010,
            }],
        };
        let json = trace.chrome_json(&|_| "F(\"0\")".to_string());
        assert!(json.contains("\\\"0\\\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn stats_helpers() {
        let stats = SchedStats {
            nthreads: 2,
            n_tasks: 3,
            wall_s: 2.0,
            workers: vec![
                WorkerStats {
                    busy_s: 2.0,
                    tasks_run: 2,
                    tasks_retired: 2,
                    steals_in: 1,
                    steals_out: 0,
                    ..WorkerStats::default()
                },
                WorkerStats {
                    busy_s: 1.0,
                    tasks_run: 1,
                    tasks_retired: 1,
                    steals_in: 0,
                    steals_out: 1,
                    ..WorkerStats::default()
                },
            ],
            tasks_started: 3,
            tasks_retired: 3,
            panel_copies: 0,
            kernel: "portable",
        };
        assert!((stats.busy_total() - 3.0).abs() < 1e-12);
        assert!((stats.load_imbalance() - 2.0 / 1.5).abs() < 1e-12);
        assert!((stats.parallel_efficiency() - 0.75).abs() < 1e-12);
        stats.assert_consistent();
        assert!(stats.table().contains("worker"));
    }
}
